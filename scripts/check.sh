#!/usr/bin/env bash
# Repo-wide quality gate: formatting, lints, build, and the full test
# suite. Run before every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "All checks passed."
