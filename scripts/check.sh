#!/usr/bin/env bash
# Repo-wide quality gate: formatting, lints, build, and the full test
# suite. Run before every push.
#
#   scripts/check.sh              # the standard gate
#   scripts/check.sh chaos-soak   # heavy fault-injection soak (release,
#                                 # end-to-end chaos runs; see
#                                 # crates/corp-faults/tests/soak.rs)
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "chaos-soak" ]]; then
    echo "==> cargo test -p corp-faults --release -- --ignored soak"
    cargo test -p corp-faults --release -- --ignored soak
    echo "Chaos soak passed."
    exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "All checks passed."
