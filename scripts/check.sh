#!/usr/bin/env bash
# Repo-wide quality gate: formatting, lints, build, and the full test
# suite. Run before every push.
#
#   scripts/check.sh              # the standard gate
#   scripts/check.sh chaos-soak   # heavy fault-injection soak (release,
#                                 # end-to-end chaos runs; see
#                                 # crates/corp-faults/tests/soak.rs)
#   scripts/check.sh perf-smoke   # hot-path throughput smoke: runs the
#                                 # perf experiment (which panics on any
#                                 # non-finite or zero throughput and on
#                                 # tuned-vs-baseline divergence) and
#                                 # requires BENCH_hotpath.json output
#   scripts/check.sh serve-smoke  # serving-mode smoke: a short trace
#                                 # replay through the corp-serve daemon
#                                 # that must measure non-empty placement-
#                                 # latency percentiles and shed nothing
#                                 # at low load (--smoke asserts both)
#   scripts/check.sh resilience-smoke
#                                 # chaos-serve smoke: the daemon under
#                                 # combined control-plane faults and
#                                 # arrival storms; --smoke asserts a
#                                 # byte-identical full replay, the
#                                 # zero-jobs-lost conservation law, and
#                                 # a complete breaker trip/recover cycle;
#                                 # --bench records BENCH_serve.json
#   scripts/check.sh scale-smoke  # streaming-soak smoke: a 5k-job synthetic
#                                 # stream through the reclaiming arena
#                                 # engine; --smoke asserts job conservation
#                                 # and that the arena high-water mark stays
#                                 # far below the trace length (memory
#                                 # bounded by concurrent jobs); records
#                                 # BENCH_scale.json
#   scripts/check.sh doc          # rustdoc gate only: every public item
#                                 # documented, no broken intra-doc links
#   scripts/check.sh perf-regression
#                                 # end-to-end throughput gate: reruns the
#                                 # e2e experiment (shard sweep included)
#                                 # against the committed BENCH_e2e.json and
#                                 # fails if CORP's pooled slots/sec drops
#                                 # >20% below it, if the striped-store
#                                 # sharded-8 arm falls >20% below its own
#                                 # committed number (on multi-core hosts
#                                 # also: below the fresh pooled run), or if
#                                 # its optimistic fast-path hit rate
#                                 # regresses >5pp below the committed
#                                 # baseline
set -euo pipefail
cd "$(dirname "$0")/.."

doc_gate() {
    # Only the repo's own crates: the vendored stand-ins under vendor/
    # track upstream API shapes, not our documentation posture.
    local own_crates=()
    for d in crates/*/; do
        own_crates+=(-p "$(basename "$d")")
    done
    echo "==> RUSTDOCFLAGS='-D warnings' cargo doc --no-deps ${own_crates[*]}"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps "${own_crates[@]}"
}

if [[ "${1:-}" == "doc" ]]; then
    doc_gate
    echo "Doc gate passed."
    exit 0
fi

if [[ "${1:-}" == "chaos-soak" ]]; then
    echo "==> cargo test -p corp-faults --release -- --ignored soak"
    cargo test -p corp-faults --release -- --ignored soak
    echo "Chaos soak passed."
    exit 0
fi

if [[ "${1:-}" == "perf-smoke" ]]; then
    rm -f BENCH_hotpath.json
    echo "==> cargo run --release -p corp-bench --bin corp-exp -- --fast perf"
    cargo run --release -p corp-bench --bin corp-exp -- --fast perf
    if [[ ! -s BENCH_hotpath.json ]]; then
        echo "perf-smoke FAILED: BENCH_hotpath.json missing or empty" >&2
        exit 1
    fi
    echo "Perf smoke passed ($(wc -c < BENCH_hotpath.json) bytes of baseline)."
    exit 0
fi

if [[ "${1:-}" == "serve-smoke" ]]; then
    echo "==> cargo run --release -p corp-bench --bin corp-exp -- serve --fast --jobs 60 --speed inf --seed 7 --smoke"
    cargo run --release -p corp-bench --bin corp-exp -- serve --fast --jobs 60 --speed inf --seed 7 --smoke
    echo "Serve smoke passed."
    exit 0
fi

if [[ "${1:-}" == "resilience-smoke" ]]; then
    rm -f BENCH_serve.json
    echo "==> cargo run --release -p corp-bench --bin corp-exp -- resilience --fast --smoke --bench"
    cargo run --release -p corp-bench --bin corp-exp -- resilience --fast --smoke --bench
    if [[ ! -s BENCH_serve.json ]]; then
        echo "resilience-smoke FAILED: BENCH_serve.json missing or empty" >&2
        exit 1
    fi
    if ! grep -q '"determinism":true' BENCH_serve.json || ! grep -q '"jobs_lost":0' BENCH_serve.json; then
        echo "resilience-smoke FAILED: BENCH_serve.json reports lost jobs or nondeterminism" >&2
        exit 1
    fi
    echo "Resilience smoke passed ($(wc -c < BENCH_serve.json) bytes of baseline)."
    exit 0
fi

scale_smoke() {
    rm -f BENCH_scale.json
    echo "==> cargo run --release -p corp-bench --bin corp-exp -- scale --smoke"
    cargo run --release -p corp-bench --bin corp-exp -- scale --smoke
    if [[ ! -s BENCH_scale.json ]]; then
        echo "scale-smoke FAILED: BENCH_scale.json missing or empty" >&2
        exit 1
    fi
    if ! grep -q '"unfinished":0' BENCH_scale.json; then
        echo "scale-smoke FAILED: BENCH_scale.json reports unfinished jobs" >&2
        exit 1
    fi
    echo "Scale smoke passed ($(wc -c < BENCH_scale.json) bytes of baseline)."
    # The smoke run rewrites the committed full-soak baseline; restore it.
    git checkout -- BENCH_scale.json 2>/dev/null || true
}

if [[ "${1:-}" == "scale-smoke" ]]; then
    scale_smoke
    exit 0
fi

if [[ "${1:-}" == "perf-regression" ]]; then
    if [[ ! -s BENCH_e2e.json ]]; then
        echo "perf-regression FAILED: no committed BENCH_e2e.json to compare against" >&2
        exit 1
    fi
    # Snapshot the committed baseline first: the runner rewrites
    # BENCH_e2e.json with the fresh numbers after the comparison passes.
    committed=$(mktemp)
    trap 'rm -f "$committed"' EXIT
    cp BENCH_e2e.json "$committed"
    echo "==> CORP_E2E_BASELINE=<committed BENCH_e2e.json> cargo run --release -p corp-bench --bin corp-exp -- --fast e2e"
    CORP_E2E_BASELINE="$committed" cargo run --release -p corp-bench --bin corp-exp -- --fast e2e
    # The runner enforces the numeric gates (pooled regression, sharded-8
    # vs pooled, fast-path-rate floor); here we only require that the
    # fresh output actually carried the shard sweep it gated on.
    if ! grep -q '"arm":"sharded-8"' BENCH_e2e.json; then
        echo "perf-regression FAILED: fresh BENCH_e2e.json has no sharded-8 arm" >&2
        git checkout -- BENCH_e2e.json 2>/dev/null || true
        exit 1
    fi
    git checkout -- BENCH_e2e.json 2>/dev/null || true
    echo "Perf regression gate passed."
    exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

doc_gate

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

scale_smoke

echo "All checks passed."
