//! Quickstart: run CORP on a synthetic short-lived-job workload and print
//! the headline metrics next to a plain reservation-based allocator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use corp_core::{CorpConfig, CorpProvisioner};
use corp_sim::{Cluster, EnvironmentProfile, Simulation, SimulationOptions, StaticPeakProvisioner};
use corp_trace::{WorkloadConfig, WorkloadGenerator, NUM_RESOURCES};

fn main() {
    // 1. A small cluster: 8 SL230-class servers, 4 VMs each.
    let cluster = || Cluster::from_profile(EnvironmentProfile::palmetto_cluster().with_num_pms(8));

    // 2. A workload of 150 short-lived jobs (10 s - 5 min, fluctuating
    //    demand, mixed resource intensities), deterministic by seed.
    let workload = || {
        WorkloadGenerator::new(
            WorkloadConfig {
                num_jobs: 150,
                ..WorkloadConfig::default()
            },
            42,
        )
        .generate()
    };

    // 3. Historical data to pretrain CORP's DNN + HMM + preemption gate —
    //    the stand-in for the paper's Google-trace history.
    let history_jobs = WorkloadGenerator::new(
        WorkloadConfig {
            num_jobs: 40,
            ..WorkloadConfig::default()
        },
        7,
    )
    .generate();
    let histories: Vec<Vec<Vec<f64>>> = (0..NUM_RESOURCES)
        .map(|k| {
            history_jobs
                .iter()
                .map(|j| (0..j.duration_slots).map(|s| j.unused_at(s, k)).collect())
                .collect()
        })
        .collect();

    // 4. CORP, pretrained. (CorpConfig::default() is the paper's 4x50 DNN;
    //    `fast()` trains in a blink and keeps the same pipeline.)
    let mut corp = CorpProvisioner::new(CorpConfig::fast());
    corp.pretrain(&histories);

    let opts = SimulationOptions {
        measure_decision_time: false,
        ..Default::default()
    };
    let corp_report = Simulation::new(cluster(), workload(), opts.clone()).run(&mut corp);
    let peak_report = Simulation::new(cluster(), workload(), opts).run(&mut StaticPeakProvisioner);

    println!("== CORP quickstart: 150 short-lived jobs on 32 VMs ==\n");
    for r in [&corp_report, &peak_report] {
        println!(
            "{:<12} overall utilization {:.3}   CPU/MEM/STO {:.2}/{:.2}/{:.2}   SLO violations {:.1}%   completed {}/{}",
            r.provisioner,
            r.overall_utilization,
            r.utilization[0],
            r.utilization[1],
            r.utilization[2],
            r.slo_violation_rate * 100.0,
            r.completed,
            r.num_jobs,
        );
    }
    println!(
        "\nCORP reclaimed allocated-but-unused resources worth {:.1} utilization points\nover peak-based reservation, at a {:.1}% SLO violation rate.",
        (corp_report.overall_utilization - peak_report.overall_utilization) * 100.0,
        corp_report.slo_violation_rate * 100.0,
    );
}
