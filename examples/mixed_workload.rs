//! Mixed short- and long-lived workload — the paper's future-work scenario,
//! served by the cooperative provisioner.
//!
//! Short-lived queries (patternless, handled by CORP's DNN+HMM pipeline)
//! share the fleet with long-running services whose usage cycles daily-style
//! patterns (handled by a seasonal Holt-Winters partner). One provisioner
//! coordinates both.
//!
//! ```sh
//! cargo run --release --example mixed_workload
//! ```

use corp_core::{CooperativeProvisioner, CorpConfig, CorpProvisioner};
use corp_sim::{Cluster, EnvironmentProfile, Simulation, SimulationOptions, StaticPeakProvisioner};
use corp_trace::{
    LongLivedConfig, LongLivedGenerator, WorkloadConfig, WorkloadGenerator, NUM_RESOURCES,
};

fn mixed_jobs(seed: u64) -> Vec<corp_trace::JobSpec> {
    let mut jobs = WorkloadGenerator::new(
        WorkloadConfig {
            num_jobs: 120,
            ..WorkloadConfig::default()
        },
        seed,
    )
    .generate();
    jobs.extend(
        LongLivedGenerator::new(
            LongLivedConfig {
                num_jobs: 8,
                cycle_slots: 30,
                ..Default::default()
            },
            seed + 1,
            1_000_000,
        )
        .generate(),
    );
    jobs.sort_by_key(|j| j.arrival_slot);
    jobs
}

fn main() {
    let cluster = || Cluster::from_profile(EnvironmentProfile::palmetto_cluster().with_num_pms(10));
    let opts = SimulationOptions {
        measure_decision_time: false,
        ..Default::default()
    };

    // History for the short-lived DNN.
    let hist = WorkloadGenerator::new(
        WorkloadConfig {
            num_jobs: 40,
            ..WorkloadConfig::default()
        },
        5,
    )
    .generate();
    let histories: Vec<Vec<Vec<f64>>> = (0..NUM_RESOURCES)
        .map(|k| {
            hist.iter()
                .map(|j| (0..j.duration_slots).map(|s| j.unused_at(s, k)).collect())
                .collect()
        })
        .collect();

    // Cooperative: CORP for short jobs + seasonal forecaster for services.
    let mut coop = CooperativeProvisioner::new(CorpConfig::fast(), 30);
    coop.pretrain(&histories);
    let coop_report = Simulation::new(cluster(), mixed_jobs(11), opts.clone()).run(&mut coop);

    // Plain CORP treats everything as short-lived.
    let mut corp = CorpProvisioner::new(CorpConfig::fast());
    corp.pretrain(&histories);
    let corp_report = Simulation::new(cluster(), mixed_jobs(11), opts.clone()).run(&mut corp);

    // Reservation baseline.
    let peak_report =
        Simulation::new(cluster(), mixed_jobs(11), opts).run(&mut StaticPeakProvisioner);

    println!("== Mixed workload: 120 short queries + 8 cycling services on 40 VMs ==\n");
    for (label, r) in [
        ("cooperative", &coop_report),
        ("plain CORP", &corp_report),
        ("reservation", &peak_report),
    ] {
        println!(
            "{:<12} overall utilization {:.3}   SLO violations {:>4.1}%   completed {}/{}",
            label,
            r.overall_utilization,
            r.slo_violation_rate * 100.0,
            r.completed,
            r.num_jobs,
        );
    }
    println!(
        "\nThe cooperative scheme reclaims the services' off-peak slack via their usage\ncycles while CORP's DNN handles the patternless short jobs."
    );
}
