//! Baseline face-off: all four schemes of the paper's evaluation on one
//! workload, printed side by side — a one-command miniature of Figs. 6-10.
//!
//! ```sh
//! cargo run --release --example baseline_faceoff [num_jobs]
//! ```

use corp_bench::{env::run_cell, env::SchemeParams, Environment, ALL_SCHEMES};

fn main() {
    let num_jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);

    println!("== Face-off: {num_jobs} short-lived jobs on the cluster profile ==\n");
    println!(
        "{:<12} {:>12} {:>12} {:>14} {:>14}",
        "scheme", "utilization", "SLO viol.", "pred. error", "overhead (ms)"
    );
    for scheme in ALL_SCHEMES {
        let params = SchemeParams {
            fast_dnn: true,
            ..Default::default()
        };
        let r = run_cell(Environment::Cluster, scheme, num_jobs, &params, true);
        println!(
            "{:<12} {:>12.3} {:>11.1}% {:>13.1}% {:>14.1}",
            r.provisioner,
            r.overall_utilization,
            r.slo_violation_rate * 100.0,
            r.prediction_error_rate * 100.0,
            r.overhead_ms,
        );
    }
    println!(
        "\nExpected shape (paper Figs. 6-10): CORP leads utilization and prediction accuracy,\nDRA trails both and violates most SLOs; CORP pays a small scheduling-latency premium."
    );
}
