//! IoT burst scenario: a flash crowd of very short queries.
//!
//! The paper motivates CORP with "short-lived queries in the applications
//! of Internet-of-Things and online data processing [that] typically run
//! for seconds or minutes". This example models an IoT ingestion spike: a
//! bursty arrival process dumps hundreds of second-scale queries onto a
//! small fleet, and we compare how CORP and a reservation allocator absorb
//! it.
//!
//! ```sh
//! cargo run --release --example iot_burst
//! ```

use corp_core::{CorpConfig, CorpProvisioner};
use corp_sim::{Cluster, EnvironmentProfile, Simulation, SimulationOptions, StaticPeakProvisioner};
use corp_trace::{
    ArrivalProcess, BurstyArrivals, WorkloadConfig, WorkloadGenerator, NUM_RESOURCES,
};

fn main() {
    let config = WorkloadConfig {
        num_jobs: 250,
        // Second-scale queries: 10-60 s.
        min_duration_secs: 10.0,
        max_duration_secs: 60.0,
        // Mostly CPU-bound analytics with some balanced work.
        class_weights: [3.0, 1.0, 0.5, 1.0],
        ..WorkloadConfig::default()
    };

    // Bursty arrivals: flash crowds of ~12 queries separated by quiet gaps.
    let mut arrivals = BurstyArrivals::new(12.0, 8.0, 99);
    let slots = arrivals.arrivals(config.num_jobs);
    let mut generator = WorkloadGenerator::new(config, 4242);
    let jobs: Vec<_> = slots
        .into_iter()
        .map(|slot| generator.generate_one(slot))
        .collect();

    // Pretraining history from a calmer period of the same service.
    let hist = WorkloadGenerator::new(
        WorkloadConfig {
            num_jobs: 40,
            ..WorkloadConfig::default()
        },
        17,
    )
    .generate();
    let histories: Vec<Vec<Vec<f64>>> = (0..NUM_RESOURCES)
        .map(|k| {
            hist.iter()
                .map(|j| (0..j.duration_slots).map(|s| j.unused_at(s, k)).collect())
                .collect()
        })
        .collect();

    let cluster = || Cluster::from_profile(EnvironmentProfile::palmetto_cluster().with_num_pms(6));
    let opts = SimulationOptions {
        measure_decision_time: false,
        ..Default::default()
    };

    let mut corp = CorpProvisioner::new(CorpConfig::fast());
    corp.pretrain(&histories);
    let corp_report = Simulation::new(cluster(), jobs.clone(), opts.clone()).run(&mut corp);
    let peak_report = Simulation::new(cluster(), jobs, opts).run(&mut StaticPeakProvisioner);

    println!("== IoT flash crowd: 250 second-scale queries, bursty arrivals, 24 VMs ==\n");
    for r in [&corp_report, &peak_report] {
        println!(
            "{:<12} mean response {:>5.1} slots   SLO violations {:>5.1}%   overall utilization {:.3}",
            r.provisioner,
            r.mean_response_slots,
            r.slo_violation_rate * 100.0,
            r.overall_utilization,
        );
    }
    println!(
        "\nDuring bursts the reservation allocator runs out of placeable capacity and queues\nqueries; CORP's reclaimed headroom absorbs the spike.",
    );
}
