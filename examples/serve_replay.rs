//! Serving-mode replay: the CORP pipeline as a live daemon, with a fault
//! scenario injected mid-stream.
//!
//! Generates a short-lived-job workload, records it to the versioned
//! trace format, then replays the recorded file through the `corp-serve`
//! event loop twice — once fault-free, once with a rack outage at slot 5
//! (via the modern `with_fault_timeline` builder) — and prints placement-
//! latency percentiles alongside the usual utilization/SLO metrics.
//!
//! ```sh
//! cargo run --release --example serve_replay
//! ```

use corp_core::{CorpConfig, CorpProvisioner};
use corp_faults::{FaultEvent, FaultTimeline, TimedFault};
use corp_serve::{ServeConfig, ServeDaemon, ServeOutcome};
use corp_sim::{Cluster, EnvironmentProfile, SimulationOptions};
use corp_trace::{load_trace, save_trace, WorkloadConfig, WorkloadGenerator, NUM_RESOURCES};

/// A deliberately tight fleet (6 PMs): arrivals outpace free capacity, so
/// placement latency is visible instead of uniformly zero.
fn small_fleet() -> Cluster {
    Cluster::from_profile(EnvironmentProfile::palmetto_cluster().with_num_pms(6))
}

fn main() {
    // 1. Generate and record a workload, then replay the *file* — the
    // daemon consumes exactly what a trace collector would have written.
    // Arrivals land ~4x denser than the default so the tight fleet has to
    // queue: placement latency becomes a real signal, not a column of
    // zeroes.
    let jobs = WorkloadGenerator::new(
        WorkloadConfig {
            num_jobs: 120,
            mean_interarrival_slots: 0.1,
            ..WorkloadConfig::default()
        },
        42,
    )
    .generate();
    let path = std::env::temp_dir().join("corp_serve_replay_example.trace");
    save_trace(&path, &jobs).expect("record trace");
    let recorded = load_trace(&path).expect("load trace");
    println!(
        "Recorded {} jobs to {} and loaded them back.\n",
        recorded.len(),
        path.display()
    );

    // Pretrain CORP on a disjoint historical workload, as the experiments
    // do.
    let hist = WorkloadGenerator::new(
        WorkloadConfig {
            num_jobs: 40,
            ..WorkloadConfig::default()
        },
        77,
    )
    .generate();
    let histories: Vec<Vec<Vec<f64>>> = (0..NUM_RESOURCES)
        .map(|k| {
            hist.iter()
                .map(|j| (0..j.duration_slots).map(|s| j.unused_at(s, k)).collect())
                .collect()
        })
        .collect();

    // A rack outage: a quarter of the fleet crashes at slot 5, recovers at
    // slot 25.
    let cluster = small_fleet();
    let rack = cluster.vms.len() / 4;
    let outage = FaultTimeline::new(
        (0..rack)
            .flat_map(|vm| {
                [
                    TimedFault {
                        slot: 5,
                        event: FaultEvent::VmCrash { vm },
                    },
                    TimedFault {
                        slot: 25,
                        event: FaultEvent::VmRecover { vm },
                    },
                ]
            })
            .collect(),
    );

    let serve = |timeline: Option<FaultTimeline>| -> ServeOutcome {
        let mut corp = CorpProvisioner::new(CorpConfig::fast());
        corp.pretrain(&histories);
        let options = SimulationOptions {
            measure_decision_time: false,
            ..SimulationOptions::default()
        };
        let mut daemon = ServeDaemon::new(small_fleet(), options, ServeConfig::default());
        if let Some(t) = timeline {
            daemon = daemon.with_fault_timeline(t);
        }
        daemon.run(&mut corp, recorded.clone())
    };

    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>11} {:>10} {:>12}",
        "run", "p50 (s)", "p95 (s)", "p99 (s)", "SLO viol.", "util.", "events/s"
    );
    for (label, outcome) in [
        ("fault-free", serve(None)),
        ("rack outage", serve(Some(outage))),
    ] {
        let r = &outcome.report;
        println!(
            "{:<14} {:>10.1} {:>10.1} {:>10.1} {:>10.1}% {:>10.3} {:>12.0}",
            label,
            r.placement_latency.p50_micros / 1e6,
            r.placement_latency.p95_micros / 1e6,
            r.placement_latency.p99_micros / 1e6,
            r.sim.slo_violation_rate * 100.0,
            r.sim.overall_utilization,
            outcome.events_per_sec,
        );
        if let Some(f) = &r.sim.faults {
            println!(
                "{:<14}   {} crashes, {} jobs killed, mean replacement {:.1} slots",
                "", f.vm_crashes, f.jobs_killed, f.mean_replacement_latency_slots
            );
        }
    }
    println!("\nThe outage stretches tail placement latency (killed jobs re-queue behind\nfresh arrivals on a smaller fleet) — the event loop, admission queue, and\nfault machinery are the same code batch experiments use.");
    let _ = std::fs::remove_file(&path);
}
