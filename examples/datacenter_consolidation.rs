//! Datacenter consolidation scenario: complementary packing at work.
//!
//! Paper Figs. 1/4/5 motivate packing CPU-intensive jobs with
//! storage-intensive ones so neither resource fragments. This example
//! builds a deliberately polarized workload (half CPU-bound, half
//! storage-bound), runs CORP with and without complementary packing, and
//! reports placement quality: how many distinct VMs were touched and how
//! the schedule fared.
//!
//! ```sh
//! cargo run --release --example datacenter_consolidation
//! ```

use corp_core::{pack_complementary, CorpConfig, CorpProvisioner, PackableJob};
use corp_sim::{Cluster, EnvironmentProfile, ResourceVector, Simulation, SimulationOptions};
use corp_trace::{WorkloadConfig, WorkloadGenerator, NUM_RESOURCES};

fn main() {
    // Polarized workload: CPU-heavy and storage-heavy jobs only.
    let config = WorkloadConfig {
        num_jobs: 120,
        class_weights: [1.0, 0.0, 1.0, 0.0],
        ..WorkloadConfig::default()
    };
    let jobs = WorkloadGenerator::new(config.clone(), 2024).generate();

    // Demonstrate the packing decision itself on the first arrivals.
    let reference = ResourceVector::new([4.0, 16.0, 180.0]);
    let packable: Vec<PackableJob> = jobs
        .iter()
        .take(8)
        .map(|j| PackableJob {
            id: j.id,
            demand: ResourceVector::new(j.requested),
        })
        .collect();
    let entities = pack_complementary(&packable, &reference);
    println!("== Complementary packing of the first 8 arrivals ==");
    for e in &entities {
        println!(
            "  entity {:?}: combined demand CPU {:.1} / MEM {:.1} / STO {:.1}",
            e.jobs, e.total_demand[0], e.total_demand[1], e.total_demand[2]
        );
    }

    // Full consolidation run, packing on vs off.
    let hist = WorkloadGenerator::new(
        WorkloadConfig {
            num_jobs: 40,
            ..config.clone()
        },
        77,
    )
    .generate();
    let histories: Vec<Vec<Vec<f64>>> = (0..NUM_RESOURCES)
        .map(|k| {
            hist.iter()
                .map(|j| (0..j.duration_slots).map(|s| j.unused_at(s, k)).collect())
                .collect()
        })
        .collect();

    let run = |packing: bool| {
        let mut cfg = CorpConfig::fast();
        cfg.use_packing = packing;
        let mut corp = CorpProvisioner::new(cfg);
        corp.pretrain(&histories);
        let cluster = Cluster::from_profile(EnvironmentProfile::palmetto_cluster().with_num_pms(6));
        let mut sim = Simulation::new(
            cluster,
            jobs.clone(),
            SimulationOptions {
                measure_decision_time: false,
                ..Default::default()
            },
        );
        sim.run(&mut corp)
    };

    let with_packing = run(true);
    let without_packing = run(false);
    println!("\n== Consolidating 120 polarized jobs onto 24 VMs ==\n");
    for (label, r) in [
        ("packing on", &with_packing),
        ("packing off", &without_packing),
    ] {
        println!(
            "{:<12} overall utilization {:.3}   SLO violations {:>4.1}%   mean response {:>5.1} slots",
            label,
            r.overall_utilization,
            r.slo_violation_rate * 100.0,
            r.mean_response_slots,
        );
    }
}
