//! Offline vendored stand-in for `criterion`.
//!
//! Implements the harness surface the workspace benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, measurement_time, bench_function, finish}`,
//! `Bencher::iter`, and `black_box` — measuring wall-clock time per
//! iteration with `std::time::Instant` and printing a one-line summary per
//! benchmark. No statistical analysis, plotting, or report files: the goal
//! is that `cargo bench` runs and produces comparable mean timings, not
//! confidence intervals.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state. Holds the CLI filter so `cargo bench <name>`
/// narrows which benchmarks execute.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries as `<bin> --bench [filter]`; any
        // non-flag argument is a substring filter on `group/name` ids.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self {
            filter,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Ungrouped benchmark, reported under its bare id.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_benchmark(self, id, sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Accepted for API compatibility; this stand-in sizes runs by
    /// iteration count, not time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id);
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        run_benchmark(self.criterion, &full_id, sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark(
    criterion: &Criterion,
    id: &str,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    if let Some(filter) = &criterion.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    // Warm-up pass, then the measured samples.
    let mut bencher = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    bencher.iters = 0;
    bencher.elapsed = Duration::ZERO;
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let per_iter = if bencher.iters > 0 {
        bencher.elapsed / bencher.iters as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench: {id:<48} {:>12} /iter  ({} iters)",
        format_duration(per_iter),
        bencher.iters
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times one call of `routine`, accumulating into the sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        black_box(out);
    }
}

/// Declares a group-runner function invoking each target with a fresh-ish
/// `Criterion` (matching criterion's macro shape, including the
/// `name/config/targets` form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_accumulates_iterations() {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        for _ in 0..3 {
            b.iter(|| black_box(2u64 + 2));
        }
        assert_eq!(b.iters, 3);
    }

    #[test]
    fn format_covers_scales() {
        assert!(format_duration(Duration::from_nanos(12)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(12)).ends_with("us"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
