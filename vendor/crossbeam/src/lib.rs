//! Offline vendored stand-in for `crossbeam`.
//!
//! Provides the `crossbeam::channel` module the workspace uses: Multi-
//! Producer Multi-Consumer channels (both `unbounded` and `bounded`) built
//! on a `Mutex<VecDeque>` + `Condvar`. Semantics match crossbeam-channel
//! for the operations exposed: `send` fails once every receiver is gone,
//! `recv` fails once every sender is gone and the queue is drained, and
//! bounded `send` blocks while the queue is full.

#![forbid(unsafe_code)]

pub mod channel;
