//! MPMC channels (the subset of `crossbeam-channel` this workspace uses).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    capacity: Option<usize>,
    /// Signalled when an item arrives or the last sender leaves.
    recv_ready: Condvar,
    /// Signalled when space frees up or the last receiver leaves.
    send_ready: Condvar,
}

/// Error returned by [`Sender::send`] when every receiver has been dropped;
/// carries the unsent value back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a channel with no receivers")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has been dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty channel with no senders")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty, but senders remain.
    Empty,
    /// Channel empty and every sender dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("channel empty"),
            TryRecvError::Disconnected => f.write_str("channel disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout, but senders remain.
    Timeout,
    /// Channel empty and every sender dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Sending half of a channel. Cloneable (multi-producer).
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// Receiving half of a channel. Cloneable (multi-consumer).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates a channel of unlimited capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a channel holding at most `cap` in-flight messages; `send`
/// blocks while full. `cap` of zero is rounded up to one (this stand-in
/// has no rendezvous mode).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        capacity,
        recv_ready: Condvar::new(),
        send_ready: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Blocks while a bounded channel is full; fails once all receivers
    /// are gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.state.lock().unwrap();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match self.inner.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = self.inner.send_ready.wait(state).unwrap();
                }
                _ => break,
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.inner.recv_ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().senders += 1;
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap();
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            self.inner.recv_ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives; fails once the channel is drained
    /// and every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.state.lock().unwrap();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.inner.send_ready.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.inner.recv_ready.wait(state).unwrap();
        }
    }

    /// Blocks until a message arrives or `timeout` elapses; fails with
    /// [`RecvTimeoutError::Disconnected`] once the channel is drained and
    /// every sender is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.state.lock().unwrap();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.inner.send_ready.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (next, _timed_out) = self
                .inner
                .recv_ready
                .wait_timeout(state, deadline - now)
                .unwrap();
            state = next;
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.inner.state.lock().unwrap();
        if let Some(value) = state.queue.pop_front() {
            drop(state);
            self.inner.send_ready.notify_one();
            return Ok(value);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocking iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().receivers += 1;
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap();
        state.receivers -= 1;
        let last = state.receivers == 0;
        drop(state);
        if last {
            self.inner.send_ready.notify_all();
        }
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_single_producer() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_fails_after_senders_gone() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receivers_gone() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(42).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(42));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = bounded(4);
        let total: u64 = std::thread::scope(|s| {
            let producers: Vec<_> = (0..3)
                .map(|p| {
                    let tx = tx.clone();
                    s.spawn(move || {
                        for i in 0..50u64 {
                            tx.send(p * 100 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || rx.iter().count() as u64)
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            consumers.into_iter().map(|c| c.join().unwrap()).sum()
        });
        assert_eq!(total, 150);
    }
}
