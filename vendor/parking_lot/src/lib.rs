//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API:
//! `lock()` / `read()` / `write()` return guards directly (no poisoning —
//! a poisoned std lock means a holder panicked, and these wrappers recover
//! the guard rather than propagate, matching parking_lot semantics).

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};

/// Mutual exclusion lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Condition variable; identical to `std::sync::Condvar` but paired with
/// the non-poisoning [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u32));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 400);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
