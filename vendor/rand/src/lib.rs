//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the small slice of the rand 0.8 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic per seed, which is
//! all the simulator requires (it never claims bit-compatibility with the
//! real crate's StdRng).

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type usable as the argument of [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `f64` in `[0, 1)` from 53 random bits.
#[inline]
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)`; `span > 0`.
///
/// Uses Lemire-style rejection so the distribution is exactly uniform.
#[inline]
pub(crate) fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
float_ranges!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from `range` (half-open or inclusive).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&y));
            let z = rng.gen_range(5u64..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_interval_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| unit_f64(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
