//! Sequence-related sampling helpers.

use crate::{below, RngCore};

/// Shuffling and random choice over slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly chosen element, `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(below(rng, self.len() as u64) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        let v: Vec<u32> = Vec::new();
        assert!(v.choose(&mut rng).is_none());
    }
}
