//! `#[derive(Serialize, Deserialize)]` for the vendored `serde` crate.
//!
//! The offline build has no `syn`/`quote`, so the item is parsed directly
//! from the raw `proc_macro::TokenStream`. Supported shapes cover
//! everything this workspace derives on:
//!
//! * structs with named fields (honouring `#[serde(skip)]`);
//! * tuple structs (single unskipped field serializes transparently, like
//!   serde newtypes; otherwise as an array);
//! * enums with unit, tuple, and struct variants (externally tagged, as in
//!   serde_json's default encoding).
//!
//! Generic types are intentionally unsupported — the parser panics with a
//! clear message rather than miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Kind {
    NamedStruct(Vec<Field>),
    /// Tuple struct: per-positional-field skip flags.
    TupleStruct(Vec<bool>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum VariantBody {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Item {
    name: String,
    kind: Kind,
}

/// Emits `impl serde::Serialize` rendering the serde_json-conventional
/// encoding of the item.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut s = String::from("out.push('{');\nlet mut first = true;\n");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "first = serde::ser::write_field(out, \"{0}\", &self.{0}, first);\n",
                    f.name
                ));
            }
            s.push_str("let _ = first;\nout.push('}');");
            s
        }
        Kind::TupleStruct(skips) => {
            let live: Vec<usize> = skips
                .iter()
                .enumerate()
                .filter(|(_, &skip)| !skip)
                .map(|(i, _)| i)
                .collect();
            match live.as_slice() {
                [only] => format!("serde::Serialize::write_json(&self.{only}, out);"),
                _ => {
                    let mut s = String::from("out.push('[');\n");
                    for (n, i) in live.iter().enumerate() {
                        if n > 0 {
                            s.push_str("out.push(',');\n");
                        }
                        s.push_str(&format!("serde::Serialize::write_json(&self.{i}, out);\n"));
                    }
                    s.push_str("out.push(']');");
                    s
                }
            }
        }
        Kind::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    VariantBody::Unit => {
                        s.push_str(&format!(
                            "Self::{vn} => {{ out.push_str(\"\\\"{vn}\\\"\"); }}\n"
                        ));
                    }
                    VariantBody::Tuple(1) => {
                        s.push_str(&format!(
                            "Self::{vn}(v0) => {{ out.push_str(\"{{\\\"{vn}\\\":\"); \
                             serde::Serialize::write_json(v0, out); out.push('}}'); }}\n"
                        ));
                    }
                    VariantBody::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("v{i}")).collect();
                        s.push_str(&format!(
                            "Self::{vn}({}) => {{ out.push_str(\"{{\\\"{vn}\\\":[\");\n",
                            binds.join(", ")
                        ));
                        for (i, b) in binds.iter().enumerate() {
                            if i > 0 {
                                s.push_str("out.push(',');\n");
                            }
                            s.push_str(&format!("serde::Serialize::write_json({b}, out);\n"));
                        }
                        s.push_str("out.push_str(\"]}\"); }\n");
                    }
                    VariantBody::Named(fields) => {
                        let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        s.push_str(&format!(
                            "Self::{vn} {{ {} }} => {{ \
                             out.push_str(\"{{\\\"{vn}\\\":{{\");\nlet mut first = true;\n",
                            names.join(", ")
                        ));
                        for f in fields.iter().filter(|f| !f.skip) {
                            s.push_str(&format!(
                                "first = serde::ser::write_field(out, \"{0}\", {0}, first);\n",
                                f.name
                            ));
                        }
                        s.push_str("let _ = first;\nout.push_str(\"}}\"); }\n");
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl serde::Serialize for {} {{\n\
         fn write_json(&self, out: &mut String) {{\n{}\n}}\n}}",
        item.name, body
    )
    .parse()
    .expect("serde_derive generated invalid Serialize impl")
}

/// Emits the marker `impl serde::Deserialize` (no workspace code parses
/// serialized data back).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// --- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic types (deriving on `{name}`)");
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: Kind::NamedStruct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                kind: Kind::TupleStruct(parse_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                // Unit struct: serialize as null via an empty tuple body.
                Item {
                    name,
                    kind: Kind::TupleStruct(Vec::new()),
                }
            }
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: Kind::Enum(parse_variants(g.stream())),
            },
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("vendored serde_derive supports struct/enum only, got `{other}`"),
    }
}

/// Skips `#[...]` attribute groups (doc comments arrive as `#[doc = ...]`).
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1;
        }
    }
}

/// Like [`skip_attrs`] but reports whether any skipped attribute was
/// `#[serde(skip)]` (or `#[serde(skip, ...)]`, `#[serde(..., skip)]`).
fn skip_attrs_detecting_skip(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Bracket {
                skip |= attr_is_serde_skip(&g.stream().into_iter().collect::<Vec<_>>());
                *i += 1;
            }
        }
    }
    skip
}

fn attr_is_serde_skip(attr: &[TokenTree]) -> bool {
    match (attr.first(), attr.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip"))
        }
        _ => false,
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, got {other:?}"),
    }
}

/// Advances past type tokens up to (not including) a top-level `,`.
/// Tracks `<`/`>` depth so commas inside generic arguments don't split the
/// field; `->` in fn-pointer types is recognized and not counted.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(t) = tokens.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '-' => {
                // Possible `->`: consume both so the `>` is not miscounted.
                if matches!(tokens.get(*i + 1), Some(TokenTree::Punct(q)) if q.as_char() == '>') {
                    *i += 1;
                }
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = skip_attrs_detecting_skip(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&tokens, &mut i);
        // Consume the separating comma, if any.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<bool> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut skips = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = skip_attrs_detecting_skip(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        skips.push(skip);
    }
    skips
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantBody::Tuple(parse_tuple_fields(g.stream()).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantBody::Named(parse_named_fields(g.stream()))
            }
            _ => VariantBody::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_type(&tokens, &mut i);
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, body });
    }
    variants
}
