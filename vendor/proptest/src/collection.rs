//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::{Strategy, TestRng};

/// A length specification for [`vec`]: an exact size or a range of sizes.
pub trait SizeSpec {
    /// Half-open `[min, max)` bounds on the generated length.
    fn bounds(&self) -> (usize, usize);
}

impl SizeSpec for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl SizeSpec for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl SizeSpec for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end() + 1)
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and a length drawn from
/// the size spec.
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len_exclusive: usize,
}

/// Generates vectors whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl SizeSpec) -> VecStrategy<S> {
    let (min_len, max_len_exclusive) = size.bounds();
    assert!(
        min_len < max_len_exclusive,
        "empty length range for collection strategy"
    );
    VecStrategy {
        element,
        min_len,
        max_len_exclusive,
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.max_len_exclusive - self.min_len == 1 {
            self.min_len
        } else {
            rng.inner().gen_range(self.min_len..self.max_len_exclusive)
        };
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}
