//! The case runner backing the `proptest!` macro.

use crate::{ProptestConfig, TestCaseError, TestRng};

/// Runs `case` until `config.cases` non-rejected executions pass, panicking
/// on the first failure with the seed index needed to replay it.
pub fn run<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let target = config.cases.max(1);
    // Rejection budget, matching proptest's spirit: give up rather than
    // spin forever on an over-restrictive `prop_assume!`.
    let max_attempts = (target as u64).saturating_mul(20).max(1024);
    let mut passed = 0u32;
    let mut attempt = 0u64;
    while passed < target {
        if attempt >= max_attempts {
            panic!(
                "proptest `{name}`: too many rejected cases \
                 ({passed}/{target} passed after {attempt} attempts)"
            );
        }
        let mut rng = TestRng::for_case(name, attempt);
        let outcome = case(&mut rng);
        attempt += 1;
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed at seed index {} \
                     (case {} of {target}): {msg}",
                    attempt - 1,
                    passed + 1
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_number_of_cases() {
        let mut count = 0;
        run("counting", &ProptestConfig::with_cases(17), |_rng| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 17);
    }

    #[test]
    #[should_panic(expected = "too many rejected cases")]
    fn rejection_budget_is_finite() {
        run("always_reject", &ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::Reject)
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic_with_message() {
        run("failing", &ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
