//! Offline vendored stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: range
//! strategies over ints and floats, tuple strategies, `prop::collection::vec`
//! with fixed or ranged lengths, `.prop_map`, `Just`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros
//! with optional `#![proptest_config(ProptestConfig::with_cases(n))]`.
//!
//! Two deliberate simplifications versus real proptest:
//!
//! * **No shrinking.** A failing case reports the deterministic seed index
//!   that produced it; re-running the test replays the identical sequence.
//! * **Deterministic generation.** Case `i` of test `name` is seeded from
//!   `fnv1a(name) ^ mix(i)`, so runs are reproducible across machines —
//!   which the workspace's determinism tests require anyway.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::{Rng, SeedableRng};

pub mod collection;
pub mod runner;

/// Source of randomness handed to strategies; wraps the vendored `StdRng`.
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// Deterministic RNG for case `index` of the named test.
    pub fn for_case(name: &str, index: u64) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        let mixed = index.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31);
        Self {
            inner: rand::rngs::StdRng::seed_from_u64(hash ^ mixed),
        }
    }

    pub fn inner(&mut self) -> &mut rand::rngs::StdRng {
        &mut self.inner
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy by transforming generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.gen_value(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Range<T>
where
    T: Copy,
    Range<T>: rand::SampleRange<Output = T>,
{
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        rng.inner.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Copy,
    RangeInclusive<T>: rand::SampleRange<Output = T>,
{
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        rng.inner.gen_range(self.clone())
    }
}

impl Strategy for bool {
    type Value = bool;

    fn gen_value(&self, rng: &mut TestRng) -> bool {
        rng.inner.gen_bool(0.5)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// How a single generated case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure with its rendered message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is regenerated.
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

pub mod prelude {
    /// Path alias so `prop::collection::vec(...)` resolves as in real
    /// proptest's prelude.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::runner::run(stringify!($name), &config, |__proptest_rng| {
                $(let $pat = $crate::Strategy::gen_value(&($strategy), __proptest_rng);)*
                $body
                Ok(())
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, "assertion failed: `{:?}` != `{:?}`", lhs, rhs);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_are_deterministic_per_case() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        let s = 0u64..1000;
        assert_eq!(s.gen_value(&mut a), s.gen_value(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_values_respect_bounds(x in 10u32..20, f in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in (0i32..5, 5i32..10).prop_map(|(x, y)| (y, x))) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((0..5).contains(&b));
        }

        #[test]
        fn vec_lengths_respect_spec(
            xs in prop::collection::vec(0.0f64..1.0, 2..6),
            ys in prop::collection::vec(0u8..10, 4),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert_eq!(ys.len(), 4);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
