//! Rendering entry points (the stand-in for `serde_json`).

use crate::Serialize;

/// Renders `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    value.write_json(&mut out);
    out
}
