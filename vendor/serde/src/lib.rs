//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of serde the workspace relies on:
//!
//! * a [`Serialize`] trait that renders a value directly as JSON (the only
//!   format any caller here uses), with impls for the std types that appear
//!   in workspace structs;
//! * a marker [`Deserialize`] trait (no workspace code parses serialized
//!   data back — reports flow one way, out);
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   crate, honouring `#[serde(skip)]` on fields.
//!
//! The JSON encoding follows serde_json's conventions: structs are objects
//! in declaration order, unit enum variants are strings, data-carrying
//! variants are single-key objects, newtype structs are transparent, and
//! non-finite floats serialize as `null`. Output is byte-deterministic for
//! a given value, which the determinism regression tests rely on.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod json;
pub mod ser;

/// A value that can render itself as JSON.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn write_json(&self, out: &mut String);
}

/// Marker for types whose serialized form could be parsed back. No
/// workspace code deserializes, so this carries no methods.
pub trait Deserialize {}

// --- primitive impls -------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(itoa(*self as i128).as_str());
            }
        }
        impl Deserialize for $t {}
    )*};
}
int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn itoa(v: i128) -> String {
    v.to_string()
}

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                if self.is_finite() {
                    // `{:?}` prints the shortest representation that round-
                    // trips, always with a decimal point or exponent —
                    // deterministic and unambiguous.
                    out.push_str(&format!("{:?}", self));
                } else {
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {}
    )*};
}
float_impls!(f32, f64);

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}
impl Deserialize for bool {}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        ser::write_escaped_str(out, self);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        ser::write_escaped_str(out, self);
    }
}
impl Deserialize for String {}

impl Serialize for char {
    fn write_json(&self, out: &mut String) {
        let mut buf = [0u8; 4];
        ser::write_escaped_str(out, self.encode_utf8(&mut buf));
    }
}
impl Deserialize for char {}

// --- container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

fn write_seq<'a, T: Serialize + 'a>(out: &mut String, items: impl IntoIterator<Item = &'a T>) {
    out.push('[');
    for (i, v) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        v.write_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        write_seq(out, self);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        write_seq(out, self);
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn write_json(&self, out: &mut String) {
        write_seq(out, self);
    }
}
impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        write_seq(out, self);
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(']');
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(',');
        self.2.write_json(out);
        out.push(']');
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {}

/// Maps serialize as objects; keys must render as JSON strings, so only
/// string-keyed maps are supported. `BTreeMap` iterates in key order, which
/// keeps the encoding deterministic.
impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            ser::write_escaped_str(out, k);
            out.push(':');
            v.write_json(out);
        }
        out.push('}');
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {}

#[cfg(test)]
mod tests {
    use super::json::to_string;

    #[test]
    fn scalars() {
        assert_eq!(to_string(&3u32), "3");
        assert_eq!(to_string(&-7i64), "-7");
        assert_eq!(to_string(&1.5f64), "1.5");
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string(&true), "true");
        assert_eq!(to_string(&"a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn containers() {
        assert_eq!(to_string(&vec![1, 2, 3]), "[1,2,3]");
        assert_eq!(to_string(&[1.0f64, 2.0]), "[1.0,2.0]");
        assert_eq!(to_string(&Some(5u8)), "5");
        assert_eq!(to_string(&Option::<u8>::None), "null");
        assert_eq!(to_string(&(1u8, "x")), "[1,\"x\"]");
    }
}
