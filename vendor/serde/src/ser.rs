//! Low-level helpers shared by the derive-generated code.

use crate::Serialize;

/// Writes `s` as a JSON string literal with the mandatory escapes.
pub fn write_escaped_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes `"key":` with a leading comma when `first` is false; used by the
/// derive-generated struct serializers. Returns `false` so callers can
/// thread it as the next `first`.
pub fn write_field<T: Serialize + ?Sized>(
    out: &mut String,
    key: &str,
    value: &T,
    first: bool,
) -> bool {
    if !first {
        out.push(',');
    }
    write_escaped_str(out, key);
    out.push(':');
    value.write_json(out);
    false
}
