//! Shape assertions for the reproduced evaluation: who wins on which
//! metric, per the paper's Figs. 6-14. These are the contract the
//! experiment harness must keep; absolute values are simulator-specific.

use corp_bench::{env::run_cell, env::SchemeParams, Environment, SchemeKind};
use corp_sim::SimulationReport;

fn report(env: Environment, scheme: SchemeKind, jobs: usize, seed: u64) -> SimulationReport {
    let params = SchemeParams {
        fast_dnn: true,
        seed,
        ..Default::default()
    };
    run_cell(env, scheme, jobs, &params, false)
}

/// Fig. 6 shape: prediction error rate CORP < RCCR, CloudScale < DRA.
#[test]
fn fig6_shape_prediction_error_ordering() {
    let corp = report(Environment::Cluster, SchemeKind::Corp, 200, 7);
    let rccr = report(Environment::Cluster, SchemeKind::Rccr, 200, 7);
    let cloudscale = report(Environment::Cluster, SchemeKind::CloudScale, 200, 7);
    let dra = report(Environment::Cluster, SchemeKind::Dra, 200, 7);
    assert!(
        corp.prediction_error_rate < rccr.prediction_error_rate,
        "CORP {} !< RCCR {}",
        corp.prediction_error_rate,
        rccr.prediction_error_rate
    );
    assert!(
        corp.prediction_error_rate < cloudscale.prediction_error_rate,
        "CORP {} !< CloudScale {}",
        corp.prediction_error_rate,
        cloudscale.prediction_error_rate
    );
    assert!(
        rccr.prediction_error_rate < dra.prediction_error_rate,
        "RCCR {} !< DRA {}",
        rccr.prediction_error_rate,
        dra.prediction_error_rate
    );
    assert!(
        cloudscale.prediction_error_rate < dra.prediction_error_rate,
        "CloudScale {} !< DRA {}",
        cloudscale.prediction_error_rate,
        dra.prediction_error_rate
    );
}

/// Fig. 7 shape: overall utilization CORP > RCCR, CloudScale > DRA
/// (cluster).
#[test]
fn fig7_shape_utilization_ordering_cluster() {
    let corp = report(Environment::Cluster, SchemeKind::Corp, 200, 7);
    let rccr = report(Environment::Cluster, SchemeKind::Rccr, 200, 7);
    let cloudscale = report(Environment::Cluster, SchemeKind::CloudScale, 200, 7);
    let dra = report(Environment::Cluster, SchemeKind::Dra, 200, 7);
    assert!(
        corp.overall_utilization > rccr.overall_utilization,
        "CORP {} !> RCCR {}",
        corp.overall_utilization,
        rccr.overall_utilization
    );
    assert!(
        corp.overall_utilization > cloudscale.overall_utilization,
        "CORP {} !> CloudScale {}",
        corp.overall_utilization,
        cloudscale.overall_utilization
    );
    assert!(
        rccr.overall_utilization > dra.overall_utilization + 0.03,
        "RCCR {} !>> DRA {}",
        rccr.overall_utilization,
        dra.overall_utilization
    );
    assert!(
        cloudscale.overall_utilization > dra.overall_utilization + 0.03,
        "CloudScale {} !>> DRA {}",
        cloudscale.overall_utilization,
        dra.overall_utilization
    );
}

/// Fig. 9 shape (levels): under heavy load, CORP violates least and DRA
/// most.
#[test]
fn fig9_shape_slo_levels_cluster() {
    let corp = report(Environment::Cluster, SchemeKind::Corp, 300, 7);
    let dra = report(Environment::Cluster, SchemeKind::Dra, 300, 7);
    assert!(
        corp.slo_violation_rate < dra.slo_violation_rate,
        "CORP {} !< DRA {}",
        corp.slo_violation_rate,
        dra.slo_violation_rate
    );
    assert!(
        dra.slo_violation_rate > 0.02,
        "heavy load must hurt DRA: {}",
        dra.slo_violation_rate
    );
}

/// Fig. 8 shape: within CORP, loosening (eta, P_th) raises utilization.
#[test]
fn fig8_shape_corp_frontier_moves_with_knob() {
    let conservative = run_cell(
        Environment::Cluster,
        SchemeKind::Corp,
        200,
        &SchemeParams {
            fast_dnn: true,
            confidence: 0.95,
            prob_threshold: 0.99,
            ..Default::default()
        },
        false,
    );
    let aggressive = run_cell(
        Environment::Cluster,
        SchemeKind::Corp,
        200,
        &SchemeParams {
            fast_dnn: true,
            confidence: 0.5,
            prob_threshold: 0.4,
            ..Default::default()
        },
        false,
    );
    assert!(
        aggressive.overall_utilization > conservative.overall_utilization,
        "aggressive {} !> conservative {}",
        aggressive.overall_utilization,
        conservative.overall_utilization
    );
}

/// Fig. 11 shape: EC2 mirrors the cluster's utilization ordering.
#[test]
fn fig11_shape_utilization_ordering_ec2() {
    let corp = report(Environment::Ec2, SchemeKind::Corp, 200, 7);
    let dra = report(Environment::Ec2, SchemeKind::Dra, 200, 7);
    assert!(
        corp.overall_utilization > dra.overall_utilization + 0.03,
        "CORP {} !>> DRA {}",
        corp.overall_utilization,
        dra.overall_utilization
    );
}

/// Figs. 10/14 shape: the same workload costs more to schedule on EC2 than
/// on the cluster (communication overhead), for every scheme.
#[test]
fn fig10_fig14_shape_ec2_overhead_exceeds_cluster() {
    for scheme in [SchemeKind::Corp, SchemeKind::Dra] {
        let params = SchemeParams {
            fast_dnn: true,
            ..Default::default()
        };
        let cluster = run_cell(Environment::Cluster, scheme, 100, &params, false);
        let ec2 = run_cell(Environment::Ec2, scheme, 100, &params, false);
        assert!(
            ec2.overhead_ms > cluster.overhead_ms,
            "{scheme:?}: EC2 {} !> cluster {}",
            ec2.overhead_ms,
            cluster.overhead_ms
        );
    }
}

/// Storage is not the bottleneck resource: its wastage exceeds CPU's under
/// reservation-style DRA (paper Fig. 11 discussion).
#[test]
fn storage_is_not_the_bottleneck() {
    let dra = report(Environment::Cluster, SchemeKind::Dra, 200, 7);
    // No strict per-resource assertion (workload mixes vary), but all
    // three utilizations must be in a sane band and reported.
    for (k, u) in dra.utilization.iter().enumerate() {
        assert!(
            (0.2..=1.0).contains(u),
            "resource {k} utilization {u} out of band"
        );
    }
}
