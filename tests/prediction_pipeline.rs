//! Integration of the full CORP prediction pipeline: DNN + HMM + confidence
//! interval + Eq. 21 gate, trained on workload-generator histories.

#![allow(clippy::needless_range_loop)]

use corp_bench::{historical_histories, Environment};
use corp_core::{CorpConfig, CorpJobPredictor};
use corp_sim::ResourceVector;
use corp_trace::NUM_RESOURCES;

fn pretrained() -> CorpJobPredictor {
    let mut p = CorpJobPredictor::new(&CorpConfig::fast());
    p.pretrain(&historical_histories(Environment::Cluster, 40));
    p
}

#[test]
fn pretraining_trains_and_warms_the_gate() {
    let p = pretrained();
    assert!(p.is_trained());
    for k in 0..NUM_RESOURCES {
        assert!(
            p.gate().samples(k) > 0,
            "resource {k} gate got no warm-up evidence"
        );
    }
}

#[test]
fn predictions_track_the_recent_unused_level() {
    let mut p = pretrained();
    let low: Vec<Vec<f64>> = (0..NUM_RESOURCES).map(|_| vec![0.5; 12]).collect();
    let high: Vec<Vec<f64>> = (0..NUM_RESOURCES).map(|_| vec![5.0; 12]).collect();
    let req = ResourceVector::new([8.0, 8.0, 8.0]);
    let u_low = p.predict_job(&low, &req);
    let u_high = p.predict_job(&high, &req);
    for k in 0..NUM_RESOURCES {
        assert!(
            u_high[k] > u_low[k],
            "resource {k}: high-unused series must predict more unused ({} vs {})",
            u_high[k],
            u_low[k]
        );
    }
}

#[test]
fn higher_confidence_predicts_less_unused() {
    // Eq. 19's mechanism, end to end through the pipeline.
    let predict_at = |eta: f64| {
        let mut cfg = CorpConfig::fast();
        cfg.confidence_level = eta;
        let mut p = CorpJobPredictor::new(&cfg);
        p.pretrain(&historical_histories(Environment::Cluster, 40));
        let recent: Vec<Vec<f64>> = (0..NUM_RESOURCES).map(|_| vec![3.0; 12]).collect();
        p.predict_job(&recent, &ResourceVector::new([8.0, 8.0, 8.0]))
    };
    let conservative = predict_at(0.95);
    let aggressive = predict_at(0.5);
    let sum = |v: ResourceVector| v[0] + v[1] + v[2];
    assert!(
        sum(conservative) < sum(aggressive),
        "higher confidence must shave more: {conservative:?} vs {aggressive:?}"
    );
}

#[test]
fn gate_relocks_under_systematic_overestimation() {
    let mut p = pretrained();
    let initially_unlocked = p.unlocked(0);
    for _ in 0..80 {
        // Predictions of 10 when only 1 was unused: severe over-estimation.
        p.record_outcome_scaled(0, 1.0, 10.0, 8.0);
    }
    assert!(
        !p.unlocked(0),
        "gate must close on bad evidence (was {initially_unlocked})"
    );
}

#[test]
fn online_training_path_matches_pretraining_path() {
    // Feeding histories through add_history + maybe_train must reach the
    // same trained state as pretrain.
    let mut cfg = CorpConfig::fast();
    cfg.min_training_histories = 8;
    let mut p = CorpJobPredictor::new(&cfg);
    let histories = historical_histories(Environment::Cluster, 12);
    for i in 0..12 {
        let per_job: Vec<Vec<f64>> = (0..NUM_RESOURCES)
            .map(|k| histories[k][i].clone())
            .collect();
        p.add_history(&per_job);
    }
    assert!(p.maybe_train());
    assert!(p.is_trained());
}
