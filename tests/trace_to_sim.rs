//! Integration of the trace pipeline with the simulator: Google-format
//! records -> filter -> re-slot -> job specs -> simulation.

use corp_sim::{Cluster, EnvironmentProfile, Simulation, SimulationOptions, StaticPeakProvisioner};
use corp_trace::google::{parse_csv, to_csv};
use corp_trace::{
    filter_short_lived, resample_trace, JobSpec, TaskRecord, WorkloadConfig, WorkloadGenerator,
};

/// Serializes generated jobs into the Google-trace format (5-minute
/// records), as if they had been collected by the paper's monitoring.
fn jobs_to_records(jobs: &[JobSpec]) -> Vec<TaskRecord> {
    let mut records = Vec::new();
    for j in jobs {
        // One coarse record per 30 fine slots (300 s at 10 s slots).
        let coarse_chunks = j.demand.chunks(30);
        for (c, chunk) in coarse_chunks.enumerate() {
            let n = chunk.len() as f64;
            let mean = |r: usize| chunk.iter().map(|d| d[r]).sum::<f64>() / n;
            let start = j.arrival_slot * 10 + (c as u64) * 300;
            records.push(TaskRecord {
                start_secs: start,
                end_secs: start + (chunk.len() as u64) * 10,
                job_id: j.id,
                task_index: 0,
                cpu: mean(0),
                memory: mean(1),
                storage: mean(2),
            });
        }
    }
    records
}

#[test]
fn full_trace_pipeline_round_trips_through_csv() {
    let jobs = WorkloadGenerator::new(
        WorkloadConfig {
            num_jobs: 20,
            ..WorkloadConfig::default()
        },
        31,
    )
    .generate();
    let records = jobs_to_records(&jobs);
    assert!(!records.is_empty());

    // Serialize -> parse -> filter long jobs -> re-slot to 10 s.
    let parsed = parse_csv(&to_csv(&records)).expect("round trip");
    assert_eq!(parsed.len(), records.len());
    let short = filter_short_lived(&parsed, 300);
    let fine = resample_trace(&short, 10);
    assert!(fine.iter().all(|r| r.end_secs - r.start_secs <= 10));

    // Every surviving job's fine records cover its full coarse span.
    for job_id in short
        .iter()
        .map(|r| r.job_id)
        .collect::<std::collections::HashSet<_>>()
    {
        let coarse: u64 = short
            .iter()
            .filter(|r| r.job_id == job_id)
            .map(|r| r.end_secs - r.start_secs)
            .sum();
        let fine_total: u64 = fine
            .iter()
            .filter(|r| r.job_id == job_id)
            .map(|r| r.end_secs - r.start_secs)
            .sum();
        assert_eq!(
            coarse, fine_total,
            "job {job_id} lost coverage in re-slotting"
        );
    }
}

#[test]
fn generated_workload_runs_on_every_profile() {
    for profile in [
        EnvironmentProfile::palmetto_cluster(),
        EnvironmentProfile::amazon_ec2(),
    ] {
        let scale = if profile.vms_per_pm == 1 { 0.3 } else { 1.0 };
        let jobs = WorkloadGenerator::new(
            WorkloadConfig {
                num_jobs: 40,
                demand_scale: scale,
                ..WorkloadConfig::default()
            },
            37,
        )
        .generate();
        let name = profile.name.clone();
        let mut sim = Simulation::new(
            Cluster::from_profile(profile),
            jobs,
            SimulationOptions {
                measure_decision_time: false,
                ..Default::default()
            },
        );
        let report = sim.run(&mut StaticPeakProvisioner);
        assert_eq!(
            report.completed + report.rejected + report.unfinished,
            40,
            "{name}"
        );
        assert_eq!(
            report.rejected, 0,
            "{name}: no job should exceed VM capacity"
        );
    }
}

#[test]
fn workload_statistics_match_the_papers_premises() {
    let jobs = WorkloadGenerator::new(
        WorkloadConfig {
            num_jobs: 300,
            ..WorkloadConfig::default()
        },
        41,
    )
    .generate();
    // Short-lived: all durations within the 5-minute timeout.
    assert!(jobs.iter().all(|j| j.duration_slots as f64 * 10.0 <= 300.0));
    // Over-provisioned: mean demand well below the request on average.
    let mut ratio_sum = 0.0;
    for j in &jobs {
        ratio_sum += j.mean_demand(0) / j.requested[0];
    }
    let mean_ratio = ratio_sum / jobs.len() as f64;
    assert!(
        (0.3..0.75).contains(&mean_ratio),
        "mean demand/request ratio {mean_ratio} outside the over-provisioning regime"
    );
}
