//! End-to-end integration: trace generation -> cluster simulation -> every
//! provisioner -> report invariants.

use corp_bench::{env::run_cell, env::SchemeParams, Environment, SchemeKind, ALL_SCHEMES};
use corp_core::{CorpConfig, CorpProvisioner};
use corp_sim::{Cluster, EnvironmentProfile, Simulation, SimulationOptions, StaticPeakProvisioner};
use corp_trace::{WorkloadConfig, WorkloadGenerator};

fn fast_params(seed: u64) -> SchemeParams {
    SchemeParams {
        fast_dnn: true,
        seed,
        ..Default::default()
    }
}

#[test]
fn every_scheme_terminates_all_jobs_in_both_environments() {
    for env in [Environment::Cluster, Environment::Ec2] {
        for scheme in ALL_SCHEMES {
            let report = run_cell(env, scheme, 60, &fast_params(11), false);
            assert_eq!(
                report.completed + report.rejected + report.unfinished,
                60,
                "{scheme:?} on {env:?} lost jobs: {report:?}"
            );
            assert_eq!(
                report.invalid_actions, 0,
                "{scheme:?} on {env:?}: {report:?}"
            );
            assert!(report.slots_run > 0);
        }
    }
}

#[test]
fn reports_carry_consistent_metrics() {
    let report = run_cell(
        Environment::Cluster,
        SchemeKind::Corp,
        80,
        &fast_params(13),
        false,
    );
    assert!((0.0..=1.0).contains(&report.overall_utilization));
    assert!((0.0..=1.0).contains(&report.slo_violation_rate));
    assert!((0.0..=1.0).contains(&report.prediction_error_rate));
    assert!(report.utilization.iter().all(|u| (0.0..=1.0).contains(u)));
    assert!(report.violated <= report.completed);
    assert_eq!(report.provisioner, "CORP");
}

#[test]
fn corp_run_is_deterministic() {
    let a = run_cell(
        Environment::Cluster,
        SchemeKind::Corp,
        50,
        &fast_params(17),
        false,
    );
    let b = run_cell(
        Environment::Cluster,
        SchemeKind::Corp,
        50,
        &fast_params(17),
        false,
    );
    assert_eq!(
        a.overall_utilization.to_bits(),
        b.overall_utilization.to_bits()
    );
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.violated, b.violated);
    assert_eq!(a.predictions_resolved, b.predictions_resolved);
}

#[test]
fn corp_reclaims_meaningfully_versus_static_peak() {
    // The headline claim, end to end: opportunistic reallocation beats
    // reservation-based allocation on utilization.
    let cluster = || Cluster::from_profile(EnvironmentProfile::palmetto_cluster().with_num_pms(8));
    let jobs = || {
        WorkloadGenerator::new(
            WorkloadConfig {
                num_jobs: 120,
                ..WorkloadConfig::default()
            },
            23,
        )
        .generate()
    };
    let opts = SimulationOptions {
        measure_decision_time: false,
        ..Default::default()
    };

    let mut corp = CorpProvisioner::new(CorpConfig::fast());
    corp.pretrain(&corp_bench::historical_histories(Environment::Cluster, 40));
    let corp_report = Simulation::new(cluster(), jobs(), opts.clone()).run(&mut corp);
    let peak_report = Simulation::new(cluster(), jobs(), opts).run(&mut StaticPeakProvisioner);

    assert!(
        corp_report.overall_utilization > peak_report.overall_utilization + 0.02,
        "CORP {} vs static peak {}",
        corp_report.overall_utilization,
        peak_report.overall_utilization
    );
}

#[test]
fn overhead_is_reported_and_ec2_costs_more() {
    let cluster = run_cell(
        Environment::Cluster,
        SchemeKind::Corp,
        80,
        &fast_params(29),
        false,
    );
    let ec2 = run_cell(
        Environment::Ec2,
        SchemeKind::Corp,
        80,
        &fast_params(29),
        false,
    );
    // Comm-only overhead (decision time disabled): EC2's per-message
    // latency is 12x the cluster's.
    assert!(cluster.overhead_ms > 0.0);
    assert!(
        ec2.overhead_ms > cluster.overhead_ms,
        "EC2 {} vs cluster {}",
        ec2.overhead_ms,
        cluster.overhead_ms
    );
}
