//! Property tests for the two-phase-commit `PlacementStore`.
//!
//! The safety contract: under *arbitrary* interleavings of reserve /
//! confirm / abort, (1) committed + reserved totals never exceed any VM's
//! capacity, and (2) every admitted reservation is eventually resolved —
//! confirmed or aborted, never leaked. Sequential sequences explore the
//! full interleaving space (the store is a single linearizable lock);
//! a racing-threads property checks the same invariants hold under real
//! concurrency.

use corp_cluster::{
    PlacementStore, ProvisionerFactory, ReservationId, ShardConfig, ShardedProvisioner,
};
use corp_faults::{ControlFaultPlan, SlotShard};
use corp_sim::{
    PendingJobView, Provisioner, ResourceVector, SlotContext, StaticPeakProvisioner, VmView,
};
use proptest::prelude::*;
use std::collections::HashMap;

const VMS: usize = 4;
const CAPACITY: f64 = 4.0;
const EPS: f64 = 1e-9;

fn store() -> PlacementStore {
    PlacementStore::new(vec![ResourceVector::splat(CAPACITY); VMS])
}

/// Drains `open`, alternately confirming and aborting, so every hold is
/// resolved one way or the other.
fn resolve_all(store: &PlacementStore, open: &mut Vec<ReservationId>) {
    for (i, id) in open.drain(..).enumerate() {
        if i % 2 == 0 {
            store.confirm(id).expect("open hold confirms");
        } else {
            store.abort(id).expect("open hold aborts");
        }
    }
}

/// Applies one encoded op; kind 0 = reserve, 1 = confirm oldest, 2 = abort
/// newest.
fn apply(store: &PlacementStore, open: &mut Vec<ReservationId>, kind: usize, vm: usize, amt: f64) {
    match kind {
        0 => {
            if let Ok(id) = store.reserve(0, vm, ResourceVector::splat(amt)) {
                open.push(id);
            }
        }
        1 => {
            if !open.is_empty() {
                store.confirm(open.remove(0)).expect("tracked hold is open");
            }
        }
        _ => {
            if let Some(id) = open.pop() {
                store.abort(id).expect("tracked hold is open");
            }
        }
    }
}

proptest! {
    #[test]
    fn arbitrary_sequential_interleavings_never_overcommit(
        ops in prop::collection::vec((0usize..3, 0usize..VMS, 0.0f64..3.0), 1..120),
    ) {
        let store = store();
        let mut open: Vec<ReservationId> = Vec::new();
        for &(kind, vm, amt) in &ops {
            apply(&store, &mut open, kind, vm, amt);
            prop_assert!(store.holds_invariants(EPS), "invariant broken mid-sequence");
        }
        resolve_all(&store, &mut open);
        prop_assert_eq!(store.outstanding(), 0);
        prop_assert!(store.holds_invariants(EPS));
        let c = store.counters();
        prop_assert_eq!(
            c.commits + c.aborts, c.reservations,
            "every admitted reservation resolved exactly once"
        );
    }

    #[test]
    fn racing_threads_never_overcommit(
        per_thread in prop::collection::vec(
            prop::collection::vec((0usize..3, 0usize..VMS, 0.0f64..2.5), 0..60),
            2..5,
        ),
    ) {
        let store = store();
        let store = &store;
        std::thread::scope(|scope| {
            for ops in &per_thread {
                scope.spawn(move || {
                    let mut open: Vec<ReservationId> = Vec::new();
                    for &(kind, vm, amt) in ops {
                        match kind {
                            0 => {
                                if let Ok(id) = store.reserve(0, vm, ResourceVector::splat(amt)) {
                                    open.push(id);
                                }
                            }
                            1 => {
                                if !open.is_empty() {
                                    store.confirm(open.remove(0)).expect("own hold is open");
                                }
                            }
                            _ => {
                                if let Some(id) = open.pop() {
                                    store.abort(id).expect("own hold is open");
                                }
                            }
                        }
                        assert!(store.holds_invariants(EPS), "invariant broken under race");
                    }
                    resolve_all(store, &mut open);
                });
            }
        });
        prop_assert_eq!(store.outstanding(), 0);
        prop_assert!(store.holds_invariants(EPS));
        let c = store.counters();
        prop_assert_eq!(c.commits + c.aborts, c.reservations);
    }

    #[test]
    fn refused_reservations_change_nothing(
        fill in 0.0f64..4.0,
        excess in 0.1f64..4.0,
    ) {
        let store = store();
        let id = store.reserve(0, 0, ResourceVector::splat(fill)).expect("fits capacity");
        store.confirm(id).expect("open hold confirms");
        let before = store.free(0).expect("vm 0 exists");
        // A request beyond the remaining headroom must be refused and must
        // not perturb the ledger.
        let request = CAPACITY - fill + excess;
        prop_assert!(store.reserve(0, 0, ResourceVector::splat(request)).is_err());
        prop_assert_eq!(store.free(0).expect("vm 0 exists"), before);
        prop_assert_eq!(store.counters().conflicts, 1);
    }

    #[test]
    fn crash_recovery_interleavings_preserve_invariants(
        ops in prop::collection::vec((0usize..5, 0usize..VMS, 0.0f64..3.0), 1..150),
    ) {
        // Crashes (capacity -> zero) wipe a VM's commitments and abort its
        // open holds; recoveries restore nominal capacity. Under arbitrary
        // interleavings with reserve/confirm/abort the ledger must never
        // overcommit, and every admitted reservation must still resolve
        // exactly once — whether by the shard or by the crash itself.
        let store = store();
        let mut open: Vec<ReservationId> = Vec::new();
        for &(kind, vm, amt) in &ops {
            match kind {
                0 => {
                    if let Ok(id) = store.reserve(0, vm, ResourceVector::splat(amt)) {
                        open.push(id);
                    }
                }
                // A crash may already have aborted a tracked hold, so
                // confirm/abort answering UnknownReservation is legitimate
                // here (and counts nothing twice).
                1 => {
                    if !open.is_empty() {
                        let _ = store.confirm(open.remove(0));
                    }
                }
                2 => {
                    if let Some(id) = open.pop() {
                        let _ = store.abort(id);
                    }
                }
                3 => {
                    store.set_capacity(vm, ResourceVector::ZERO);
                }
                _ => {
                    store.set_capacity(vm, ResourceVector::splat(CAPACITY));
                }
            }
            prop_assert!(store.holds_invariants(EPS), "invariant broken mid-sequence");
        }
        for id in open.drain(..) {
            let _ = store.abort(id);
        }
        prop_assert_eq!(store.outstanding(), 0);
        prop_assert!(store.holds_invariants(EPS));
        let c = store.counters();
        prop_assert_eq!(
            c.commits + c.aborts, c.reservations,
            "crash-aborted holds still resolve exactly once"
        );
    }

    #[test]
    fn indexed_best_fit_matches_linear_scan_across_interleavings(
        ops in prop::collection::vec((0usize..8, 0usize..VMS, 0u8..=6), 1..150),
        demand in (0u8..=6).prop_map(|d| ResourceVector::splat(d as f64 * 0.5)),
    ) {
        // The store's incremental volume index must answer exactly what a
        // linear smallest-volume scan over free_all() answers — including
        // ties (quantized amounts make equal headrooms common, and both
        // sides must break toward the lower VM id) — after any interleaving
        // of reserve / confirm / abort / adjust / crash / recovery /
        // begin_slot rebases.
        let reference = ResourceVector::splat(CAPACITY);
        let linear = |store: &PlacementStore, demand: &ResourceVector| -> Option<usize> {
            let mut best: Option<(f64, usize)> = None;
            for (vm, free) in store.free_all().into_iter().enumerate() {
                if !demand.fits_within(&free) {
                    continue;
                }
                let vol = free.volume(&reference);
                if best.map(|(v, _)| vol < v).unwrap_or(true) {
                    best = Some((vol, vm));
                }
            }
            best.map(|(_, vm)| vm)
        };
        let store = store();
        let mut open: Vec<ReservationId> = Vec::new();
        for &(kind, vm, q) in &ops {
            let amt = ResourceVector::splat(q as f64 * 0.5);
            match kind {
                0 | 1 => {
                    if let Ok(id) = store.reserve(0, vm, amt) {
                        open.push(id);
                    }
                }
                2 => {
                    if !open.is_empty() {
                        let _ = store.confirm(open.remove(0));
                    }
                }
                3 => {
                    if let Some(id) = open.pop() {
                        let _ = store.abort(id);
                    }
                }
                4 => {
                    let _ = store.adjust(vm, ResourceVector::ZERO, amt);
                }
                5 => {
                    store.set_capacity(vm, ResourceVector::ZERO);
                }
                6 => {
                    store.set_capacity(vm, ResourceVector::splat(CAPACITY));
                }
                _ => {
                    // Whole-fleet rebase (capacities restored to nominal so
                    // the authoritative committed snapshot fits even after
                    // crashes): drops the index, forcing a lazy rebuild on
                    // the next query.
                    store.begin_slot_full(&[ResourceVector::splat(CAPACITY); VMS], &[amt; VMS]);
                    open.clear();
                }
            }
            prop_assert_eq!(
                store.best_fit(&demand, &reference),
                linear(&store, &demand),
                "index diverged from linear scan after op ({}, {}, {})", kind, vm, q
            );
            prop_assert!(store.holds_invariants(EPS));
        }
    }

    #[test]
    fn striped_store_is_equivalent_to_single_lock_reference(
        stripes in 2usize..=8,
        ops in prop::collection::vec((0usize..6, 0usize..VMS, 0u8..=6), 1..150),
    ) {
        // Striping is a locking strategy, not a semantic: any interleaving
        // of reserve / confirm / abort / crash / recovery / whole-fleet
        // rebase must answer exactly what a single-lock (stripes = 1)
        // store answers — same admission outcomes, same free columns,
        // same counters, same best-fit winners. Reservation ids are
        // encoding-dependent, so both stores track their own open-hold
        // lists positionally (confirm the oldest, abort the newest).
        let caps = vec![ResourceVector::splat(CAPACITY); VMS];
        let striped = PlacementStore::with_stripes(caps.clone(), stripes);
        let single = PlacementStore::with_stripes(caps, 1);
        let reference = ResourceVector::splat(CAPACITY);
        let mut open_striped: Vec<ReservationId> = Vec::new();
        let mut open_single: Vec<ReservationId> = Vec::new();
        for &(kind, vm, q) in &ops {
            let amt = ResourceVector::splat(q as f64 * 0.5);
            match kind {
                0 => {
                    let a = striped.reserve(0, vm, amt);
                    let b = single.reserve(0, vm, amt);
                    prop_assert_eq!(a.is_ok(), b.is_ok(), "admission diverged on ({}, {})", vm, q);
                    if let (Ok(a), Ok(b)) = (a, b) {
                        open_striped.push(a);
                        open_single.push(b);
                    }
                }
                1 => {
                    if !open_striped.is_empty() {
                        prop_assert_eq!(
                            striped.confirm(open_striped.remove(0)).is_ok(),
                            single.confirm(open_single.remove(0)).is_ok()
                        );
                    }
                }
                2 => {
                    if let (Some(a), Some(b)) = (open_striped.pop(), open_single.pop()) {
                        prop_assert_eq!(striped.abort(a).is_ok(), single.abort(b).is_ok());
                    }
                }
                3 => {
                    striped.set_capacity(vm, ResourceVector::ZERO);
                    single.set_capacity(vm, ResourceVector::ZERO);
                }
                4 => {
                    striped.set_capacity(vm, ResourceVector::splat(CAPACITY));
                    single.set_capacity(vm, ResourceVector::splat(CAPACITY));
                }
                _ => {
                    let committed = [amt; VMS];
                    striped.begin_slot_full(&[reference; VMS], &committed);
                    single.begin_slot_full(&[reference; VMS], &committed);
                    open_striped.clear();
                    open_single.clear();
                }
            }
            prop_assert_eq!(striped.free_all(), single.free_all());
            prop_assert_eq!(striped.outstanding(), single.outstanding());
            prop_assert_eq!(
                striped.best_fit(&amt, &reference),
                single.best_fit(&amt, &reference),
                "best-fit diverged after op ({}, {}, {})", kind, vm, q
            );
            let (cs, c1) = (striped.counters(), single.counters());
            prop_assert_eq!(cs.reservations, c1.reservations);
            prop_assert_eq!(cs.commits, c1.commits);
            prop_assert_eq!(cs.conflicts, c1.conflicts);
            prop_assert_eq!(cs.aborts, c1.aborts);
            prop_assert!(striped.holds_invariants(EPS));
            prop_assert!(single.holds_invariants(EPS));
        }
    }

    #[test]
    fn fast_path_fallback_preserves_no_overcommit_under_forced_conflicts(
        stripes in 1usize..=8,
        ops in prop::collection::vec((0usize..2, 0usize..VMS, 1u8..=4), 1..120),
        rebase_every in 3usize..10,
    ) {
        // Two shards hammer the same VMs through the optimistic fast path;
        // interleaved writers force epoch conflicts, and every miss falls
        // back to full 2PC (reserve + confirm) exactly as the coordinator
        // does. Whatever the conflict pattern: no overcommit, and every
        // admitted reservation resolves exactly once. Periodic slot
        // rebases reset writer marks mid-sequence, so the properties also
        // cover marks going stale across slot boundaries.
        let caps = vec![ResourceVector::splat(CAPACITY); VMS];
        let store = PlacementStore::with_stripes(caps, stripes);
        let mut forced_conflicts = 0u64;
        for (i, &(shard, vm, q)) in ops.iter().enumerate() {
            if i % rebase_every == 0 {
                store.begin_slot(&[ResourceVector::ZERO; VMS]);
            }
            let amt = ResourceVector::splat(q as f64 * 0.5);
            if let Err(miss) = store.try_fast_commit(shard, vm, amt) {
                if miss == corp_cluster::FastPathMiss::Contended {
                    forced_conflicts += 1;
                }
                // The coordinator's fallback: full 2PC at the same position.
                if let Ok(id) = store.reserve(shard, vm, amt) {
                    store.confirm(id).expect("own hold confirms");
                }
            }
            prop_assert!(store.holds_invariants(EPS), "overcommit after op {}", i);
        }
        let c = store.counters();
        prop_assert_eq!(c.commits + c.aborts, c.reservations);
        prop_assert_eq!(c.epoch_conflicts, forced_conflicts, "every contended miss counted");
        prop_assert_eq!(store.outstanding(), 0, "fast path leaves no dangling holds");
    }

    #[test]
    fn shard_kills_never_lose_or_duplicate_pending_jobs(
        kills in prop::collection::vec((0u64..6, 0usize..3), 0..10),
        num_jobs in 1usize..10,
    ) {
        // Killing a shard worker mid-run must not lose a pending job (its
        // slot falls back to inline scheduling, or the job stays pending
        // for the restarted worker) and must never place one twice.
        const SHARDS: usize = 3;
        const FLEET: usize = 4;
        let cap = ResourceVector::splat(100.0);
        let plan = ControlFaultPlan::new(
            kills
                .iter()
                .map(|&(slot, shard)| SlotShard { slot, shard })
                .collect(),
            vec![],
            vec![],
        );
        let factories: Vec<ProvisionerFactory> = (0..SHARDS)
            .map(|_| {
                Box::new(|| Box::new(StaticPeakProvisioner) as Box<dyn Provisioner + Send>) as _
            })
            .collect();
        let mut p = ShardedProvisioner::with_factories(
            "static-peak",
            factories,
            ShardConfig {
                fault_plan: Some(plan),
                ..ShardConfig::default()
            },
        );
        let mut committed = [ResourceVector::ZERO; FLEET];
        let mut pending: Vec<u64> = (0..num_jobs as u64).collect();
        let mut placed: HashMap<u64, usize> = HashMap::new();
        for slot in 0..8u64 {
            let vms: Vec<VmView> = committed
                .iter()
                .enumerate()
                .map(|(id, &c)| VmView {
                    id,
                    capacity: cap,
                    committed: c,
                    free: cap.saturating_sub(&c),
                    jobs: vec![],
                    unused_history: vec![],
                })
                .collect();
            let views: Vec<PendingJobView> = pending
                .iter()
                .map(|&id| PendingJobView {
                    id,
                    requested: ResourceVector::splat(1.0),
                    arrival_slot: 0,
                    slo_slots: 10,
                    handle: corp_sim::JobHandle::DETACHED,
                })
                .collect();
            let committed_col: Vec<ResourceVector> = committed.to_vec();
            let ctx = SlotContext {
                slot,
                vms: &vms,
                pending: &views,
                committed: &committed_col,
                max_vm_capacity: cap,
            };
            let slot_plan = p.provision(&ctx);
            for pl in &slot_plan.placements {
                *placed.entry(pl.job).or_insert(0) += 1;
                prop_assert!(
                    pending.contains(&pl.job),
                    "placed job {} that was not pending", pl.job
                );
                pending.retain(|&j| j != pl.job);
                committed[pl.vm] += pl.allocation;
                prop_assert!(
                    committed[pl.vm].fits_within(&cap),
                    "placement overcommitted vm {}", pl.vm
                );
            }
            if let Some(store) = p.store() {
                prop_assert!(store.holds_invariants(EPS));
            }
        }
        prop_assert!(pending.is_empty(), "jobs lost under shard kills: {:?}", pending);
        for (&job, &count) in &placed {
            prop_assert_eq!(count, 1, "job {} placed {} times", job, count);
        }
    }
}
