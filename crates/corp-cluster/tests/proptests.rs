//! Property tests for the two-phase-commit `PlacementStore`.
//!
//! The safety contract: under *arbitrary* interleavings of reserve /
//! confirm / abort, (1) committed + reserved totals never exceed any VM's
//! capacity, and (2) every admitted reservation is eventually resolved —
//! confirmed or aborted, never leaked. Sequential sequences explore the
//! full interleaving space (the store is a single linearizable lock);
//! a racing-threads property checks the same invariants hold under real
//! concurrency.

use corp_cluster::{PlacementStore, ReservationId};
use corp_sim::ResourceVector;
use proptest::prelude::*;

const VMS: usize = 4;
const CAPACITY: f64 = 4.0;
const EPS: f64 = 1e-9;

fn store() -> PlacementStore {
    PlacementStore::new(vec![ResourceVector::splat(CAPACITY); VMS])
}

/// Drains `open`, alternately confirming and aborting, so every hold is
/// resolved one way or the other.
fn resolve_all(store: &PlacementStore, open: &mut Vec<ReservationId>) {
    for (i, id) in open.drain(..).enumerate() {
        if i % 2 == 0 {
            store.confirm(id).expect("open hold confirms");
        } else {
            store.abort(id).expect("open hold aborts");
        }
    }
}

/// Applies one encoded op; kind 0 = reserve, 1 = confirm oldest, 2 = abort
/// newest.
fn apply(store: &PlacementStore, open: &mut Vec<ReservationId>, kind: usize, vm: usize, amt: f64) {
    match kind {
        0 => {
            if let Ok(id) = store.reserve(0, vm, ResourceVector::splat(amt)) {
                open.push(id);
            }
        }
        1 => {
            if !open.is_empty() {
                store.confirm(open.remove(0)).expect("tracked hold is open");
            }
        }
        _ => {
            if let Some(id) = open.pop() {
                store.abort(id).expect("tracked hold is open");
            }
        }
    }
}

proptest! {
    #[test]
    fn arbitrary_sequential_interleavings_never_overcommit(
        ops in prop::collection::vec((0usize..3, 0usize..VMS, 0.0f64..3.0), 1..120),
    ) {
        let store = store();
        let mut open: Vec<ReservationId> = Vec::new();
        for &(kind, vm, amt) in &ops {
            apply(&store, &mut open, kind, vm, amt);
            prop_assert!(store.holds_invariants(EPS), "invariant broken mid-sequence");
        }
        resolve_all(&store, &mut open);
        prop_assert_eq!(store.outstanding(), 0);
        prop_assert!(store.holds_invariants(EPS));
        let c = store.counters();
        prop_assert_eq!(
            c.commits + c.aborts, c.reservations,
            "every admitted reservation resolved exactly once"
        );
    }

    #[test]
    fn racing_threads_never_overcommit(
        per_thread in prop::collection::vec(
            prop::collection::vec((0usize..3, 0usize..VMS, 0.0f64..2.5), 0..60),
            2..5,
        ),
    ) {
        let store = store();
        let store = &store;
        std::thread::scope(|scope| {
            for ops in &per_thread {
                scope.spawn(move || {
                    let mut open: Vec<ReservationId> = Vec::new();
                    for &(kind, vm, amt) in ops {
                        match kind {
                            0 => {
                                if let Ok(id) = store.reserve(0, vm, ResourceVector::splat(amt)) {
                                    open.push(id);
                                }
                            }
                            1 => {
                                if !open.is_empty() {
                                    store.confirm(open.remove(0)).expect("own hold is open");
                                }
                            }
                            _ => {
                                if let Some(id) = open.pop() {
                                    store.abort(id).expect("own hold is open");
                                }
                            }
                        }
                        assert!(store.holds_invariants(EPS), "invariant broken under race");
                    }
                    resolve_all(store, &mut open);
                });
            }
        });
        prop_assert_eq!(store.outstanding(), 0);
        prop_assert!(store.holds_invariants(EPS));
        let c = store.counters();
        prop_assert_eq!(c.commits + c.aborts, c.reservations);
    }

    #[test]
    fn refused_reservations_change_nothing(
        fill in 0.0f64..4.0,
        excess in 0.1f64..4.0,
    ) {
        let store = store();
        let id = store.reserve(0, 0, ResourceVector::splat(fill)).expect("fits capacity");
        store.confirm(id).expect("open hold confirms");
        let before = store.free(0).expect("vm 0 exists");
        // A request beyond the remaining headroom must be refused and must
        // not perturb the ledger.
        let request = CAPACITY - fill + excess;
        prop_assert!(store.reserve(0, 0, ResourceVector::splat(request)).is_err());
        prop_assert_eq!(store.free(0).expect("vm 0 exists"), before);
        prop_assert_eq!(store.counters().conflicts, 1);
    }
}
