//! The pipeline's placement stage over the two-phase-commit store.
//!
//! [`TwoPhaseBackend`] implements
//! [`corp_core::pipeline::PlacementBackend`] against the
//! [`PlacementStore`], making the distributed path a *backend choice*
//! rather than a separate code path: the monolithic schemes place through
//! `DirectBackend`, the coordinator's arbitration places through this —
//! same trait, same claim/commit contract.
//!
//! One `choose` call is one complete 2PC claim: `reserve` the proposed VM
//! (phase 1), `confirm` on admission (phase 2), and on conflict retry
//! against the store's best-fit VM up to the retry budget. The returned
//! [`Claim`] carries the conflict/retry counts for the coordinator's
//! control-plane statistics; `claim.vm == None` means the proposal
//! aborted and its job stays pending (the queue is the backoff).
//!
//! With [`TwoPhaseBackend::defer_confirms`], phase 2 is *batched*: claims
//! still reserve at their arbitration position (so admission ordering is
//! unchanged — a hold blocks headroom exactly like a commitment), but the
//! confirms accumulate and land as one
//! [`confirm_batch`](PlacementStore::confirm_batch) round per slot, one
//! stripe acquisition per touched stripe instead of one per claim. Moving
//! a hold from reserved to committed never changes any VM's headroom, so
//! deferral is invisible to every admission decision in between.

use corp_core::pipeline::{Claim, PlacementBackend};
use corp_sim::ResourceVector;
use rand::rngs::StdRng;

use crate::store::{PlacementStore, ReservationId, ReserveError};

/// A [`PlacementBackend`] whose claims are two-phase-commit reservations
/// against a shared [`PlacementStore`].
pub struct TwoPhaseBackend<'a> {
    store: &'a PlacementStore,
    shard: usize,
    max_retries: usize,
    /// `Some` once [`Self::defer_confirms`] has been called: admitted
    /// reservations buffer here until [`Self::flush_confirms`].
    deferred: Option<Vec<ReservationId>>,
}

impl<'a> TwoPhaseBackend<'a> {
    /// Builds a backend claiming on behalf of shard 0; the coordinator
    /// switches the origin per proposal with [`Self::set_origin`].
    pub fn new(store: &'a PlacementStore, max_retries: usize) -> Self {
        TwoPhaseBackend {
            store,
            shard: 0,
            max_retries,
            deferred: None,
        }
    }

    /// Sets the shard subsequent claims are attributed to.
    pub fn set_origin(&mut self, shard: usize) {
        self.shard = shard;
    }

    /// Switches phase 2 to batched mode: subsequent claims reserve
    /// immediately but confirm only at [`Self::flush_confirms`].
    pub fn defer_confirms(&mut self) {
        self.deferred.get_or_insert_with(Vec::new);
    }

    /// Commits every deferred reservation in one batched round and returns
    /// how many were confirmed. No-op (zero) when nothing was deferred.
    ///
    /// Between a deferred reserve and its flush nothing can invalidate the
    /// hold in the coordinator's sequential arbitration (crash rebases
    /// happen between slots), so every confirm is expected to succeed;
    /// a hold that vanished anyway (possible only for racing external
    /// users of the store) is simply not counted.
    pub fn flush_confirms(&mut self) -> u64 {
        let Some(ids) = self.deferred.as_mut() else {
            return 0;
        };
        if ids.is_empty() {
            return 0;
        }
        let results = self.store.confirm_batch(ids);
        ids.clear();
        results.iter().filter(|r| r.is_ok()).count() as u64
    }
}

impl PlacementBackend for TwoPhaseBackend<'_> {
    fn begin_slot(&mut self, _pools: &[ResourceVector], _reference: &ResourceVector) {
        // The coordinator rebases the store against the engine's committed
        // capacities once per slot (`begin_slot_full`), before proposals
        // even exist; there is no per-placement-round setup.
    }

    fn choose(
        &mut self,
        _pools: &[ResourceVector],
        fit: &ResourceVector,
        hint: Option<usize>,
        reference: &ResourceVector,
        _rng: &mut StdRng,
    ) -> Claim {
        let mut claim = Claim {
            vm: None,
            conflicts: 0,
            retries: 0,
        };
        let mut target = hint.unwrap_or(0);
        let mut attempts = 0usize;
        loop {
            match self.store.reserve(self.shard, target, *fit) {
                Ok(id) => {
                    if let Some(deferred) = self.deferred.as_mut() {
                        deferred.push(id);
                    } else if self.store.confirm(id).is_err() {
                        // The hold vanished (cannot happen in sequential
                        // arbitration, but typed handling beats a panic):
                        // treat as an abort.
                        break;
                    }
                    claim.vm = Some(target);
                    break;
                }
                Err(ReserveError::Conflict) => {
                    claim.conflicts += 1;
                    if attempts >= self.max_retries {
                        break;
                    }
                    match self.store.best_fit(fit, reference) {
                        Some(vm) => {
                            attempts += 1;
                            claim.retries += 1;
                            target = vm;
                        }
                        None => break,
                    }
                }
                Err(ReserveError::UnknownVm) => break,
            }
        }
        claim
    }

    fn debit(&mut self, _vm: usize, _pool_after: &ResourceVector, _reference: &ResourceVector) {
        // `confirm` already committed the capacity inside the store.
    }
}
