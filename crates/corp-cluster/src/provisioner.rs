//! The sharded control-plane coordinator, adapting N scheduler shards to
//! the engine's single-`Provisioner` interface.
//!
//! Each shard is a long-lived worker thread owning one full scheduler
//! pipeline, fed over crossbeam channels (spawning threads per slot would
//! put coordination overhead on the critical path of every decision).
//! Each slot then runs in two phases:
//!
//! 1. **Propose (parallel).** The coordinator snapshots the fleet once
//!    (shared read-only via `Arc`) and posts it to every shard; each
//!    worker builds its own narrowed view — only the jobs it owns, see
//!    [`crate::shard`] — runs its pipeline, and ships its
//!    [`ProvisionPlan`] back on its reply channel.
//! 2. **Arbitrate (sequential, deterministic).** The coordinator replays
//!    the proposals against the striped [`PlacementStore`] in a fixed
//!    order — allocation adjustments first (shrinks before grows, as the
//!    engine applies them), then placements round-robin by (proposal
//!    index, shard). Each placement first attempts the store's
//!    **optimistic fast path**
//!    ([`PlacementStore::try_fast_commit`]): when no other shard has
//!    touched the proposed VM this slot, both 2PC phases fuse into one
//!    commit under a single stripe lock. On any miss — foreign writer,
//!    capacity conflict, unknown VM — the claim falls back to full
//!    ordered 2PC at the same arbitration position: open a reservation
//!    (phase 1), on conflict retry against the next-best-fit VM up to the
//!    retry budget, after which the proposal aborts and the job stays
//!    pending — the queue itself is the bounded backoff, since the owning
//!    shard re-proposes next slot. Fallback confirms are deferred and land
//!    as one batched round per slot
//!    ([`PlacementStore::confirm_batch`], one acquisition per touched
//!    stripe); a hold blocks headroom exactly like a commitment, so
//!    deferral is invisible to admission. Either way the committed
//!    sequence the store validated is exactly the sequence the engine will
//!    apply: a store-approved plan can never trip the engine's validators.
//!    The fast path takes claims in the same canonical order the fallback
//!    does, so it changes per-claim cost, never outcomes — at one shard no
//!    VM ever sees a foreign writer, every claim fast-commits, and reports
//!    stay byte-identical to the monolithic path.
//!
//! ## Supervision
//!
//! The coordinator assumes workers can die at any point: worker bodies run
//! under `catch_unwind`, replies are slot-tagged and waited on with a
//! bounded timeout, and a scheduled [`ControlFaultPlan`] can kill workers,
//! drop requests, or delay replies deterministically. Whenever a shard
//! produces no usable plan for a slot — dead worker, lost request, late
//! reply — the coordinator schedules that shard's jobs *inline* with a
//! conservative static-peak pass (full-request first fit over the shard's
//! narrowed view), merged at the shard's own index so arbitration order is
//! unchanged. Dead workers are rebuilt from their
//! [`ProvisionerFactory`] when one was registered
//! ([`ShardedProvisioner::with_factories`]); without a factory the shard
//! degrades to permanent inline scheduling and a typed
//! [`ClusterError`] is recorded. No channel failure panics the
//! coordinator.
//!
//! Determinism: proposal generation is per-shard deterministic (each shard
//! owns its RNG/predictor state), arbitration order is a pure function
//! of (shard index, proposal index), and fault injection follows a
//! pre-computed plan — so identical seeds and configs yield byte-identical
//! reports at any shard count, while the store itself stays fully
//! thread-safe for genuinely racing users.

use corp_faults::ControlFaultPlan;
use corp_sim::control_plane::{ControlPlaneStats, ShardStats};
use corp_sim::{
    JobCompletion, JobId, PendingJobView, Placement, ProvisionPlan, Provisioner, ResourceVector,
    SlotContext, StaticPeakProvisioner, VmView,
};
use crossbeam::channel::RecvTimeoutError;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use crate::backend::TwoPhaseBackend;
use crate::error::ClusterError;
use crate::health::{ShardHealth, ShardSlotOutcome};
use crate::shard::{
    copy_vm_views_into, owner_of, shard_pending, shard_vm_views, shard_vm_views_into,
};
use crate::store::PlacementStore;
use corp_core::pipeline::PlacementBackend;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Rebuilds one shard's scheduler pipeline after its worker dies.
pub type ProvisionerFactory = Box<dyn Fn() -> Box<dyn Provisioner + Send> + Send>;

/// Coordinator knobs.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Alternative-VM attempts after a placement's first reservation
    /// conflicts; past the budget the proposal aborts to the pending queue.
    pub max_retries: usize,
    /// Real-time safety net on worker replies. Deterministic chaos uses
    /// explicit kill/delay events instead; this only trips for a genuinely
    /// wedged worker, so it is generous by default.
    pub recv_timeout: Duration,
    /// Scheduled control-plane chaos (worker kills, request drops, reply
    /// delays); `None` runs fault-free.
    pub fault_plan: Option<ControlFaultPlan>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            max_retries: 3,
            recv_timeout: Duration::from_secs(30),
            fault_plan: None,
        }
    }
}

/// Work posted to a shard's worker thread.
enum ShardRequest {
    /// Propose a plan for one slot over the shared fleet snapshot.
    Provision {
        slot: u64,
        vms: Arc<Vec<VmView>>,
        pending: Arc<Vec<PendingJobView>>,
        committed: Arc<Vec<ResourceVector>>,
        max_vm_capacity: ResourceVector,
    },
    /// Fold one slot's completed jobs (every completion owned by this
    /// shard, in completion order) into the shard's training corpus — one
    /// message per shard per slot rather than one per job.
    JobsCompleted { jobs: Vec<JobCompletion> },
    /// Brownout posture broadcast from the coordinator: the worker applies
    /// it to its inner pipeline before the next provision request.
    SetServiceLevel(u8),
    /// Chaos: exit immediately, as an unplanned worker crash would.
    Die,
}

/// A worker's answer for one slot. `plan: None` reports a caught panic —
/// the worker exits right after sending it and waits to be rebuilt.
struct ShardReply {
    slot: u64,
    plan: Option<ProvisionPlan>,
}

/// One long-lived scheduler shard: its pipeline runs on a dedicated thread,
/// driven by `requests`; slot-tagged replies come back on `replies`.
struct Worker {
    /// `None` once shutdown has begun (dropping the sender stops the loop)
    /// or while the worker is dead awaiting restart.
    requests: Option<crossbeam::channel::Sender<ShardRequest>>,
    replies: crossbeam::channel::Receiver<ShardReply>,
    handle: Option<std::thread::JoinHandle<()>>,
    stats: ShardStats,
    /// Whether the coordinator believes the worker thread is serving.
    alive: bool,
    /// Dead with no way back (no factory, or respawn failed): the
    /// coordinator schedules this shard inline permanently.
    failed: bool,
    /// Rebuilds the inner provisioner after a death, when registered.
    factory: Option<ProvisionerFactory>,
    /// External supervisor (circuit breaker) holds this shard isolated:
    /// schedule it inline without dispatching to the worker.
    forced_inline: bool,
    /// What happened on the most recent provisioning slot.
    last_outcome: ShardSlotOutcome,
    /// The inner pipeline's [`Provisioner::full_view_period`], captured
    /// before the pipeline moves onto its worker thread: the coordinator
    /// advertises the gcd of its shards' periods, so every shard still
    /// sees deep view histories exactly on its own window boundaries.
    view_period: u64,
}

/// Counters for the supervisor's recovery activity.
#[derive(Debug, Default, Clone)]
struct RecoveryCounters {
    worker_kills: u64,
    worker_panics: u64,
    worker_restarts: u64,
    inline_slots: u64,
    isolated_slots: u64,
    messages_dropped: u64,
    messages_delayed: u64,
    recv_timeouts: u64,
}

type WorkerChannels = (
    crossbeam::channel::Sender<ShardRequest>,
    crossbeam::channel::Receiver<ShardReply>,
    std::thread::JoinHandle<()>,
);

fn spawn_worker(
    shard: usize,
    num_shards: usize,
    inner: Box<dyn Provisioner + Send>,
) -> Result<WorkerChannels, ClusterError> {
    let (req_tx, req_rx) = crossbeam::channel::unbounded();
    let (reply_tx, reply_rx) = crossbeam::channel::unbounded();
    std::thread::Builder::new()
        .name(format!("corp-shard-{shard}"))
        .spawn(move || worker_loop(shard, num_shards, inner, req_rx, reply_tx))
        .map(|handle| (req_tx, reply_rx, handle))
        .map_err(|e| ClusterError::SpawnFailed {
            shard,
            reason: e.to_string(),
        })
}

fn worker_loop(
    shard: usize,
    num_shards: usize,
    mut inner: Box<dyn Provisioner + Send>,
    requests: crossbeam::channel::Receiver<ShardRequest>,
    replies: crossbeam::channel::Sender<ShardReply>,
) {
    // Narrowed-view buffers persist across slots: steady state reuses every
    // inner allocation (job vectors, history tails) instead of re-cloning
    // the fleet each slot.
    let mut my_vms: Vec<VmView> = Vec::new();
    while let Ok(request) = requests.recv() {
        match request {
            ShardRequest::Provision {
                slot,
                vms,
                pending,
                committed,
                max_vm_capacity,
            } => {
                // The pipeline may hold arbitrary state mid-panic, so a
                // caught panic is terminal for this worker: report it and
                // exit; the supervisor rebuilds from the factory.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    shard_vm_views_into(&vms, shard, num_shards, &mut my_vms);
                    let my_pending = shard_pending(&pending, shard, num_shards);
                    let ctx = SlotContext {
                        slot,
                        vms: &my_vms,
                        pending: &my_pending,
                        committed: &committed,
                        max_vm_capacity,
                    };
                    inner.provision(&ctx)
                }));
                match result {
                    Ok(plan) => {
                        if replies
                            .send(ShardReply {
                                slot,
                                plan: Some(plan),
                            })
                            .is_err()
                        {
                            break; // coordinator gone
                        }
                    }
                    Err(_) => {
                        let _ = replies.send(ShardReply { slot, plan: None });
                        break;
                    }
                }
            }
            ShardRequest::JobsCompleted { jobs } => {
                if catch_unwind(AssertUnwindSafe(|| {
                    inner.on_jobs_completed(&jobs);
                }))
                .is_err()
                {
                    break;
                }
            }
            ShardRequest::SetServiceLevel(level) => {
                if catch_unwind(AssertUnwindSafe(|| {
                    inner.set_service_level(level);
                }))
                .is_err()
                {
                    break;
                }
            }
            ShardRequest::Die => break,
        }
    }
}

/// N scheduler shards behind the engine's `Provisioner` interface (see
/// module docs).
pub struct ShardedProvisioner {
    name: String,
    workers: Vec<Worker>,
    config: ShardConfig,
    /// Built lazily from the first slot's fleet view.
    store: Option<PlacementStore>,
    max_queue_depth: usize,
    recovery: RecoveryCounters,
    errors: Vec<ClusterError>,
    /// Current brownout posture, re-applied to workers after a restart.
    service_level: u8,
    /// Slots where at least one placement fell back from the optimistic
    /// fast path to a full ordered 2PC round.
    fallback_rounds: u64,
    /// Recycled fleet-snapshot buffers: once the workers of a previous
    /// slot drop their `Arc` clones, the coordinator regains exclusive
    /// access and refreshes the buffer in place instead of re-cloning the
    /// fleet (the view copy was the dominant per-slot coordination cost).
    snap_vms: Vec<Arc<Vec<VmView>>>,
    snap_pending: Vec<Arc<Vec<PendingJobView>>>,
    snap_committed: Vec<Arc<Vec<ResourceVector>>>,
    /// Per-slot scratch for the store rebase (capacity/committed columns).
    rebase_scratch: (Vec<ResourceVector>, Vec<ResourceVector>),
}

/// Pulls a buffer with no outstanding readers from `pool`, or allocates a
/// fresh one. Callers push the handle back after sharing it; a buffer
/// still referenced by a slow worker simply stays in the pool until its
/// refcount drains.
fn checkout<T: Default>(pool: &mut Vec<Arc<T>>) -> Arc<T> {
    for i in 0..pool.len() {
        if Arc::get_mut(&mut pool[i]).is_some() {
            return pool.swap_remove(i);
        }
    }
    Arc::new(T::default())
}

/// Returns a shared snapshot to its pool, bounding the pool so a burst of
/// slow slots cannot grow it without limit.
fn check_in<T>(pool: &mut Vec<Arc<T>>, buf: Arc<T>) {
    pool.push(buf);
    if pool.len() > 4 {
        pool.swap_remove(0);
    }
}

impl ShardedProvisioner {
    /// Wraps `inners` (one per shard) under a display name of
    /// `"<base>x<shards>"`, spawning one worker thread per shard. Workers
    /// built this way cannot be rebuilt after a death (there is no
    /// factory); the shard degrades to inline scheduling instead. Prefer
    /// [`ShardedProvisioner::with_factories`] when running under fault
    /// injection.
    ///
    /// # Panics
    ///
    /// If `inners` is empty.
    pub fn new(
        base_name: &str,
        inners: Vec<Box<dyn Provisioner + Send>>,
        config: ShardConfig,
    ) -> Self {
        assert!(!inners.is_empty(), "need at least one shard");
        let num_shards = inners.len();
        let mut this = Self::empty(base_name, num_shards, config);
        for (shard, inner) in inners.into_iter().enumerate() {
            this.push_worker(shard, num_shards, inner, None);
        }
        this
    }

    /// Like [`ShardedProvisioner::new`], but each shard's pipeline comes
    /// from a factory the supervisor re-invokes to rebuild the worker
    /// after a crash. Factories must be deterministic (same pipeline every
    /// call) for fault-injected runs to replay byte-identically.
    ///
    /// # Panics
    ///
    /// If `factories` is empty.
    pub fn with_factories(
        base_name: &str,
        factories: Vec<ProvisionerFactory>,
        config: ShardConfig,
    ) -> Self {
        assert!(!factories.is_empty(), "need at least one shard");
        let num_shards = factories.len();
        let mut this = Self::empty(base_name, num_shards, config);
        for (shard, factory) in factories.into_iter().enumerate() {
            let inner = factory();
            this.push_worker(shard, num_shards, inner, Some(factory));
        }
        this
    }

    fn empty(base_name: &str, num_shards: usize, config: ShardConfig) -> Self {
        ShardedProvisioner {
            name: format!("{}x{}", base_name, num_shards),
            workers: Vec::new(),
            config,
            store: None,
            max_queue_depth: 0,
            recovery: RecoveryCounters::default(),
            errors: Vec::new(),
            service_level: 0,
            fallback_rounds: 0,
            snap_vms: Vec::new(),
            snap_pending: Vec::new(),
            snap_committed: Vec::new(),
            rebase_scratch: (Vec::new(), Vec::new()),
        }
    }

    fn push_worker(
        &mut self,
        shard: usize,
        num_shards: usize,
        inner: Box<dyn Provisioner + Send>,
        factory: Option<ProvisionerFactory>,
    ) {
        let stats = ShardStats {
            shard,
            ..Default::default()
        };
        let view_period = inner.full_view_period().max(1);
        match spawn_worker(shard, num_shards, inner) {
            Ok((requests, replies, handle)) => self.workers.push(Worker {
                requests: Some(requests),
                replies,
                handle: Some(handle),
                stats,
                alive: true,
                failed: false,
                factory,
                forced_inline: false,
                last_outcome: ShardSlotOutcome::Idle,
                view_period,
            }),
            Err(e) => {
                // Dead on arrival: keep the slot in the shard map (job
                // ownership is positional) and schedule it inline; a
                // factory still allows a later restart attempt.
                self.errors.push(e);
                let (_, orphan_replies) = crossbeam::channel::unbounded();
                let failed = factory.is_none();
                self.workers.push(Worker {
                    requests: None,
                    replies: orphan_replies,
                    handle: None,
                    stats,
                    alive: false,
                    failed,
                    factory,
                    forced_inline: false,
                    last_outcome: ShardSlotOutcome::Idle,
                    view_period,
                });
            }
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// The shared placement store (after the first slot).
    pub fn store(&self) -> Option<&PlacementStore> {
        self.store.as_ref()
    }

    /// Typed failures the supervisor recorded (spawn failures, timeouts,
    /// unrecoverable workers). Recovered incidents appear only as
    /// counters in [`Provisioner::control_plane_stats`].
    pub fn errors(&self) -> &[ClusterError] {
        &self.errors
    }

    /// Per-shard supervision snapshots after the most recent slot — the
    /// feed an external circuit-breaker layer keys its state machine on.
    pub fn shard_health(&self) -> Vec<ShardHealth> {
        self.workers
            .iter()
            .enumerate()
            .map(|(shard, w)| ShardHealth {
                shard,
                alive: w.alive,
                failed: w.failed,
                last_outcome: w.last_outcome,
            })
            .collect()
    }

    /// Isolates (or releases) one shard: while forced, the coordinator
    /// schedules the shard inline every slot *without* dispatching to its
    /// worker or waiting on its reply — the inline-fallback half of a
    /// circuit breaker's Open state. The worker thread stays up (and keeps
    /// receiving completion notifications) so a later probe finds it warm.
    ///
    /// Out-of-range shard indices are ignored.
    pub fn set_forced_inline(&mut self, shard: usize, forced: bool) {
        if let Some(worker) = self.workers.get_mut(shard) {
            worker.forced_inline = forced;
        }
    }

    /// Tears down a dead worker's thread and rebuilds it from its factory;
    /// without one the shard is marked permanently failed.
    fn restart_worker(&mut self, shard: usize) {
        if self.workers[shard].failed {
            return;
        }
        let num_shards = self.workers.len();
        self.workers[shard].requests.take();
        if let Some(handle) = self.workers[shard].handle.take() {
            let _ = handle.join();
        }
        let Some(inner) = self.workers[shard].factory.as_ref().map(|f| f()) else {
            self.workers[shard].failed = true;
            self.errors
                .push(ClusterError::WorkerUnrecoverable { shard });
            return;
        };
        let view_period = inner.full_view_period().max(1);
        match spawn_worker(shard, num_shards, inner) {
            Ok((requests, replies, handle)) => {
                let worker = &mut self.workers[shard];
                worker.view_period = view_period;
                worker.requests = Some(requests);
                worker.replies = replies;
                worker.handle = Some(handle);
                worker.alive = true;
                worker.stats.restarts += 1;
                self.recovery.worker_restarts += 1;
                // A factory rebuild starts at full service; re-apply the
                // coordinator's current brownout posture.
                if self.service_level != 0 {
                    if let Some(tx) = self.workers[shard].requests.as_ref() {
                        let _ = tx.send(ShardRequest::SetServiceLevel(self.service_level));
                    }
                }
            }
            Err(e) => {
                self.workers[shard].failed = true;
                self.errors.push(e);
            }
        }
    }

    /// Conservative coordinator-side plan for a shard that produced none:
    /// static-peak first fit over the shard's own narrowed view. Full-peak
    /// allocations can never violate an SLO on their own, and the store
    /// still arbitrates them against every other shard's proposals.
    fn inline_plan(ctx: &SlotContext<'_>, shard: usize, num_shards: usize) -> ProvisionPlan {
        let my_vms = shard_vm_views(ctx.vms, shard, num_shards);
        let my_pending = shard_pending(ctx.pending, shard, num_shards);
        let narrowed = SlotContext {
            slot: ctx.slot,
            vms: &my_vms,
            pending: &my_pending,
            committed: ctx.committed,
            max_vm_capacity: ctx.max_vm_capacity,
        };
        let mut fallback = StaticPeakProvisioner;
        fallback.provision(&narrowed)
    }

    /// Phase A: every shard proposes in parallel over the shared snapshot.
    /// Scheduled chaos is applied here; any shard without a usable plan is
    /// scheduled inline, and dead workers are restarted before returning.
    fn propose(&mut self, ctx: &SlotContext<'_>) -> Vec<ProvisionPlan> {
        let n = self.workers.len();
        self.max_queue_depth = self.max_queue_depth.max(ctx.pending.len());
        let mut depths = vec![0usize; n];
        for job in ctx.pending {
            depths[owner_of(job.id, n)] += 1;
        }
        for (worker, depth) in self.workers.iter_mut().zip(depths) {
            worker.stats.max_queue_depth = worker.stats.max_queue_depth.max(depth);
        }

        // Scheduled chaos for this slot.
        let mut kill = vec![false; n];
        let mut drop_request = vec![false; n];
        let mut delay = vec![false; n];
        if let Some(plan) = &self.config.fault_plan {
            for shard in 0..n {
                kill[shard] = plan.kill_scheduled(ctx.slot, shard);
                drop_request[shard] = plan.drop_scheduled(ctx.slot, shard);
                delay[shard] = plan.delay_scheduled(ctx.slot, shard);
            }
        }
        for (shard, &killed) in kill.iter().enumerate() {
            if killed && self.workers[shard].alive {
                if let Some(tx) = self.workers[shard].requests.as_ref() {
                    let _ = tx.send(ShardRequest::Die);
                }
                self.workers[shard].alive = false;
                self.recovery.worker_kills += 1;
            }
        }

        // Dispatch the snapshot to every serving shard, recycling a
        // previous slot's buffers when their workers have let go: refresh
        // in place instead of re-cloning the fleet.
        let mut vms = checkout(&mut self.snap_vms);
        copy_vm_views_into(
            ctx.vms,
            Arc::get_mut(&mut vms).expect("checked-out snapshot buffer is exclusive"),
        );
        let mut pending = checkout(&mut self.snap_pending);
        {
            let buf = Arc::get_mut(&mut pending).expect("checked-out snapshot buffer is exclusive");
            buf.clear();
            buf.extend_from_slice(ctx.pending);
        }
        let mut committed = checkout(&mut self.snap_committed);
        {
            let buf =
                Arc::get_mut(&mut committed).expect("checked-out snapshot buffer is exclusive");
            buf.clear();
            buf.extend_from_slice(ctx.committed);
        }
        let mut sent = vec![false; n];
        for shard in 0..n {
            // Breaker-isolated shards get no dispatch at all: the whole
            // point of Open is not paying the worker round-trip (or its
            // timeout) while the shard is sick.
            if self.workers[shard].forced_inline {
                continue;
            }
            if !self.workers[shard].alive {
                continue;
            }
            if drop_request[shard] {
                self.recovery.messages_dropped += 1;
                continue;
            }
            let request = ShardRequest::Provision {
                slot: ctx.slot,
                vms: Arc::clone(&vms),
                pending: Arc::clone(&pending),
                committed: Arc::clone(&committed),
                max_vm_capacity: ctx.max_vm_capacity,
            };
            let delivered = self.workers[shard]
                .requests
                .as_ref()
                .map(|tx| tx.send(request).is_ok())
                .unwrap_or(false);
            if delivered {
                sent[shard] = true;
            } else {
                // The worker died between slots (e.g. panicked in a
                // completion callback): recover below.
                self.workers[shard].alive = false;
            }
        }

        // Collect in shard order: deterministic merge, full overlap while
        // the slower shards finish. Replies are slot-tagged so a reply
        // delayed past its slot is discarded when it finally surfaces.
        let mut plans: Vec<Option<ProvisionPlan>> = (0..n).map(|_| None).collect();
        for shard in 0..n {
            if !sent[shard] {
                continue;
            }
            if delay[shard] {
                self.recovery.messages_delayed += 1;
                continue;
            }
            loop {
                let outcome = self.workers[shard]
                    .replies
                    .recv_timeout(self.config.recv_timeout);
                match outcome {
                    Ok(reply) if reply.slot == ctx.slot => {
                        match reply.plan {
                            Some(plan) => plans[shard] = Some(plan),
                            None => {
                                // The worker caught a panic and exited.
                                self.workers[shard].alive = false;
                                self.recovery.worker_panics += 1;
                            }
                        }
                        break;
                    }
                    Ok(_stale_reply) => continue,
                    Err(RecvTimeoutError::Timeout) => {
                        self.workers[shard].alive = false;
                        self.recovery.recv_timeouts += 1;
                        self.errors.push(ClusterError::ReplyTimeout {
                            shard,
                            slot: ctx.slot,
                        });
                        break;
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        self.workers[shard].alive = false;
                        break;
                    }
                }
            }
        }

        // Recovery: restart what died, schedule inline what is missing,
        // and record each shard's slot outcome for shard_health().
        for (shard, plan) in plans.iter_mut().enumerate() {
            if !self.workers[shard].alive {
                self.restart_worker(shard);
            }
            if plan.is_some() {
                self.workers[shard].last_outcome = ShardSlotOutcome::Served;
            } else {
                if self.workers[shard].forced_inline {
                    self.workers[shard].stats.isolated_slots += 1;
                    self.recovery.isolated_slots += 1;
                    self.workers[shard].last_outcome = ShardSlotOutcome::Isolated;
                } else {
                    self.workers[shard].stats.inline_slots += 1;
                    self.recovery.inline_slots += 1;
                    self.workers[shard].last_outcome = ShardSlotOutcome::FellBack;
                }
                *plan = Some(Self::inline_plan(ctx, shard, n));
            }
        }

        // Return the snapshot handles to their pools. A worker that is
        // still holding a clone (delayed reply) just parks the buffer until
        // its refcount drains; checkout skips shared buffers.
        check_in(&mut self.snap_vms, vms);
        check_in(&mut self.snap_pending, pending);
        check_in(&mut self.snap_committed, committed);

        plans.into_iter().map(Option::unwrap_or_default).collect()
    }

    /// Phase B: deterministic sequential arbitration of all proposals
    /// through the store.
    fn arbitrate(&mut self, ctx: &SlotContext<'_>, plans: Vec<ProvisionPlan>) -> ProvisionPlan {
        let Some(store) = self.store.as_ref() else {
            // Unreachable (provision initializes the store) but no panic:
            // an empty plan is always safe.
            return ProvisionPlan::default();
        };
        let mut merged = ProvisionPlan::default();

        // Adjustments: shrinks release capacity before grows claim it —
        // the same stable ordering the engine applies, so the store's
        // committed sequence previews the engine's exactly. The per-job
        // allocation map is only built when some plan actually proposes an
        // adjustment; pure-placement slots (the common case for
        // non-reallocating schemes) skip the fleet walk entirely.
        let all_adjustments: Vec<(usize, JobId, ResourceVector)> = plans
            .iter()
            .enumerate()
            .flat_map(|(s, plan)| {
                plan.adjustments
                    .iter()
                    .map(move |(job, alloc)| (s, *job, *alloc))
            })
            .collect();
        if !all_adjustments.is_empty() {
            // Current allocations of running jobs, for adjustment rebasing.
            let current: HashMap<JobId, (usize, ResourceVector)> = ctx
                .vms
                .iter()
                .flat_map(|vm| vm.jobs.iter().map(|j| (j.id, (vm.id, j.allocation))))
                .collect();
            let is_shrink = |job: &JobId, new: &ResourceVector| {
                current
                    .get(job)
                    .map(|(_, old)| new.fits_within(old))
                    .unwrap_or(false)
            };
            let (shrinks, grows): (Vec<_>, Vec<_>) = all_adjustments
                .into_iter()
                .partition(|(_, job, new)| is_shrink(job, new));
            for (shard, job, new) in shrinks.into_iter().chain(grows) {
                let Some(&(vm, old)) = current.get(&job) else {
                    self.workers[shard].stats.conflicts += 1;
                    continue;
                };
                if !new.is_finite() {
                    // A poisoned pipeline may propose NaN; the engine would
                    // drop it anyway, but refusing here keeps the store's
                    // committed preview authoritative.
                    self.workers[shard].stats.conflicts += 1;
                    continue;
                }
                if store.adjust(vm, old, new) {
                    merged.adjustments.push((job, new));
                } else {
                    self.workers[shard].stats.conflicts += 1;
                }
            }
        }

        // Placements: round-robin by (proposal index, shard). Each claim
        // first attempts the store's optimistic fast path on its proposed
        // VM — one stripe acquisition fusing both 2PC phases when no other
        // shard has written that VM this slot. Any miss falls back, at the
        // same canonical position, to a full 2PC claim through the same
        // `PlacementBackend` stage contract the monolithic pipelines place
        // through, with phase 2 deferred into one batched confirm round
        // per slot. The fast path changes per-claim cost, never outcomes:
        // a fast commit admits exactly what reserve+confirm would have.
        let pending_ids: HashSet<JobId> = ctx.pending.iter().map(|j| j.id).collect();
        let mut placed: HashSet<JobId> = HashSet::new();
        let mut backend = TwoPhaseBackend::new(store, self.config.max_retries);
        backend.defer_confirms();
        // The trait threads an RNG for randomized selectors; 2PC claims
        // are deterministic and never draw from it.
        let mut rng = StdRng::seed_from_u64(0);
        let mut fell_back = false;
        let deepest = plans.iter().map(|p| p.placements.len()).max().unwrap_or(0);
        for index in 0..deepest {
            for (shard, plan) in plans.iter().enumerate() {
                let Some(p) = plan.placements.get(index) else {
                    continue;
                };
                let stats = &mut self.workers[shard].stats;
                stats.proposals += 1;
                if !pending_ids.contains(&p.job) || placed.contains(&p.job) {
                    continue; // not placeable: duplicate or unknown job
                }
                if !p.allocation.is_finite() {
                    stats.aborts += 1;
                    continue;
                }
                let alloc = p.allocation.clamp_nonnegative();
                let committed_vm = match store.try_fast_commit(shard, p.vm, alloc) {
                    Ok(()) => Some(p.vm),
                    Err(_) => {
                        // Foreign writer, capacity conflict, or unknown
                        // VM: full ordered 2PC with bounded best-fit
                        // retry, exactly the claim the fast path fused.
                        fell_back = true;
                        backend.set_origin(shard);
                        let claim =
                            backend.choose(&[], &alloc, Some(p.vm), &ctx.max_vm_capacity, &mut rng);
                        stats.conflicts += claim.conflicts;
                        stats.retries += claim.retries;
                        claim.vm
                    }
                };
                match committed_vm {
                    Some(vm) => {
                        stats.commits += 1;
                        placed.insert(p.job);
                        merged.placements.push(Placement {
                            job: p.job,
                            vm,
                            allocation: alloc,
                        });
                    }
                    None => stats.aborts += 1,
                }
            }
        }
        backend.flush_confirms();
        if fell_back {
            self.fallback_rounds += 1;
        }

        for plan in plans {
            merged.predictions.extend(plan.predictions);
        }
        merged
    }
}

impl Provisioner for ShardedProvisioner {
    fn name(&self) -> &str {
        &self.name
    }

    fn provision(&mut self, ctx: &SlotContext<'_>) -> ProvisionPlan {
        let (capacities, committed) = &mut self.rebase_scratch;
        capacities.clear();
        capacities.extend(ctx.vms.iter().map(|vm| vm.capacity));
        committed.clear();
        committed.extend(ctx.vms.iter().map(|vm| vm.committed));
        let store = self
            .store
            .get_or_insert_with(|| PlacementStore::new(capacities.clone()));
        // Re-basing capacities every slot tracks crashed VMs (whose view
        // capacity is zero) leaving and rejoining the fleet.
        store.begin_slot_full(capacities, committed);
        let plans = self.propose(ctx);
        self.arbitrate(ctx, plans)
    }

    fn full_view_period(&self) -> u64 {
        // The gcd of the shards' periods: every shard still receives deep
        // view histories on (at least) its own window boundaries, while
        // off-period slots skip the engine's deep history copies — the
        // dominant snapshot cost for window-driven pipelines.
        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        self.workers
            .iter()
            .map(|w| w.view_period)
            .fold(0, gcd)
            .max(1)
    }

    fn on_job_completed(&mut self, job: JobId, unused_history: &[Vec<f64>]) {
        let single = [JobCompletion {
            job,
            handle: corp_sim::JobHandle::DETACHED,
            unused_history: unused_history.to_vec(),
        }];
        self.on_jobs_completed(&single);
    }

    fn on_jobs_completed(&mut self, completed: &[JobCompletion]) {
        // Group the slot's completions by owning shard, preserving
        // completion order within each group, and forward one batch
        // message per shard — the engine hands the whole slot at once, so
        // channel traffic is O(shards) per slot instead of O(jobs).
        let n = self.workers.len();
        let mut batches: Vec<Vec<JobCompletion>> = vec![Vec::new(); n];
        for c in completed {
            batches[owner_of(c.job, n)].push(c.clone());
        }
        for (owner, jobs) in batches.into_iter().enumerate() {
            if jobs.is_empty() {
                continue;
            }
            // FIFO per worker: the notification lands before the next
            // Provision request, exactly as the engine orders the calls.
            let delivered = self.workers[owner]
                .requests
                .as_ref()
                .map(|tx| tx.send(ShardRequest::JobsCompleted { jobs }).is_ok())
                .unwrap_or(false);
            if !delivered {
                // The worker is dead: this shard's corpus misses one
                // slot's samples (restart happens on the next provision
                // call). Dropped messages are counted per batch — one
                // message is what was actually lost on the wire.
                self.workers[owner].alive = false;
                self.recovery.messages_dropped += 1;
            }
        }
    }

    fn set_service_level(&mut self, level: u8) {
        if self.service_level == level {
            return;
        }
        self.service_level = level;
        // FIFO per worker: the posture change lands before the next
        // Provision request, so every shard sees it at the same slot.
        for worker in &mut self.workers {
            let delivered = worker
                .requests
                .as_ref()
                .map(|tx| tx.send(ShardRequest::SetServiceLevel(level)).is_ok())
                .unwrap_or(false);
            if !delivered {
                // Dead worker: the restart path re-applies the current
                // level once the factory rebuilds it.
                worker.alive = false;
            }
        }
    }

    fn control_plane_stats(&self) -> Option<ControlPlaneStats> {
        let counters = self
            .store
            .as_ref()
            .map(|s| s.counters())
            .unwrap_or_default();
        Some(ControlPlaneStats {
            shards: self.workers.len(),
            reservations: counters.reservations,
            commits: counters.commits,
            conflicts: counters.conflicts,
            aborts: counters.aborts,
            retries: self.workers.iter().map(|s| s.stats.retries).sum(),
            fast_path_hits: counters.fast_commits,
            fallback_rounds: self.fallback_rounds,
            stripe_conflicts: counters.epoch_conflicts,
            max_queue_depth: self.max_queue_depth,
            worker_kills: self.recovery.worker_kills,
            worker_panics: self.recovery.worker_panics,
            worker_restarts: self.recovery.worker_restarts,
            inline_slots: self.recovery.inline_slots,
            messages_dropped: self.recovery.messages_dropped,
            messages_delayed: self.recovery.messages_delayed,
            recv_timeouts: self.recovery.recv_timeouts,
            isolated_slots: self.recovery.isolated_slots,
            breaker_opens: 0,
            breaker_half_opens: 0,
            breaker_closes: 0,
            breaker_transitions: Vec::new(),
            per_shard: self.workers.iter().map(|s| s.stats.clone()).collect(),
        })
    }
}

impl Drop for ShardedProvisioner {
    fn drop(&mut self) {
        // Closing every request channel stops the worker loops; then join.
        for worker in &mut self.workers {
            worker.requests.take();
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corp_faults::SlotShard;
    use corp_sim::{PendingJobView, StaticPeakProvisioner, VmView};

    fn rv(v: f64) -> ResourceVector {
        ResourceVector::splat(v)
    }

    fn fleet(free: &[f64]) -> Vec<VmView> {
        free.iter()
            .enumerate()
            .map(|(id, &f)| VmView {
                id,
                capacity: rv(4.0),
                committed: rv(4.0) - rv(f),
                free: rv(f),
                jobs: Vec::new(),
                unused_history: Vec::new(),
            })
            .collect()
    }

    fn committed_of(vms: &[VmView]) -> Vec<ResourceVector> {
        vms.iter().map(|v| v.committed).collect()
    }

    fn job(id: JobId, req: f64) -> PendingJobView {
        PendingJobView {
            id,
            requested: rv(req),
            arrival_slot: 0,
            slo_slots: 10,
            handle: corp_sim::JobHandle::DETACHED,
        }
    }

    fn sharded(n: usize) -> ShardedProvisioner {
        let inners: Vec<Box<dyn Provisioner + Send>> = (0..n)
            .map(|_| Box::new(StaticPeakProvisioner) as _)
            .collect();
        ShardedProvisioner::new("static-peak", inners, ShardConfig::default())
    }

    fn sharded_with_plan(n: usize, fault_plan: ControlFaultPlan) -> ShardedProvisioner {
        let factories: Vec<ProvisionerFactory> = (0..n)
            .map(|_| {
                Box::new(|| Box::new(StaticPeakProvisioner) as Box<dyn Provisioner + Send>) as _
            })
            .collect();
        ShardedProvisioner::with_factories(
            "static-peak",
            factories,
            ShardConfig {
                fault_plan: Some(fault_plan),
                ..ShardConfig::default()
            },
        )
    }

    #[test]
    fn racing_shards_never_overcommit_a_vm() {
        // One VM with room for exactly two unit jobs; four shards each
        // propose their own job for it (static-peak first-fit all pick VM
        // 0). The store must admit exactly two and abort the rest.
        let vms = fleet(&[2.0]);
        let committed = committed_of(&vms);
        let pending: Vec<PendingJobView> = (0..4).map(|i| job(i, 1.0)).collect();
        let ctx = SlotContext {
            slot: 0,
            vms: &vms,
            pending: &pending,
            committed: &committed,
            max_vm_capacity: rv(4.0),
        };
        let mut p = sharded(4);
        let plan = p.provision(&ctx);
        assert_eq!(plan.placements.len(), 2, "{plan:?}");
        let stats = p.control_plane_stats().unwrap();
        assert_eq!(stats.commits, 2);
        assert!(stats.conflicts >= 2, "{stats:?}");
        assert!(p.store().unwrap().holds_invariants(1e-9));
    }

    #[test]
    fn conflicting_placements_retry_onto_best_fit_vm() {
        // VM 0 fits one unit job; VM 1 is wide open. Both shards propose
        // VM 0 (first fit); the loser must land on VM 1 via retry, and the
        // tighter VM is preferred when several fit.
        let vms = fleet(&[1.0, 4.0]);
        let committed = committed_of(&vms);
        let pending = vec![job(0, 1.0), job(1, 1.0)];
        let ctx = SlotContext {
            slot: 0,
            vms: &vms,
            pending: &pending,
            committed: &committed,
            max_vm_capacity: rv(4.0),
        };
        let mut p = sharded(2);
        let plan = p.provision(&ctx);
        assert_eq!(plan.placements.len(), 2, "{plan:?}");
        let vms_used: Vec<usize> = plan.placements.iter().map(|pl| pl.vm).collect();
        assert_eq!(vms_used, vec![0, 1], "loser retried onto VM 1: {plan:?}");
        let stats = p.control_plane_stats().unwrap();
        assert_eq!(stats.retries, 1, "{stats:?}");
        assert_eq!(stats.commits, 2);
    }

    #[test]
    fn retry_budget_bounds_attempts_and_aborts_to_pending() {
        // One VM with room for one job, two shards each proposing theirs.
        // The loser's reservation conflicts and best-fit finds no
        // alternative, so it aborts immediately instead of burning the
        // whole retry budget on hopeless VMs; its job stays pending.
        let vms = fleet(&[1.0]);
        let committed = committed_of(&vms);
        let pending = vec![job(0, 1.0), job(1, 1.0)];
        let ctx = SlotContext {
            slot: 0,
            vms: &vms,
            pending: &pending,
            committed: &committed,
            max_vm_capacity: rv(4.0),
        };
        let mut p = sharded(2);
        let plan = p.provision(&ctx);
        assert_eq!(plan.placements.len(), 1);
        let stats = p.control_plane_stats().unwrap();
        let aborted: u64 = stats.per_shard.iter().map(|s| s.aborts).sum();
        assert_eq!(aborted, 1, "{stats:?}");
        assert_eq!(stats.retries, 0, "no fitting alternative, no retry");
        assert_eq!(stats.commits, 1);
    }

    #[test]
    fn single_shard_passes_plans_through_unchanged() {
        let vms = fleet(&[4.0, 4.0]);
        let committed = committed_of(&vms);
        let pending = vec![job(0, 1.0), job(1, 2.0)];
        let ctx = SlotContext {
            slot: 0,
            vms: &vms,
            pending: &pending,
            committed: &committed,
            max_vm_capacity: rv(4.0),
        };
        let mut baseline = StaticPeakProvisioner;
        let expected = baseline.provision(&ctx);
        let mut p = sharded(1);
        let got = p.provision(&ctx);
        assert_eq!(got.placements, expected.placements);
        assert_eq!(p.name(), "static-peakx1");
    }

    #[test]
    fn queue_depths_track_the_deepest_slot() {
        let vms = fleet(&[4.0]);
        let committed = committed_of(&vms);
        let pending: Vec<PendingJobView> = (0..3).map(|i| job(i, 0.5)).collect();
        let ctx = SlotContext {
            slot: 0,
            vms: &vms,
            pending: &pending,
            committed: &committed,
            max_vm_capacity: rv(4.0),
        };
        let mut p = sharded(2);
        let _ = p.provision(&ctx);
        let empty: Vec<PendingJobView> = Vec::new();
        let ctx2 = SlotContext {
            slot: 1,
            vms: &vms,
            pending: &empty,
            committed: &committed,
            max_vm_capacity: rv(4.0),
        };
        let _ = p.provision(&ctx2);
        let stats = p.control_plane_stats().unwrap();
        assert_eq!(stats.max_queue_depth, 3);
        // Jobs 0 and 2 belong to shard 0; job 1 to shard 1.
        assert_eq!(stats.per_shard[0].max_queue_depth, 2);
        assert_eq!(stats.per_shard[1].max_queue_depth, 1);
    }

    #[test]
    fn killed_worker_is_restarted_and_its_slot_scheduled_inline() {
        let plan = ControlFaultPlan::new(vec![SlotShard { slot: 0, shard: 1 }], vec![], vec![]);
        let mut p = sharded_with_plan(2, plan);
        let vms = fleet(&[4.0, 4.0]);
        let committed = committed_of(&vms);
        let pending = vec![job(0, 1.0), job(1, 1.0)];
        let ctx = SlotContext {
            slot: 0,
            vms: &vms,
            pending: &pending,
            committed: &committed,
            max_vm_capacity: rv(4.0),
        };
        let got = p.provision(&ctx);
        // Both jobs place: shard 0 via its worker, shard 1 inline.
        assert_eq!(got.placements.len(), 2, "{got:?}");
        let stats = p.control_plane_stats().unwrap();
        assert_eq!(stats.worker_kills, 1, "{stats:?}");
        assert_eq!(stats.worker_restarts, 1, "{stats:?}");
        assert_eq!(stats.inline_slots, 1, "{stats:?}");
        assert_eq!(stats.per_shard[1].restarts, 1);
        assert_eq!(stats.per_shard[1].inline_slots, 1);
        // The restarted worker serves the next slot normally.
        let ctx2 = SlotContext {
            slot: 1,
            vms: &vms,
            pending: &pending,
            committed: &committed,
            max_vm_capacity: rv(4.0),
        };
        let again = p.provision(&ctx2);
        assert_eq!(again.placements.len(), 2, "{again:?}");
        assert_eq!(p.control_plane_stats().unwrap().inline_slots, 1);
        assert!(p.errors().is_empty(), "recovered without typed errors");
    }

    #[test]
    fn panicking_worker_is_caught_restarted_and_replaced_inline() {
        /// Panics the first time it is asked to provision; fine after a
        /// factory rebuild (the panic trigger is per-instance state).
        struct PanicOnce {
            armed: bool,
        }
        impl Provisioner for PanicOnce {
            fn name(&self) -> &str {
                "panic-once"
            }
            fn provision(&mut self, ctx: &SlotContext<'_>) -> ProvisionPlan {
                if self.armed && ctx.slot == 0 {
                    panic!("injected pipeline panic");
                }
                let mut inner = StaticPeakProvisioner;
                inner.provision(ctx)
            }
        }
        // Only the factory's first product is armed: the rebuilt instance
        // behaves, proving recovery rather than a crash loop.
        let factories: Vec<ProvisionerFactory> = {
            use std::sync::atomic::{AtomicUsize, Ordering};
            let calls = std::sync::Arc::new(AtomicUsize::new(0));
            vec![
                Box::new(|| Box::new(StaticPeakProvisioner) as _),
                Box::new(move || {
                    let n = calls.fetch_add(1, Ordering::SeqCst);
                    Box::new(PanicOnce { armed: n == 0 }) as _
                }),
            ]
        };
        let mut p =
            ShardedProvisioner::with_factories("static-peak", factories, ShardConfig::default());
        let vms = fleet(&[4.0, 4.0]);
        let committed = committed_of(&vms);
        let pending = vec![job(0, 1.0), job(1, 1.0)];
        let ctx = SlotContext {
            slot: 0,
            vms: &vms,
            pending: &pending,
            committed: &committed,
            max_vm_capacity: rv(4.0),
        };
        let got = p.provision(&ctx);
        assert_eq!(got.placements.len(), 2, "inline covers the panic: {got:?}");
        let stats = p.control_plane_stats().unwrap();
        assert_eq!(stats.worker_panics, 1, "{stats:?}");
        assert_eq!(stats.worker_restarts, 1, "{stats:?}");
        // Next slot, the rebuilt worker answers for itself.
        let ctx2 = SlotContext {
            slot: 1,
            vms: &vms,
            pending: &pending,
            committed: &committed,
            max_vm_capacity: rv(4.0),
        };
        let again = p.provision(&ctx2);
        assert_eq!(again.placements.len(), 2, "{again:?}");
        assert_eq!(p.control_plane_stats().unwrap().inline_slots, 1);
    }

    #[test]
    fn dropped_requests_and_delayed_replies_fall_back_inline() {
        let plan = ControlFaultPlan::new(
            vec![],
            vec![SlotShard { slot: 0, shard: 0 }],
            vec![SlotShard { slot: 1, shard: 1 }],
        );
        let mut p = sharded_with_plan(2, plan);
        let vms = fleet(&[4.0, 4.0]);
        let committed = committed_of(&vms);
        let pending = vec![job(0, 1.0), job(1, 1.0)];
        for slot in 0..3u64 {
            let ctx = SlotContext {
                slot,
                vms: &vms,
                pending: &pending,
                committed: &committed,
                max_vm_capacity: rv(4.0),
            };
            let got = p.provision(&ctx);
            assert_eq!(got.placements.len(), 2, "slot {slot}: {got:?}");
        }
        let stats = p.control_plane_stats().unwrap();
        assert_eq!(stats.messages_dropped, 1, "{stats:?}");
        assert_eq!(stats.messages_delayed, 1, "{stats:?}");
        assert_eq!(stats.inline_slots, 2, "{stats:?}");
        // Neither fault killed the worker: no restarts, and the stale
        // delayed reply was discarded by its slot tag, not misapplied.
        assert_eq!(stats.worker_restarts, 0, "{stats:?}");
        assert!(p.errors().is_empty());
    }

    #[test]
    fn factoryless_worker_death_degrades_to_permanent_inline() {
        let plan = ControlFaultPlan::new(vec![SlotShard { slot: 0, shard: 0 }], vec![], vec![]);
        let inners: Vec<Box<dyn Provisioner + Send>> = (0..2)
            .map(|_| Box::new(StaticPeakProvisioner) as _)
            .collect();
        let mut p = ShardedProvisioner::new(
            "static-peak",
            inners,
            ShardConfig {
                fault_plan: Some(plan),
                ..ShardConfig::default()
            },
        );
        let vms = fleet(&[4.0, 4.0]);
        let committed = committed_of(&vms);
        let pending = vec![job(0, 1.0), job(1, 1.0)];
        for slot in 0..3u64 {
            let ctx = SlotContext {
                slot,
                vms: &vms,
                pending: &pending,
                committed: &committed,
                max_vm_capacity: rv(4.0),
            };
            let got = p.provision(&ctx);
            assert_eq!(got.placements.len(), 2, "slot {slot}: {got:?}");
        }
        let stats = p.control_plane_stats().unwrap();
        assert_eq!(stats.worker_kills, 1);
        assert_eq!(stats.worker_restarts, 0, "no factory, no rebirth");
        assert_eq!(stats.inline_slots, 3, "shard 0 inline every slot");
        assert_eq!(
            p.errors(),
            &[ClusterError::WorkerUnrecoverable { shard: 0 }],
            "typed error recorded exactly once"
        );
    }

    #[test]
    fn forced_inline_isolates_a_shard_without_failure_accounting() {
        let mut p = sharded(2);
        let vms = fleet(&[4.0, 4.0]);
        let committed = committed_of(&vms);
        let pending = vec![job(0, 1.0), job(1, 1.0)];
        p.set_forced_inline(1, true);
        for slot in 0..2u64 {
            let ctx = SlotContext {
                slot,
                vms: &vms,
                pending: &pending,
                committed: &committed,
                max_vm_capacity: rv(4.0),
            };
            let got = p.provision(&ctx);
            assert_eq!(got.placements.len(), 2, "isolated shard places inline");
        }
        let health = p.shard_health();
        assert_eq!(health[0].last_outcome, ShardSlotOutcome::Served);
        assert_eq!(health[1].last_outcome, ShardSlotOutcome::Isolated);
        assert!(health[1].alive, "isolation never kills the worker");
        let stats = p.control_plane_stats().unwrap();
        assert_eq!(stats.isolated_slots, 2);
        assert_eq!(stats.per_shard[1].isolated_slots, 2);
        assert_eq!(stats.inline_slots, 0, "isolation is not a failure");
        // Release: the worker serves again immediately.
        p.set_forced_inline(1, false);
        let ctx = SlotContext {
            slot: 2,
            vms: &vms,
            pending: &pending,
            committed: &committed,
            max_vm_capacity: rv(4.0),
        };
        let _ = p.provision(&ctx);
        assert_eq!(
            p.shard_health()[1].last_outcome,
            ShardSlotOutcome::Served,
            "released shard serves from its (still warm) worker"
        );
    }

    #[test]
    fn nonfinite_proposals_are_refused_in_arbitration() {
        /// Proposes a NaN allocation for every pending job.
        struct NanPlacer;
        impl Provisioner for NanPlacer {
            fn name(&self) -> &str {
                "nan-placer"
            }
            fn provision(&mut self, ctx: &SlotContext<'_>) -> ProvisionPlan {
                let mut plan = ProvisionPlan::default();
                for j in ctx.pending {
                    plan.placements.push(Placement {
                        job: j.id,
                        vm: 0,
                        allocation: ResourceVector::splat(f64::NAN),
                    });
                }
                plan
            }
        }
        let mut p = ShardedProvisioner::new(
            "nan",
            vec![Box::new(NanPlacer) as _],
            ShardConfig::default(),
        );
        let vms = fleet(&[4.0]);
        let committed = committed_of(&vms);
        let pending = vec![job(0, 1.0)];
        let ctx = SlotContext {
            slot: 0,
            vms: &vms,
            pending: &pending,
            committed: &committed,
            max_vm_capacity: rv(4.0),
        };
        let got = p.provision(&ctx);
        assert!(got.placements.is_empty(), "{got:?}");
        let stats = p.control_plane_stats().unwrap();
        assert_eq!(stats.per_shard[0].aborts, 1, "{stats:?}");
        assert!(p.store().unwrap().holds_invariants(1e-9));
    }
}
