//! The sharded control-plane coordinator, adapting N scheduler shards to
//! the engine's single-`Provisioner` interface.
//!
//! Each shard is a long-lived worker thread owning one full scheduler
//! pipeline, fed over crossbeam channels (spawning threads per slot would
//! put coordination overhead on the critical path of every decision).
//! Each slot then runs in two phases:
//!
//! 1. **Propose (parallel).** The coordinator snapshots the fleet once
//!    (shared read-only via `Arc`) and posts it to every shard; each
//!    worker builds its own narrowed view — only the jobs it owns, see
//!    [`crate::shard`] — runs its pipeline, and ships its
//!    [`ProvisionPlan`] back on its reply channel.
//! 2. **Arbitrate (sequential, deterministic).** The coordinator replays
//!    the proposals against the [`PlacementStore`] in a fixed order —
//!    allocation adjustments first (shrinks before grows, as the engine
//!    applies them), then placements round-robin by (proposal index,
//!    shard). Each placement opens a reservation (2PC phase 1); on
//!    conflict it retries against the next-best-fit VM up to the retry
//!    budget, after which the proposal aborts and the job stays pending —
//!    the queue itself is the bounded backoff, since the owning shard
//!    re-proposes next slot. Admitted reservations are confirmed in
//!    arbitration order, so the committed-capacity sequence the store
//!    validated is exactly the sequence the engine will apply: a
//!    store-approved plan can never trip the engine's validators.
//!
//! Determinism: proposal generation is per-shard deterministic (each shard
//! owns its RNG/predictor state), and arbitration order is a pure function
//! of (shard index, proposal index) — so identical seeds and configs yield
//! byte-identical reports at any shard count, while the store itself stays
//! fully thread-safe for genuinely racing users.

use corp_sim::control_plane::{ControlPlaneStats, ShardStats};
use corp_sim::{
    JobId, PendingJobView, Placement, ProvisionPlan, Provisioner, ResourceVector, SlotContext,
    VmView,
};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::shard::{owner_of, shard_pending, shard_vm_views};
use crate::store::{PlacementStore, ReserveError};

/// Coordinator knobs.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Alternative-VM attempts after a placement's first reservation
    /// conflicts; past the budget the proposal aborts to the pending queue.
    pub max_retries: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { max_retries: 3 }
    }
}

/// Work posted to a shard's worker thread.
enum ShardRequest {
    /// Propose a plan for one slot over the shared fleet snapshot.
    Provision {
        slot: u64,
        vms: Arc<Vec<VmView>>,
        pending: Arc<Vec<PendingJobView>>,
        max_vm_capacity: ResourceVector,
    },
    /// Fold a completed job into the shard's training corpus.
    JobCompleted {
        job: JobId,
        unused_history: Vec<Vec<f64>>,
    },
}

/// One long-lived scheduler shard: its pipeline runs on a dedicated thread,
/// driven by `requests`; plans come back on `plans`.
struct Worker {
    /// `None` once shutdown has begun (dropping the sender stops the loop).
    requests: Option<crossbeam::channel::Sender<ShardRequest>>,
    plans: crossbeam::channel::Receiver<ProvisionPlan>,
    handle: Option<std::thread::JoinHandle<()>>,
    stats: ShardStats,
}

fn worker_loop(
    shard: usize,
    num_shards: usize,
    mut inner: Box<dyn Provisioner + Send>,
    requests: crossbeam::channel::Receiver<ShardRequest>,
    plans: crossbeam::channel::Sender<ProvisionPlan>,
) {
    while let Ok(request) = requests.recv() {
        match request {
            ShardRequest::Provision {
                slot,
                vms,
                pending,
                max_vm_capacity,
            } => {
                let my_vms = shard_vm_views(&vms, shard, num_shards);
                let my_pending = shard_pending(&pending, shard, num_shards);
                let ctx = SlotContext {
                    slot,
                    vms: &my_vms,
                    pending: &my_pending,
                    max_vm_capacity,
                };
                let plan = inner.provision(&ctx);
                if plans.send(plan).is_err() {
                    break; // coordinator gone
                }
            }
            ShardRequest::JobCompleted {
                job,
                unused_history,
            } => {
                inner.on_job_completed(job, &unused_history);
            }
        }
    }
}

/// N scheduler shards behind the engine's `Provisioner` interface (see
/// module docs).
pub struct ShardedProvisioner {
    name: String,
    workers: Vec<Worker>,
    config: ShardConfig,
    /// Built lazily from the first slot's fleet view.
    store: Option<PlacementStore>,
    max_queue_depth: usize,
}

impl ShardedProvisioner {
    /// Wraps `inners` (one per shard) under a display name of
    /// `"<base>x<shards>"`, spawning one worker thread per shard.
    ///
    /// # Panics
    ///
    /// If `inners` is empty or a worker thread cannot be spawned.
    pub fn new(
        base_name: &str,
        inners: Vec<Box<dyn Provisioner + Send>>,
        config: ShardConfig,
    ) -> Self {
        assert!(!inners.is_empty(), "need at least one shard");
        let num_shards = inners.len();
        let name = format!("{}x{}", base_name, num_shards);
        let workers = inners
            .into_iter()
            .enumerate()
            .map(|(shard, inner)| {
                let (req_tx, req_rx) = crossbeam::channel::unbounded();
                let (plan_tx, plan_rx) = crossbeam::channel::unbounded();
                let handle = std::thread::Builder::new()
                    .name(format!("corp-shard-{shard}"))
                    .spawn(move || worker_loop(shard, num_shards, inner, req_rx, plan_tx))
                    .expect("spawn shard worker");
                Worker {
                    requests: Some(req_tx),
                    plans: plan_rx,
                    handle: Some(handle),
                    stats: ShardStats {
                        shard,
                        ..Default::default()
                    },
                }
            })
            .collect();
        ShardedProvisioner {
            name,
            workers,
            config,
            store: None,
            max_queue_depth: 0,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// The shared placement store (after the first slot).
    pub fn store(&self) -> Option<&PlacementStore> {
        self.store.as_ref()
    }

    /// Phase A: every shard proposes in parallel over the shared snapshot.
    fn propose(&mut self, ctx: &SlotContext<'_>) -> Vec<ProvisionPlan> {
        let n = self.workers.len();
        self.max_queue_depth = self.max_queue_depth.max(ctx.pending.len());
        let mut depths = vec![0usize; n];
        for job in ctx.pending {
            depths[owner_of(job.id, n)] += 1;
        }
        for (worker, depth) in self.workers.iter_mut().zip(depths) {
            worker.stats.max_queue_depth = worker.stats.max_queue_depth.max(depth);
        }

        let vms = Arc::new(ctx.vms.to_vec());
        let pending = Arc::new(ctx.pending.to_vec());
        for worker in &self.workers {
            let request = ShardRequest::Provision {
                slot: ctx.slot,
                vms: Arc::clone(&vms),
                pending: Arc::clone(&pending),
                max_vm_capacity: ctx.max_vm_capacity,
            };
            worker
                .requests
                .as_ref()
                .expect("workers alive until drop")
                .send(request)
                .expect("shard worker alive");
        }
        // Collect in shard order: deterministic merge, full overlap while
        // the slower shards finish.
        self.workers
            .iter()
            .map(|w| w.plans.recv().expect("shard worker alive"))
            .collect()
    }

    /// Picks the VM with the least free headroom still fitting `alloc`
    /// (best fit; ties to the lowest id). `volume` is measured against the
    /// fleet's reference capacity, matching the packing heuristics.
    fn best_fit(
        store: &PlacementStore,
        alloc: &ResourceVector,
        reference: &ResourceVector,
    ) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for (vm, free) in store.free_all().into_iter().enumerate() {
            if !alloc.fits_within(&free) {
                continue;
            }
            let headroom = free.volume(reference);
            if best.map(|(h, _)| headroom < h).unwrap_or(true) {
                best = Some((headroom, vm));
            }
        }
        best.map(|(_, vm)| vm)
    }

    /// Phase B: deterministic sequential arbitration of all proposals
    /// through the store.
    fn arbitrate(&mut self, ctx: &SlotContext<'_>, plans: Vec<ProvisionPlan>) -> ProvisionPlan {
        let store = self.store.as_ref().expect("store initialized in provision");
        let mut merged = ProvisionPlan::default();

        // Current allocations of running jobs, for adjustment rebasing.
        let current: HashMap<JobId, (usize, ResourceVector)> = ctx
            .vms
            .iter()
            .flat_map(|vm| vm.jobs.iter().map(|j| (j.id, (vm.id, j.allocation))))
            .collect();

        // Adjustments: shrinks release capacity before grows claim it —
        // the same stable ordering the engine applies, so the store's
        // committed sequence previews the engine's exactly.
        let all_adjustments: Vec<(usize, JobId, ResourceVector)> = plans
            .iter()
            .enumerate()
            .flat_map(|(s, plan)| {
                plan.adjustments
                    .iter()
                    .map(move |(job, alloc)| (s, *job, *alloc))
            })
            .collect();
        let is_shrink = |job: &JobId, new: &ResourceVector| {
            current
                .get(job)
                .map(|(_, old)| new.fits_within(old))
                .unwrap_or(false)
        };
        let (shrinks, grows): (Vec<_>, Vec<_>) = all_adjustments
            .into_iter()
            .partition(|(_, job, new)| is_shrink(job, new));
        for (shard, job, new) in shrinks.into_iter().chain(grows) {
            let Some(&(vm, old)) = current.get(&job) else {
                self.workers[shard].stats.conflicts += 1;
                continue;
            };
            if store.adjust(vm, old, new) {
                merged.adjustments.push((job, new));
            } else {
                self.workers[shard].stats.conflicts += 1;
            }
        }

        // Placements: round-robin by (proposal index, shard), 2PC per
        // proposal with bounded best-fit retry.
        let pending_ids: HashSet<JobId> = ctx.pending.iter().map(|j| j.id).collect();
        let mut placed: HashSet<JobId> = HashSet::new();
        let deepest = plans.iter().map(|p| p.placements.len()).max().unwrap_or(0);
        for index in 0..deepest {
            for (shard, plan) in plans.iter().enumerate() {
                let Some(p) = plan.placements.get(index) else {
                    continue;
                };
                let stats = &mut self.workers[shard].stats;
                stats.proposals += 1;
                if !pending_ids.contains(&p.job) || placed.contains(&p.job) {
                    continue; // not placeable: duplicate or unknown job
                }
                let alloc = p.allocation.clamp_nonnegative();
                let mut target = p.vm;
                let mut attempts = 0usize;
                loop {
                    match store.reserve(shard, target, alloc) {
                        Ok(id) => {
                            store.confirm(id).expect("freshly reserved id is open");
                            stats.commits += 1;
                            placed.insert(p.job);
                            merged.placements.push(Placement {
                                job: p.job,
                                vm: target,
                                allocation: alloc,
                            });
                            break;
                        }
                        Err(ReserveError::Conflict) => {
                            stats.conflicts += 1;
                            if attempts >= self.config.max_retries {
                                stats.aborts += 1;
                                break;
                            }
                            match Self::best_fit(store, &alloc, &ctx.max_vm_capacity) {
                                Some(vm) => {
                                    attempts += 1;
                                    stats.retries += 1;
                                    target = vm;
                                }
                                None => {
                                    stats.aborts += 1;
                                    break;
                                }
                            }
                        }
                        Err(ReserveError::UnknownVm) => {
                            stats.aborts += 1;
                            break;
                        }
                    }
                }
            }
        }

        for plan in plans {
            merged.predictions.extend(plan.predictions);
        }
        merged
    }
}

impl Provisioner for ShardedProvisioner {
    fn name(&self) -> &str {
        &self.name
    }

    fn provision(&mut self, ctx: &SlotContext<'_>) -> ProvisionPlan {
        let store = self.store.get_or_insert_with(|| {
            PlacementStore::new(ctx.vms.iter().map(|vm| vm.capacity).collect())
        });
        store.begin_slot(&ctx.vms.iter().map(|vm| vm.committed).collect::<Vec<_>>());
        let plans = self.propose(ctx);
        self.arbitrate(ctx, plans)
    }

    fn on_job_completed(&mut self, job: JobId, unused_history: &[Vec<f64>]) {
        let owner = owner_of(job, self.workers.len());
        let request = ShardRequest::JobCompleted {
            job,
            unused_history: unused_history.to_vec(),
        };
        // FIFO per worker: the notification lands before the next
        // Provision request, exactly as the engine orders the calls.
        self.workers[owner]
            .requests
            .as_ref()
            .expect("workers alive until drop")
            .send(request)
            .expect("shard worker alive");
    }

    fn control_plane_stats(&self) -> Option<ControlPlaneStats> {
        let counters = self
            .store
            .as_ref()
            .map(|s| s.counters())
            .unwrap_or_default();
        Some(ControlPlaneStats {
            shards: self.workers.len(),
            reservations: counters.reservations,
            commits: counters.commits,
            conflicts: counters.conflicts,
            aborts: counters.aborts,
            retries: self.workers.iter().map(|s| s.stats.retries).sum(),
            max_queue_depth: self.max_queue_depth,
            per_shard: self.workers.iter().map(|s| s.stats.clone()).collect(),
        })
    }
}

impl Drop for ShardedProvisioner {
    fn drop(&mut self) {
        // Closing every request channel stops the worker loops; then join.
        for worker in &mut self.workers {
            worker.requests.take();
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corp_sim::{PendingJobView, StaticPeakProvisioner, VmView};

    fn rv(v: f64) -> ResourceVector {
        ResourceVector::splat(v)
    }

    fn fleet(free: &[f64]) -> Vec<VmView> {
        free.iter()
            .enumerate()
            .map(|(id, &f)| VmView {
                id,
                capacity: rv(4.0),
                committed: rv(4.0) - rv(f),
                free: rv(f),
                jobs: Vec::new(),
                unused_history: Vec::new(),
            })
            .collect()
    }

    fn job(id: JobId, req: f64) -> PendingJobView {
        PendingJobView {
            id,
            requested: rv(req),
            arrival_slot: 0,
            slo_slots: 10,
        }
    }

    fn sharded(n: usize) -> ShardedProvisioner {
        let inners: Vec<Box<dyn Provisioner + Send>> = (0..n)
            .map(|_| Box::new(StaticPeakProvisioner) as _)
            .collect();
        ShardedProvisioner::new("static-peak", inners, ShardConfig::default())
    }

    #[test]
    fn racing_shards_never_overcommit_a_vm() {
        // One VM with room for exactly two unit jobs; four shards each
        // propose their own job for it (static-peak first-fit all pick VM
        // 0). The store must admit exactly two and abort the rest.
        let vms = fleet(&[2.0]);
        let pending: Vec<PendingJobView> = (0..4).map(|i| job(i, 1.0)).collect();
        let ctx = SlotContext {
            slot: 0,
            vms: &vms,
            pending: &pending,
            max_vm_capacity: rv(4.0),
        };
        let mut p = sharded(4);
        let plan = p.provision(&ctx);
        assert_eq!(plan.placements.len(), 2, "{plan:?}");
        let stats = p.control_plane_stats().unwrap();
        assert_eq!(stats.commits, 2);
        assert!(stats.conflicts >= 2, "{stats:?}");
        assert!(p.store().unwrap().holds_invariants(1e-9));
    }

    #[test]
    fn conflicting_placements_retry_onto_best_fit_vm() {
        // VM 0 fits one unit job; VM 1 is wide open. Both shards propose
        // VM 0 (first fit); the loser must land on VM 1 via retry, and the
        // tighter VM is preferred when several fit.
        let vms = fleet(&[1.0, 4.0]);
        let pending = vec![job(0, 1.0), job(1, 1.0)];
        let ctx = SlotContext {
            slot: 0,
            vms: &vms,
            pending: &pending,
            max_vm_capacity: rv(4.0),
        };
        let mut p = sharded(2);
        let plan = p.provision(&ctx);
        assert_eq!(plan.placements.len(), 2, "{plan:?}");
        let vms_used: Vec<usize> = plan.placements.iter().map(|pl| pl.vm).collect();
        assert_eq!(vms_used, vec![0, 1], "loser retried onto VM 1: {plan:?}");
        let stats = p.control_plane_stats().unwrap();
        assert_eq!(stats.retries, 1, "{stats:?}");
        assert_eq!(stats.commits, 2);
    }

    #[test]
    fn retry_budget_bounds_attempts_and_aborts_to_pending() {
        // One VM with room for one job, two shards each proposing theirs.
        // The loser's reservation conflicts and best-fit finds no
        // alternative, so it aborts immediately instead of burning the
        // whole retry budget on hopeless VMs; its job stays pending.
        let vms = fleet(&[1.0]);
        let pending = vec![job(0, 1.0), job(1, 1.0)];
        let ctx = SlotContext {
            slot: 0,
            vms: &vms,
            pending: &pending,
            max_vm_capacity: rv(4.0),
        };
        let mut p = sharded(2);
        let plan = p.provision(&ctx);
        assert_eq!(plan.placements.len(), 1);
        let stats = p.control_plane_stats().unwrap();
        let aborted: u64 = stats.per_shard.iter().map(|s| s.aborts).sum();
        assert_eq!(aborted, 1, "{stats:?}");
        assert_eq!(stats.retries, 0, "no fitting alternative, no retry");
        assert_eq!(stats.commits, 1);
    }

    #[test]
    fn single_shard_passes_plans_through_unchanged() {
        let vms = fleet(&[4.0, 4.0]);
        let pending = vec![job(0, 1.0), job(1, 2.0)];
        let ctx = SlotContext {
            slot: 0,
            vms: &vms,
            pending: &pending,
            max_vm_capacity: rv(4.0),
        };
        let mut baseline = StaticPeakProvisioner;
        let expected = baseline.provision(&ctx);
        let mut p = sharded(1);
        let got = p.provision(&ctx);
        assert_eq!(got.placements, expected.placements);
        assert_eq!(p.name(), "static-peakx1");
    }

    #[test]
    fn queue_depths_track_the_deepest_slot() {
        let vms = fleet(&[4.0]);
        let pending: Vec<PendingJobView> = (0..3).map(|i| job(i, 0.5)).collect();
        let ctx = SlotContext {
            slot: 0,
            vms: &vms,
            pending: &pending,
            max_vm_capacity: rv(4.0),
        };
        let mut p = sharded(2);
        let _ = p.provision(&ctx);
        let empty: Vec<PendingJobView> = Vec::new();
        let ctx2 = SlotContext {
            slot: 1,
            vms: &vms,
            pending: &empty,
            max_vm_capacity: rv(4.0),
        };
        let _ = p.provision(&ctx2);
        let stats = p.control_plane_stats().unwrap();
        assert_eq!(stats.max_queue_depth, 3);
        // Jobs 0 and 2 belong to shard 0; job 1 to shard 1.
        assert_eq!(stats.per_shard[0].max_queue_depth, 2);
        assert_eq!(stats.per_shard[1].max_queue_depth, 1);
    }
}
