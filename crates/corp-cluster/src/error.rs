//! Typed control-plane failures.
//!
//! The coordinator never panics on a sick worker: every failure is either
//! recovered in place (restart + inline scheduling) or recorded here and
//! surfaced through [`ShardedProvisioner::errors`](crate::ShardedProvisioner::errors).

use std::fmt;

/// A control-plane failure observed by the shard supervisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The OS refused to spawn a shard's worker thread.
    SpawnFailed {
        /// Shard whose worker could not be spawned.
        shard: usize,
        /// The underlying `io::Error`, stringified (io::Error: !Clone).
        reason: String,
    },
    /// A worker died (panic, scheduled kill, or closed channel) and no
    /// factory was registered to rebuild its provisioner, so the
    /// coordinator schedules the shard inline permanently.
    WorkerUnrecoverable {
        /// Shard left without a worker.
        shard: usize,
    },
    /// A worker's reply missed the real-time timeout safety net.
    ReplyTimeout {
        /// Shard whose reply timed out.
        shard: usize,
        /// Slot being provisioned when the timeout tripped.
        slot: u64,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::SpawnFailed { shard, reason } => {
                write!(f, "failed to spawn worker for shard {shard}: {reason}")
            }
            ClusterError::WorkerUnrecoverable { shard } => {
                write!(
                    f,
                    "shard {shard} worker died with no factory to rebuild it; scheduling inline"
                )
            }
            ClusterError::ReplyTimeout { shard, slot } => {
                write!(f, "shard {shard} reply timed out at slot {slot}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_the_shard_involved() {
        let e = ClusterError::WorkerUnrecoverable { shard: 3 };
        assert!(e.to_string().contains("shard 3"));
        let t = ClusterError::ReplyTimeout { shard: 1, slot: 42 };
        assert!(t.to_string().contains("slot 42"));
    }
}
