//! Job-to-shard partitioning and per-shard context construction.
//!
//! Every job is owned by exactly one shard for its whole lifetime —
//! `owner = job_id % num_shards` — so racing shards never propose
//! conflicting actions for the *same* job; the only contention left is
//! capacity, which the [`PlacementStore`](crate::PlacementStore)
//! arbitrates. Each shard receives a narrowed [`SlotContext`]: the full VM
//! fleet (capacity and commitment truth is global) but with each VM's
//! running-job views and the pending queue filtered to the jobs the shard
//! owns. VM-level series (`unused_history`) stay global, so VM-granular
//! predictors see the physical signal regardless of sharding.

use corp_sim::{JobId, PendingJobView, RunningJobView, SlotContext, VmView};

/// The shard that owns `job` in an `num_shards`-way partition.
pub fn owner_of(job: JobId, num_shards: usize) -> usize {
    debug_assert!(num_shards > 0);
    (job % num_shards as u64) as usize
}

/// One shard's pending queue: the jobs it owns, arrival order preserved.
pub fn shard_pending(
    pending: &[PendingJobView],
    shard: usize,
    num_shards: usize,
) -> Vec<PendingJobView> {
    pending
        .iter()
        .filter(|j| owner_of(j.id, num_shards) == shard)
        .cloned()
        .collect()
}

/// Splits the pending queue into per-shard queues (arrival order preserved
/// within each shard).
pub fn partition_pending(
    pending: &[PendingJobView],
    num_shards: usize,
) -> Vec<Vec<PendingJobView>> {
    (0..num_shards)
        .map(|s| shard_pending(pending, s, num_shards))
        .collect()
}

/// One shard's view of the fleet: global capacity/commitment and VM-level
/// history, with running-job views filtered to the shard's own jobs. Each
/// shard thread builds its own view from the shared fleet snapshot, so the
/// copying cost parallelizes with the shard count.
pub fn shard_vm_views(vms: &[VmView], shard: usize, num_shards: usize) -> Vec<VmView> {
    let mut views = Vec::new();
    shard_vm_views_into(vms, shard, num_shards, &mut views);
    views
}

/// [`shard_vm_views`] into a caller-owned buffer, reusing every inner
/// allocation (per-VM job vectors, per-job history tails) from the previous
/// slot — long-lived shard workers narrow the fleet snapshot once per slot,
/// and with buffer reuse the steady-state cost is pure copying, no
/// allocator traffic.
pub fn shard_vm_views_into(vms: &[VmView], shard: usize, num_shards: usize, out: &mut Vec<VmView>) {
    out.truncate(vms.len());
    let filled = out.len();
    for (dst, src) in out.iter_mut().zip(vms) {
        dst.id = src.id;
        dst.capacity = src.capacity;
        dst.committed = src.committed;
        dst.free = src.free;
        copy_owned_jobs_into(&src.jobs, shard, num_shards, &mut dst.jobs);
        dst.unused_history.clear();
        dst.unused_history.extend_from_slice(&src.unused_history);
    }
    for src in &vms[filled..] {
        out.push(VmView {
            id: src.id,
            capacity: src.capacity,
            committed: src.committed,
            free: src.free,
            jobs: src
                .jobs
                .iter()
                .filter(|j| owner_of(j.id, num_shards) == shard)
                .cloned()
                .collect(),
            unused_history: src.unused_history.clone(),
        });
    }
}

/// Filters `src` to the shard's own jobs, cloning into `dst` while reusing
/// its job entries' history allocations.
fn copy_owned_jobs_into(
    src: &[RunningJobView],
    shard: usize,
    num_shards: usize,
    dst: &mut Vec<RunningJobView>,
) {
    let mut kept = 0usize;
    for job in src.iter().filter(|j| owner_of(j.id, num_shards) == shard) {
        if kept < dst.len() {
            let slot = &mut dst[kept];
            slot.id = job.id;
            slot.requested = job.requested;
            slot.allocation = job.allocation;
            slot.recent_demand.clear();
            slot.recent_demand.extend_from_slice(&job.recent_demand);
            slot.recent_unused.clear();
            slot.recent_unused.extend_from_slice(&job.recent_unused);
        } else {
            dst.push(job.clone());
        }
        kept += 1;
    }
    dst.truncate(kept);
}

/// Copies a whole fleet snapshot into a caller-owned buffer, reusing inner
/// allocations — the coordinator's per-slot snapshot of the engine's views,
/// recycled across slots instead of freshly cloned.
pub fn copy_vm_views_into(vms: &[VmView], out: &mut Vec<VmView>) {
    out.truncate(vms.len());
    let filled = out.len();
    for (dst, src) in out.iter_mut().zip(vms) {
        dst.id = src.id;
        dst.capacity = src.capacity;
        dst.committed = src.committed;
        dst.free = src.free;
        copy_jobs_into(&src.jobs, &mut dst.jobs);
        dst.unused_history.clear();
        dst.unused_history.extend_from_slice(&src.unused_history);
    }
    for src in &vms[filled..] {
        out.push(src.clone());
    }
}

fn copy_jobs_into(src: &[RunningJobView], dst: &mut Vec<RunningJobView>) {
    dst.truncate(src.len());
    let filled = dst.len();
    for (slot, job) in dst.iter_mut().zip(src) {
        slot.id = job.id;
        slot.requested = job.requested;
        slot.allocation = job.allocation;
        slot.recent_demand.clear();
        slot.recent_demand.extend_from_slice(&job.recent_demand);
        slot.recent_unused.clear();
        slot.recent_unused.extend_from_slice(&job.recent_unused);
    }
    for job in &src[filled..] {
        dst.push(job.clone());
    }
}

/// Builds every shard's fleet view at once (tests and single-threaded
/// callers; the coordinator lets each shard thread call
/// [`shard_vm_views`] itself).
pub fn partition_vm_views(vms: &[VmView], num_shards: usize) -> Vec<Vec<VmView>> {
    (0..num_shards)
        .map(|s| shard_vm_views(vms, s, num_shards))
        .collect()
}

/// A narrowed per-shard context borrowing the shard's partitioned slices.
/// The raw committed column stays global (it is id-indexed by VM, and
/// capacity truth is fleet-wide), exactly like the per-VM views' committed
/// fields.
pub fn shard_context<'a>(
    base: &SlotContext<'a>,
    vms: &'a [VmView],
    pending: &'a [PendingJobView],
) -> SlotContext<'a> {
    SlotContext {
        slot: base.slot,
        vms,
        pending,
        committed: base.committed,
        max_vm_capacity: base.max_vm_capacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corp_sim::{ResourceVector, RunningJobView};

    fn pending(id: JobId) -> PendingJobView {
        PendingJobView {
            id,
            requested: ResourceVector::splat(1.0),
            arrival_slot: 0,
            slo_slots: 10,
            handle: corp_sim::JobHandle::DETACHED,
        }
    }

    fn running(id: JobId) -> RunningJobView {
        RunningJobView {
            id,
            requested: ResourceVector::splat(1.0),
            allocation: ResourceVector::splat(1.0),
            recent_demand: Vec::new(),
            recent_unused: Vec::new(),
        }
    }

    #[test]
    fn ownership_partitions_all_jobs_exactly_once() {
        let jobs: Vec<PendingJobView> = (0..23).map(pending).collect();
        let parts = partition_pending(&jobs, 4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), jobs.len());
        for (shard, part) in parts.iter().enumerate() {
            for j in part {
                assert_eq!(owner_of(j.id, 4), shard);
            }
        }
    }

    #[test]
    fn single_shard_owns_everything_in_order() {
        let jobs: Vec<PendingJobView> = [5, 2, 9].into_iter().map(pending).collect();
        let parts = partition_pending(&jobs, 1);
        assert_eq!(parts.len(), 1);
        let ids: Vec<JobId> = parts[0].iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![5, 2, 9], "arrival order preserved");
    }

    #[test]
    fn vm_views_filter_jobs_but_keep_global_state() {
        let vm = VmView {
            id: 0,
            capacity: ResourceVector::splat(8.0),
            committed: ResourceVector::splat(3.0),
            free: ResourceVector::splat(5.0),
            jobs: vec![running(0), running(1), running(2)],
            unused_history: vec![ResourceVector::splat(0.5)],
        };
        let per_shard = partition_vm_views(&[vm], 2);
        assert_eq!(
            per_shard[0][0]
                .jobs
                .iter()
                .map(|j| j.id)
                .collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(
            per_shard[1][0]
                .jobs
                .iter()
                .map(|j| j.id)
                .collect::<Vec<_>>(),
            vec![1]
        );
        for views in &per_shard {
            assert_eq!(views[0].committed, ResourceVector::splat(3.0));
            assert_eq!(views[0].unused_history.len(), 1);
        }
    }

    #[test]
    fn reused_buffers_match_fresh_narrowing() {
        let fleet = |n: usize, hist: usize| -> Vec<VmView> {
            (0..n)
                .map(|id| VmView {
                    id,
                    capacity: ResourceVector::splat(8.0),
                    committed: ResourceVector::splat(id as f64),
                    free: ResourceVector::splat(8.0 - id as f64),
                    jobs: (0..id as u64).map(running).collect(),
                    unused_history: vec![ResourceVector::splat(0.5); hist],
                })
                .collect()
        };
        // Narrow a big deep fleet into the buffer, then a smaller shallow
        // one: stale entries, jobs, and history tails must all be dropped.
        let mut buf = Vec::new();
        shard_vm_views_into(&fleet(6, 4), 0, 2, &mut buf);
        let second = fleet(3, 1);
        shard_vm_views_into(&second, 0, 2, &mut buf);
        assert_eq!(
            format!("{buf:?}"),
            format!("{:?}", shard_vm_views(&second, 0, 2))
        );
        // Whole-snapshot copy: same reuse contract.
        let mut snap = Vec::new();
        copy_vm_views_into(&fleet(2, 3), &mut snap);
        copy_vm_views_into(&second, &mut snap);
        assert_eq!(format!("{snap:?}"), format!("{second:?}"));
    }
}
