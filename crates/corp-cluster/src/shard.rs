//! Job-to-shard partitioning and per-shard context construction.
//!
//! Every job is owned by exactly one shard for its whole lifetime —
//! `owner = job_id % num_shards` — so racing shards never propose
//! conflicting actions for the *same* job; the only contention left is
//! capacity, which the [`PlacementStore`](crate::PlacementStore)
//! arbitrates. Each shard receives a narrowed [`SlotContext`]: the full VM
//! fleet (capacity and commitment truth is global) but with each VM's
//! running-job views and the pending queue filtered to the jobs the shard
//! owns. VM-level series (`unused_history`) stay global, so VM-granular
//! predictors see the physical signal regardless of sharding.

use corp_sim::{JobId, PendingJobView, SlotContext, VmView};

/// The shard that owns `job` in an `num_shards`-way partition.
pub fn owner_of(job: JobId, num_shards: usize) -> usize {
    debug_assert!(num_shards > 0);
    (job % num_shards as u64) as usize
}

/// One shard's pending queue: the jobs it owns, arrival order preserved.
pub fn shard_pending(
    pending: &[PendingJobView],
    shard: usize,
    num_shards: usize,
) -> Vec<PendingJobView> {
    pending
        .iter()
        .filter(|j| owner_of(j.id, num_shards) == shard)
        .cloned()
        .collect()
}

/// Splits the pending queue into per-shard queues (arrival order preserved
/// within each shard).
pub fn partition_pending(
    pending: &[PendingJobView],
    num_shards: usize,
) -> Vec<Vec<PendingJobView>> {
    (0..num_shards)
        .map(|s| shard_pending(pending, s, num_shards))
        .collect()
}

/// One shard's view of the fleet: global capacity/commitment and VM-level
/// history, with running-job views filtered to the shard's own jobs. Each
/// shard thread builds its own view from the shared fleet snapshot, so the
/// copying cost parallelizes with the shard count.
pub fn shard_vm_views(vms: &[VmView], shard: usize, num_shards: usize) -> Vec<VmView> {
    vms.iter()
        .map(|vm| VmView {
            id: vm.id,
            capacity: vm.capacity,
            committed: vm.committed,
            free: vm.free,
            jobs: vm
                .jobs
                .iter()
                .filter(|j| owner_of(j.id, num_shards) == shard)
                .cloned()
                .collect(),
            unused_history: vm.unused_history.clone(),
        })
        .collect()
}

/// Builds every shard's fleet view at once (tests and single-threaded
/// callers; the coordinator lets each shard thread call
/// [`shard_vm_views`] itself).
pub fn partition_vm_views(vms: &[VmView], num_shards: usize) -> Vec<Vec<VmView>> {
    (0..num_shards)
        .map(|s| shard_vm_views(vms, s, num_shards))
        .collect()
}

/// A narrowed per-shard context borrowing the shard's partitioned slices.
/// The raw committed column stays global (it is id-indexed by VM, and
/// capacity truth is fleet-wide), exactly like the per-VM views' committed
/// fields.
pub fn shard_context<'a>(
    base: &SlotContext<'a>,
    vms: &'a [VmView],
    pending: &'a [PendingJobView],
) -> SlotContext<'a> {
    SlotContext {
        slot: base.slot,
        vms,
        pending,
        committed: base.committed,
        max_vm_capacity: base.max_vm_capacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corp_sim::{ResourceVector, RunningJobView};

    fn pending(id: JobId) -> PendingJobView {
        PendingJobView {
            id,
            requested: ResourceVector::splat(1.0),
            arrival_slot: 0,
            slo_slots: 10,
            handle: corp_sim::JobHandle::DETACHED,
        }
    }

    fn running(id: JobId) -> RunningJobView {
        RunningJobView {
            id,
            requested: ResourceVector::splat(1.0),
            allocation: ResourceVector::splat(1.0),
            recent_demand: Vec::new(),
            recent_unused: Vec::new(),
        }
    }

    #[test]
    fn ownership_partitions_all_jobs_exactly_once() {
        let jobs: Vec<PendingJobView> = (0..23).map(pending).collect();
        let parts = partition_pending(&jobs, 4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), jobs.len());
        for (shard, part) in parts.iter().enumerate() {
            for j in part {
                assert_eq!(owner_of(j.id, 4), shard);
            }
        }
    }

    #[test]
    fn single_shard_owns_everything_in_order() {
        let jobs: Vec<PendingJobView> = [5, 2, 9].into_iter().map(pending).collect();
        let parts = partition_pending(&jobs, 1);
        assert_eq!(parts.len(), 1);
        let ids: Vec<JobId> = parts[0].iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![5, 2, 9], "arrival order preserved");
    }

    #[test]
    fn vm_views_filter_jobs_but_keep_global_state() {
        let vm = VmView {
            id: 0,
            capacity: ResourceVector::splat(8.0),
            committed: ResourceVector::splat(3.0),
            free: ResourceVector::splat(5.0),
            jobs: vec![running(0), running(1), running(2)],
            unused_history: vec![ResourceVector::splat(0.5)],
        };
        let per_shard = partition_vm_views(&[vm], 2);
        assert_eq!(
            per_shard[0][0]
                .jobs
                .iter()
                .map(|j| j.id)
                .collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(
            per_shard[1][0]
                .jobs
                .iter()
                .map(|j| j.id)
                .collect::<Vec<_>>(),
            vec![1]
        );
        for views in &per_shard {
            assert_eq!(views[0].committed, ResourceVector::splat(3.0));
            assert_eq!(views[0].unused_history.len(), 1);
        }
    }
}
