//! Sharded multi-scheduler control plane for the CORP reproduction.
//!
//! CORP's evaluation runs one scheduler for the whole cluster; at larger
//! fleets a single decision loop becomes the bottleneck. This crate scales
//! the control plane out without giving up CORP's safety property (never
//! overcommit a VM beyond capacity) or the repo's reproducibility bar
//! (same seed → same report):
//!
//! * [`PlacementStore`] — the centralized capacity arbiter. Placements go
//!   through a two-phase commit: `reserve` (admission-checks the request
//!   against `committed + reserved` under one lock and opens a hold) then
//!   `confirm` or `abort`. Racing schedulers can interleave arbitrarily;
//!   no interleaving can overcommit a VM.
//! * [`shard`] — deterministic job-to-shard ownership
//!   (`job_id % num_shards`) and per-shard context narrowing, so shards
//!   contend only on capacity, never on the same job.
//! * [`ShardedProvisioner`] — the coordinator adapting N independent
//!   scheduler shards (each a full `Provisioner` pipeline on its own
//!   thread) to the engine's interface: parallel proposal generation,
//!   then deterministic sequential arbitration through the store with
//!   bounded best-fit retry on reservation conflicts.
//!
//! With one shard the coordinator reproduces the wrapped scheduler's
//! decisions exactly; with many it reports throughput and contention via
//! [`corp_sim::ControlPlaneStats`] in the simulation report.
//!
//! The coordinator also supervises its workers: worker bodies run under
//! `catch_unwind`, scheduled chaos (a [`corp_faults::ControlFaultPlan`])
//! can kill workers and drop or delay messages, and every failure is
//! either recovered (factory restart + inline scheduling for the missed
//! slot) or recorded as a typed [`ClusterError`] — never a panic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod error;
pub mod health;
pub mod provisioner;
pub mod shard;
pub mod store;

pub use backend::TwoPhaseBackend;
pub use error::ClusterError;
pub use health::{ShardHealth, ShardSlotOutcome};
pub use provisioner::{ProvisionerFactory, ShardConfig, ShardedProvisioner};
pub use store::{
    FastPathMiss, PlacementStore, ReservationId, ReserveError, StoreCounters, TxnError,
    DEFAULT_STRIPES, PARALLEL_BATCH_CUTOFF,
};
