//! The centralized two-phase-commit placement store.
//!
//! Scheduler shards race to place jobs onto a shared VM fleet. The store is
//! the single arbiter of capacity: a shard first **reserves** the resources
//! a placement needs (phase 1 — the store admits the reservation only if
//! committed + reserved + amount still fits the VM), then either
//! **confirms** it (phase 2 — the hold becomes a durable commitment) or
//! **aborts** it (the hold is released). Because admission is checked under
//! one lock against the sum of durable commitments *and* outstanding holds,
//! no interleaving of racing shards can ever over-commit a VM — the
//! invariant the property tests drive with real thread interleavings.
//!
//! The store tracks capacity only; job identity, retry policy, and commit
//! ordering belong to the coordinator
//! ([`ShardedProvisioner`](crate::ShardedProvisioner)). Allocation
//! *adjustments* to running jobs go through [`PlacementStore::adjust`],
//! which applies the engine's own rebase arithmetic so a store-approved
//! adjustment is engine-valid by construction.

use std::collections::HashMap;

use corp_core::VolumeIndex;
use corp_sim::ResourceVector;
use parking_lot::Mutex;

/// Handle to an open (reserved but not yet confirmed/aborted) reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReservationId(u64);

/// Why a reservation was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReserveError {
    /// Admitting the reservation would over-commit the VM.
    Conflict,
    /// The VM id does not exist.
    UnknownVm,
}

/// Why a confirm/abort failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnError {
    /// The reservation id is not open (already confirmed, aborted, or never
    /// issued).
    UnknownReservation,
}

/// Monotone counters over the store's whole lifetime (slots accumulate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Reservations admitted (phase 1 successes).
    pub reservations: u64,
    /// Reservations confirmed (phase 2 commits).
    pub commits: u64,
    /// Reservation attempts refused (would-be overcommits), including
    /// denied growing adjustments.
    pub conflicts: u64,
    /// Reservations rolled back.
    pub aborts: u64,
}

#[derive(Debug, Clone, Copy)]
struct Reservation {
    vm: usize,
    amount: ResourceVector,
    /// Shard that opened the reservation (diagnostics).
    #[allow(dead_code)]
    shard: usize,
}

struct VmLedger {
    capacity: ResourceVector,
    /// Durable commitments (confirmed allocations), mirroring the engine's
    /// per-VM committed vector.
    committed: ResourceVector,
    /// Sum of open reservations.
    reserved: ResourceVector,
}

impl VmLedger {
    fn headroom(&self) -> ResourceVector {
        self.capacity
            .saturating_sub(&(self.committed + self.reserved))
    }
}

struct StoreInner {
    vms: Vec<VmLedger>,
    open: HashMap<u64, Reservation>,
    next_id: u64,
    counters: StoreCounters,
    /// Lazily built Eq. 22 headroom index: the reference capacity it was
    /// built against plus a sorted volume index over per-VM headrooms.
    /// Whole-fleet rebases drop it (rebuilt on the next
    /// [`PlacementStore::best_fit`]); single-VM mutations reposition just
    /// that VM's entry in O(log V).
    index: Option<(ResourceVector, VolumeIndex)>,
}

impl StoreInner {
    /// Repositions `vm`'s index entry after any mutation that changed its
    /// headroom (reserve/confirm/abort/adjust/set_capacity).
    fn touch_index(&mut self, vm: usize) {
        if let Some((reference, index)) = self.index.as_mut() {
            index.update(vm, &self.vms[vm].headroom(), reference);
        }
    }
}

/// Thread-safe capacity arbiter for a VM fleet (see module docs).
pub struct PlacementStore {
    inner: Mutex<StoreInner>,
}

impl PlacementStore {
    /// Builds a store over VMs with the given capacities, all uncommitted.
    pub fn new(capacities: Vec<ResourceVector>) -> Self {
        let vms = capacities
            .into_iter()
            .map(|capacity| VmLedger {
                capacity,
                committed: ResourceVector::ZERO,
                reserved: ResourceVector::ZERO,
            })
            .collect();
        PlacementStore {
            inner: Mutex::new(StoreInner {
                vms,
                open: HashMap::new(),
                next_id: 0,
                counters: StoreCounters::default(),
                index: None,
            }),
        }
    }

    /// Re-bases the durable commitments from an authoritative snapshot (the
    /// engine's per-VM committed vectors at the start of a slot) and drops
    /// any reservation left open from the previous slot (counted as
    /// aborts). Counters persist across slots.
    ///
    /// # Panics
    ///
    /// If `committed` has a different length than the fleet.
    pub fn begin_slot(&self, committed: &[ResourceVector]) {
        let mut inner = self.inner.lock();
        assert_eq!(
            inner.vms.len(),
            committed.len(),
            "fleet size changed mid-run"
        );
        inner.counters.aborts += inner.open.len() as u64;
        inner.open.clear();
        for (ledger, &base) in inner.vms.iter_mut().zip(committed) {
            ledger.committed = base;
            ledger.reserved = ResourceVector::ZERO;
        }
        // Every headroom changed at once; per-entry repositioning would be
        // wasted work, so drop the index and let best_fit rebuild lazily.
        inner.index = None;
    }

    /// [`begin_slot`](Self::begin_slot) that also re-bases per-VM
    /// capacities — required under fault injection, where a crashed VM's
    /// view capacity drops to zero and rejoins at nominal on recovery.
    /// With unchanged capacities this is exactly `begin_slot`.
    ///
    /// # Panics
    ///
    /// If `capacities` or `committed` has a different length than the
    /// fleet.
    pub fn begin_slot_full(&self, capacities: &[ResourceVector], committed: &[ResourceVector]) {
        {
            let mut inner = self.inner.lock();
            assert_eq!(
                inner.vms.len(),
                capacities.len(),
                "fleet size changed mid-run"
            );
            for (ledger, &cap) in inner.vms.iter_mut().zip(capacities) {
                ledger.capacity = cap;
            }
        }
        self.begin_slot(committed);
    }

    /// Sets one VM's capacity mid-slot — the crash/recovery primitive. If
    /// the new capacity no longer covers the VM's commitments and open
    /// holds (a crash), the durable commitments are wiped (they died with
    /// the VM) and every open hold on it is aborted, so the no-overcommit
    /// invariant holds by construction. Returns `false` for an unknown VM.
    pub fn set_capacity(&self, vm: usize, capacity: ResourceVector) -> bool {
        let mut inner = self.inner.lock();
        if vm >= inner.vms.len() {
            return false;
        }
        inner.vms[vm].capacity = capacity;
        let ledger = &inner.vms[vm];
        if (ledger.committed + ledger.reserved).fits_within(&capacity) {
            inner.touch_index(vm);
            return true;
        }
        inner.vms[vm].committed = ResourceVector::ZERO;
        inner.vms[vm].reserved = ResourceVector::ZERO;
        let stale: Vec<u64> = inner
            .open
            .iter()
            .filter(|(_, r)| r.vm == vm)
            .map(|(&id, _)| id)
            .collect();
        inner.counters.aborts += stale.len() as u64;
        for id in stale {
            inner.open.remove(&id);
        }
        inner.touch_index(vm);
        true
    }

    /// Phase 1: holds `amount` on `vm` for `shard`. Admitted only if the
    /// VM's durable commitments plus all open holds still leave room.
    pub fn reserve(
        &self,
        shard: usize,
        vm: usize,
        amount: ResourceVector,
    ) -> Result<ReservationId, ReserveError> {
        let amount = amount.clamp_nonnegative();
        let mut inner = self.inner.lock();
        let Some(ledger) = inner.vms.get(vm) else {
            return Err(ReserveError::UnknownVm);
        };
        if !amount.fits_within(&ledger.headroom()) {
            inner.counters.conflicts += 1;
            return Err(ReserveError::Conflict);
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.vms[vm].reserved += amount;
        inner.open.insert(id, Reservation { vm, amount, shard });
        inner.counters.reservations += 1;
        inner.touch_index(vm);
        Ok(ReservationId(id))
    }

    /// Phase 2 commit: the hold becomes a durable commitment.
    pub fn confirm(&self, id: ReservationId) -> Result<(), TxnError> {
        let mut inner = self.inner.lock();
        let Some(r) = inner.open.remove(&id.0) else {
            return Err(TxnError::UnknownReservation);
        };
        let ledger = &mut inner.vms[r.vm];
        ledger.reserved = (ledger.reserved - r.amount).clamp_nonnegative();
        ledger.committed += r.amount;
        inner.counters.commits += 1;
        inner.touch_index(r.vm);
        Ok(())
    }

    /// Phase 2 rollback: the hold is released.
    pub fn abort(&self, id: ReservationId) -> Result<(), TxnError> {
        let mut inner = self.inner.lock();
        let Some(r) = inner.open.remove(&id.0) else {
            return Err(TxnError::UnknownReservation);
        };
        let ledger = &mut inner.vms[r.vm];
        ledger.reserved = (ledger.reserved - r.amount).clamp_nonnegative();
        inner.counters.aborts += 1;
        inner.touch_index(r.vm);
        Ok(())
    }

    /// Re-bases a running job's allocation on `vm` from `old` to `new`,
    /// using the engine's own validation arithmetic (`committed - old +
    /// new`, clamped, must fit capacity net of open holds). Returns whether
    /// the adjustment was applied; a refusal counts as a conflict.
    pub fn adjust(&self, vm: usize, old: ResourceVector, new: ResourceVector) -> bool {
        let mut inner = self.inner.lock();
        let Some(ledger) = inner.vms.get(vm) else {
            inner.counters.conflicts += 1;
            return false;
        };
        if !new.is_nonnegative() {
            inner.counters.conflicts += 1;
            return false;
        }
        let candidate = (ledger.committed - old + new).clamp_nonnegative();
        if (candidate + ledger.reserved).fits_within(&ledger.capacity) {
            inner.vms[vm].committed = candidate;
            inner.touch_index(vm);
            true
        } else {
            inner.counters.conflicts += 1;
            false
        }
    }

    /// Eq. 22 best-fit over the store's current headrooms: the VM fitting
    /// `demand` with the smallest unused volume relative to `reference`,
    /// ties toward the lower VM id — exactly the choice a linear scan over
    /// [`free_all`](Self::free_all) would make, but served from the
    /// incrementally maintained sorted index, so a burst of placements
    /// costs O(log V) per choice instead of a fleet rescan each.
    ///
    /// The index is rebuilt lazily after whole-fleet rebases
    /// ([`begin_slot`](Self::begin_slot)) or when `reference` changes.
    pub fn best_fit(&self, demand: &ResourceVector, reference: &ResourceVector) -> Option<usize> {
        let mut inner = self.inner.lock();
        let stale = match &inner.index {
            Some((built_against, _)) => built_against != reference,
            None => true,
        };
        if stale {
            let headrooms: Vec<ResourceVector> = inner.vms.iter().map(VmLedger::headroom).collect();
            inner.index = Some((*reference, VolumeIndex::new(&headrooms, reference)));
        }
        let StoreInner { vms, index, .. } = &*inner;
        let (_, idx) = index.as_ref().expect("index built above");
        // A fitting headroom dominates the demand componentwise, so its
        // volume is at least the demand's: seek straight to that floor.
        idx.first_fit_from(demand.volume(reference).to_bits(), |i| {
            demand.fits_within(&vms[i].headroom())
        })
    }

    /// Capacity net of durable commitments and open holds on one VM.
    pub fn free(&self, vm: usize) -> Option<ResourceVector> {
        let inner = self.inner.lock();
        inner.vms.get(vm).map(VmLedger::headroom)
    }

    /// [`free`](Self::free) for the whole fleet, VM-id ordered.
    pub fn free_all(&self) -> Vec<ResourceVector> {
        self.inner
            .lock()
            .vms
            .iter()
            .map(VmLedger::headroom)
            .collect()
    }

    /// Number of VMs under arbitration.
    pub fn num_vms(&self) -> usize {
        self.inner.lock().vms.len()
    }

    /// Number of open (neither confirmed nor aborted) reservations.
    pub fn outstanding(&self) -> usize {
        self.inner.lock().open.len()
    }

    /// Snapshot of the lifetime counters.
    pub fn counters(&self) -> StoreCounters {
        self.inner.lock().counters
    }

    /// Checks the no-overcommit invariant on every VM: durable commitments
    /// plus open holds never exceed capacity (within `eps` of float
    /// accumulation slack per resource).
    pub fn holds_invariants(&self, eps: f64) -> bool {
        let inner = self.inner.lock();
        inner.vms.iter().all(|ledger| {
            let total = ledger.committed + ledger.reserved;
            (0..total.as_array().len()).all(|k| total[k] <= ledger.capacity[k] + eps)
                && ledger.committed.is_nonnegative()
                && ledger.reserved.is_nonnegative()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rv(a: f64, b: f64, c: f64) -> ResourceVector {
        ResourceVector::new([a, b, c])
    }

    fn store_one_vm() -> PlacementStore {
        PlacementStore::new(vec![rv(4.0, 16.0, 180.0)])
    }

    #[test]
    fn reserve_confirm_commits_capacity() {
        let store = store_one_vm();
        let id = store.reserve(0, 0, rv(2.0, 8.0, 90.0)).unwrap();
        assert_eq!(store.outstanding(), 1);
        store.confirm(id).unwrap();
        assert_eq!(store.outstanding(), 0);
        assert_eq!(store.free(0).unwrap(), rv(2.0, 8.0, 90.0));
        let c = store.counters();
        assert_eq!(
            (c.reservations, c.commits, c.conflicts, c.aborts),
            (1, 1, 0, 0)
        );
    }

    #[test]
    fn reserve_abort_releases_hold() {
        let store = store_one_vm();
        let id = store.reserve(0, 0, rv(4.0, 16.0, 180.0)).unwrap();
        store.abort(id).unwrap();
        assert_eq!(store.free(0).unwrap(), rv(4.0, 16.0, 180.0));
        let c = store.counters();
        assert_eq!((c.reservations, c.commits, c.aborts), (1, 0, 1));
    }

    #[test]
    fn open_holds_block_conflicting_reservations() {
        let store = store_one_vm();
        let _held = store.reserve(0, 0, rv(3.0, 1.0, 1.0)).unwrap();
        // A second reservation exceeding the remaining CPU must conflict
        // even though nothing is durably committed yet.
        assert_eq!(
            store.reserve(1, 0, rv(2.0, 1.0, 1.0)),
            Err(ReserveError::Conflict)
        );
        assert_eq!(store.counters().conflicts, 1);
        assert!(store.holds_invariants(1e-9));
    }

    #[test]
    fn double_confirm_and_unknown_ids_are_rejected() {
        let store = store_one_vm();
        let id = store.reserve(0, 0, rv(1.0, 1.0, 1.0)).unwrap();
        store.confirm(id).unwrap();
        assert_eq!(store.confirm(id), Err(TxnError::UnknownReservation));
        assert_eq!(store.abort(id), Err(TxnError::UnknownReservation));
        assert_eq!(
            store.reserve(0, 9, rv(1.0, 1.0, 1.0)),
            Err(ReserveError::UnknownVm)
        );
    }

    #[test]
    fn begin_slot_rebases_and_aborts_stale_holds() {
        let store = store_one_vm();
        let _stale = store.reserve(0, 0, rv(1.0, 1.0, 1.0)).unwrap();
        store.begin_slot(&[rv(1.0, 4.0, 45.0)]);
        assert_eq!(store.outstanding(), 0);
        assert_eq!(store.counters().aborts, 1);
        assert_eq!(store.free(0).unwrap(), rv(3.0, 12.0, 135.0));
    }

    #[test]
    fn adjust_applies_engine_arithmetic() {
        let store = store_one_vm();
        let id = store.reserve(0, 0, rv(2.0, 2.0, 2.0)).unwrap();
        store.confirm(id).unwrap();
        // Shrink 2 -> 1 CPU.
        assert!(store.adjust(0, rv(2.0, 2.0, 2.0), rv(1.0, 2.0, 2.0)));
        assert_eq!(store.free(0).unwrap(), rv(3.0, 14.0, 178.0));
        // Growing past capacity is refused and counted.
        assert!(!store.adjust(0, rv(1.0, 2.0, 2.0), rv(9.0, 2.0, 2.0)));
        assert_eq!(store.counters().conflicts, 1);
        assert!(store.holds_invariants(1e-9));
    }

    #[test]
    fn begin_slot_full_rebases_capacities() {
        let store = store_one_vm();
        // The VM crashed: zero capacity, nothing committed.
        store.begin_slot_full(&[ResourceVector::ZERO], &[ResourceVector::ZERO]);
        assert_eq!(
            store.reserve(0, 0, rv(1.0, 1.0, 1.0)),
            Err(ReserveError::Conflict)
        );
        // Recovery restores nominal capacity.
        store.begin_slot_full(&[rv(4.0, 16.0, 180.0)], &[ResourceVector::ZERO]);
        assert!(store.reserve(0, 0, rv(1.0, 1.0, 1.0)).is_ok());
        assert!(store.holds_invariants(1e-9));
    }

    #[test]
    fn set_capacity_crash_wipes_commitments_and_aborts_holds() {
        let store = store_one_vm();
        let committed = store.reserve(0, 0, rv(2.0, 2.0, 2.0)).unwrap();
        store.confirm(committed).unwrap();
        let open = store.reserve(0, 0, rv(1.0, 1.0, 1.0)).unwrap();
        // Crash: zero capacity can no longer cover the ledger.
        assert!(store.set_capacity(0, ResourceVector::ZERO));
        assert!(store.holds_invariants(1e-9));
        assert_eq!(store.outstanding(), 0, "open hold died with the VM");
        assert_eq!(store.confirm(open), Err(TxnError::UnknownReservation));
        // Recovery on an emptied ledger changes nothing but capacity.
        assert!(store.set_capacity(0, rv(4.0, 16.0, 180.0)));
        assert_eq!(store.free(0).unwrap(), rv(4.0, 16.0, 180.0));
        assert!(!store.set_capacity(7, ResourceVector::ZERO), "unknown VM");
    }

    #[test]
    fn racing_reservations_never_overcommit() {
        use std::sync::Arc;
        // 8 threads fight for one VM that fits exactly 4 unit reservations;
        // every interleaving must commit at most 4.
        let store = Arc::new(PlacementStore::new(vec![rv(4.0, 4.0, 4.0)]));
        std::thread::scope(|s| {
            for shard in 0..8 {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    if let Ok(id) = store.reserve(shard, 0, rv(1.0, 1.0, 1.0)) {
                        store.confirm(id).unwrap();
                    }
                });
            }
        });
        let c = store.counters();
        assert_eq!(c.commits, 4, "{c:?}");
        assert_eq!(c.conflicts, 4, "{c:?}");
        assert!(store.holds_invariants(1e-9));
        assert_eq!(store.free(0).unwrap(), rv(0.0, 0.0, 0.0));
    }
}
