//! The striped two-phase-commit placement store.
//!
//! Scheduler shards race to place jobs onto a shared VM fleet. The store is
//! the single arbiter of capacity: a shard first **reserves** the resources
//! a placement needs (phase 1 — the store admits the reservation only if
//! committed + reserved + amount still fits the VM), then either
//! **confirms** it (phase 2 — the hold becomes a durable commitment) or
//! **aborts** it (the hold is released). Because admission is checked under
//! a lock against the sum of durable commitments *and* outstanding holds,
//! no interleaving of racing shards can ever over-commit a VM — the
//! invariant the property tests drive with real thread interleavings.
//!
//! ## Striping
//!
//! Commitment state is partitioned into `S` **stripes** behind independent
//! locks, keyed by VM id (`stripe = vm % S`, so consecutive VM ids — which
//! best-fit tends to walk — spread across locks). Single-VM operations
//! (reserve/confirm/abort/adjust/`set_capacity`) touch exactly one stripe,
//! so rounds over disjoint stripes commit fully in parallel. Operations
//! spanning stripes (`begin_slot`, [`PlacementStore::best_fit`], batch
//! rounds, counter/invariant snapshots) acquire stripe locks in **canonical
//! ascending stripe order**, one at a time, which keeps the store
//! deadlock-free by construction. Reservation ids encode their stripe
//! (`id = local_seq * S + stripe`), so phase 2 routes to the owning stripe
//! without any shared map.
//!
//! ## Optimistic fast path
//!
//! Every ledger carries a per-VM **epoch** (bumped on every mutation) and a
//! per-slot **writer mark** (which shard, if any, has touched the VM since
//! [`PlacementStore::begin_slot`]). [`PlacementStore::try_fast_commit`]
//! uses them to validate-and-commit an *uncontended* claim — no foreign
//! writer this slot, capacity still fits — with a **single stripe
//! acquisition**, fusing both 2PC phases. On a foreign writer mark it
//! refuses ([`FastPathMiss::Contended`], counted as an epoch conflict) and
//! the caller falls back to full ordered 2PC (reserve → best-fit retry →
//! confirm). The fast path is an optimization, never a correctness
//! shortcut: admission is still checked under the stripe lock, so a missed
//! contention mark can only cost a fallback, never an overcommit. Crash
//! rebase ([`PlacementStore::set_capacity`], `begin_slot_full`) clears the
//! writer marks it invalidates, so a post-crash fast commit revalidates
//! against the wiped ledger like any other claim.
//!
//! ## Batched rounds
//!
//! [`PlacementStore::reserve_batch`] / [`PlacementStore::confirm_batch`] /
//! [`PlacementStore::fast_commit_batch`] submit a whole per-slot claim set
//! in one round: requests are grouped by stripe and each stripe lock is
//! acquired **once per round** instead of once per claim, amortizing lock
//! traffic. Within a stripe, requests apply in submission order; across
//! stripes they are independent (admission on one stripe never reads
//! another), so a batch round is observationally identical to issuing the
//! same calls one by one — the property tests pin that equivalence. Large
//! fast-commit rounds additionally run stripes on scoped threads (stripes
//! are disjoint, so the parallel round stays deterministic).
//!
//! The store tracks capacity only; job identity, retry policy, and commit
//! ordering belong to the coordinator
//! ([`ShardedProvisioner`](crate::ShardedProvisioner)). Allocation
//! *adjustments* to running jobs go through [`PlacementStore::adjust`],
//! which applies the engine's own rebase arithmetic so a store-approved
//! adjustment is engine-valid by construction.

use std::collections::HashMap;

use corp_core::VolumeIndex;
use corp_sim::ResourceVector;
use parking_lot::Mutex;

/// Default stripe count for [`PlacementStore::new`] (clamped to the fleet
/// size). Sixteen stripes keep lock collision probability low for the 8-16
/// shard configurations the coordinator runs while costing nothing at one
/// shard.
pub const DEFAULT_STRIPES: usize = 16;

/// Fast-commit batches at or above this size fan stripes out to scoped
/// threads (when the host has more than one core); below it the
/// per-stripe work cannot amortize a thread handoff.
pub const PARALLEL_BATCH_CUTOFF: usize = 64;

/// Handle to an open (reserved but not yet confirmed/aborted) reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReservationId(u64);

/// Why a reservation was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReserveError {
    /// Admitting the reservation would over-commit the VM.
    Conflict,
    /// The VM id does not exist.
    UnknownVm,
}

/// Why a confirm/abort failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnError {
    /// The reservation id is not open (already confirmed, aborted, or never
    /// issued).
    UnknownReservation,
}

/// Why an optimistic fast commit did not commit. Every miss is recoverable
/// by falling back to full 2PC (`reserve` → `confirm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastPathMiss {
    /// Another shard wrote this VM since the slot began: the epoch check
    /// demands full ordered 2PC.
    Contended,
    /// The claim no longer fits the VM's headroom.
    Conflict,
    /// The VM id does not exist.
    UnknownVm,
}

/// Monotone counters over the store's whole lifetime (slots accumulate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Reservations admitted (phase 1 successes). Fast commits count here
    /// too (a fused reserve+confirm), so `commits + aborts ==
    /// reservations` holds across both paths.
    pub reservations: u64,
    /// Reservations confirmed (phase 2 commits), including fast commits.
    pub commits: u64,
    /// Reservation attempts refused (would-be overcommits), including
    /// denied growing adjustments.
    pub conflicts: u64,
    /// Reservations rolled back.
    pub aborts: u64,
    /// Claims committed via the single-acquisition optimistic fast path.
    pub fast_commits: u64,
    /// Fast-path attempts refused by the per-VM epoch/writer check
    /// (another shard wrote the VM this slot), forcing full 2PC.
    pub epoch_conflicts: u64,
}

impl StoreCounters {
    fn add(&mut self, other: &StoreCounters) {
        self.reservations += other.reservations;
        self.commits += other.commits;
        self.conflicts += other.conflicts;
        self.aborts += other.aborts;
        self.fast_commits += other.fast_commits;
        self.epoch_conflicts += other.epoch_conflicts;
    }
}

/// Which shard(s) have mutated a VM's ledger since the slot began — the
/// evidence the optimistic fast path keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotWriter {
    /// Untouched this slot: any shard may fast-commit.
    Idle,
    /// Exactly one shard wrote; that shard may still fast-commit (its own
    /// writes are ordered by the arbitration sequence).
    One(usize),
    /// Two or more distinct shards wrote: every fast commit defers to full
    /// 2PC for the rest of the slot.
    Contended,
}

impl SlotWriter {
    fn note(&mut self, shard: usize) {
        *self = match *self {
            SlotWriter::Idle => SlotWriter::One(shard),
            SlotWriter::One(s) if s == shard => SlotWriter::One(s),
            _ => SlotWriter::Contended,
        };
    }

    fn is_foreign_to(&self, shard: usize) -> bool {
        match *self {
            SlotWriter::Idle => false,
            SlotWriter::One(s) => s != shard,
            SlotWriter::Contended => true,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Reservation {
    /// Local (within-stripe) VM index.
    local_vm: usize,
    amount: ResourceVector,
    /// Shard that opened the reservation (diagnostics).
    #[allow(dead_code)]
    shard: usize,
}

struct VmLedger {
    capacity: ResourceVector,
    /// Durable commitments (confirmed allocations), mirroring the engine's
    /// per-VM committed vector.
    committed: ResourceVector,
    /// Sum of open reservations.
    reserved: ResourceVector,
    /// Monotone mutation counter: bumped on every change to capacity,
    /// committed, or reserved. Never reset.
    epoch: u64,
    /// Writer mark since the last slot rebase (or crash rebase).
    writer: SlotWriter,
}

impl VmLedger {
    fn headroom(&self) -> ResourceVector {
        self.capacity
            .saturating_sub(&(self.committed + self.reserved))
    }

    fn touch(&mut self, shard: usize) {
        self.epoch += 1;
        self.writer.note(shard);
    }
}

/// One lock's worth of the fleet: every VM with `id % stripe_count ==
/// stripe_index`, at local index `id / stripe_count`.
struct Stripe {
    vms: Vec<VmLedger>,
    /// Open reservations keyed by the stripe-local sequence number (the
    /// public id is `seq * stripe_count + stripe_index`).
    open: HashMap<u64, Reservation>,
    next_seq: u64,
    counters: StoreCounters,
    /// Lazily built Eq. 22 headroom index over this stripe's VMs (local
    /// indices): the reference capacity it was built against plus a sorted
    /// volume index. Whole-fleet rebases drop it (rebuilt on the next
    /// [`PlacementStore::best_fit`]); single-VM mutations reposition just
    /// that VM's entry in O(log V).
    index: Option<(ResourceVector, VolumeIndex)>,
}

impl Stripe {
    /// Repositions `local_vm`'s index entry after any mutation that changed
    /// its headroom (reserve/confirm/abort/adjust/set_capacity).
    fn touch_index(&mut self, local_vm: usize) {
        if let Some((reference, index)) = self.index.as_mut() {
            index.update(local_vm, &self.vms[local_vm].headroom(), reference);
        }
    }
}

/// Thread-safe capacity arbiter for a VM fleet (see module docs).
pub struct PlacementStore {
    stripes: Vec<Mutex<Stripe>>,
    /// `stripes.len()`, kept outside the locks for id routing.
    stripe_count: usize,
    /// Total fleet size, immutable after construction.
    num_vms: usize,
}

impl PlacementStore {
    /// Builds a store over VMs with the given capacities, all uncommitted,
    /// with [`DEFAULT_STRIPES`] stripes (clamped to the fleet size).
    pub fn new(capacities: Vec<ResourceVector>) -> Self {
        let stripes = DEFAULT_STRIPES.min(capacities.len()).max(1);
        Self::with_stripes(capacities, stripes)
    }

    /// [`new`](Self::new) with an explicit stripe count (clamped to
    /// `1..=max(1, num_vms)`). One stripe reproduces the single-lock store
    /// exactly; the property tests pin that equivalence for every count.
    pub fn with_stripes(capacities: Vec<ResourceVector>, stripes: usize) -> Self {
        let num_vms = capacities.len();
        let stripe_count = stripes.clamp(1, num_vms.max(1));
        let mut per_stripe: Vec<Vec<VmLedger>> = (0..stripe_count).map(|_| Vec::new()).collect();
        for (vm, capacity) in capacities.into_iter().enumerate() {
            per_stripe[vm % stripe_count].push(VmLedger {
                capacity,
                committed: ResourceVector::ZERO,
                reserved: ResourceVector::ZERO,
                epoch: 0,
                writer: SlotWriter::Idle,
            });
        }
        PlacementStore {
            stripes: per_stripe
                .into_iter()
                .map(|vms| {
                    Mutex::new(Stripe {
                        vms,
                        open: HashMap::new(),
                        next_seq: 0,
                        counters: StoreCounters::default(),
                        index: None,
                    })
                })
                .collect(),
            stripe_count,
            num_vms,
        }
    }

    /// Number of stripes (independent locks) the fleet is partitioned into.
    pub fn stripe_count(&self) -> usize {
        self.stripe_count
    }

    #[inline]
    fn stripe_of(&self, vm: usize) -> usize {
        vm % self.stripe_count
    }

    #[inline]
    fn local_of(&self, vm: usize) -> usize {
        vm / self.stripe_count
    }

    #[inline]
    fn global_of(&self, stripe: usize, local: usize) -> usize {
        local * self.stripe_count + stripe
    }

    /// Re-bases the durable commitments from an authoritative snapshot (the
    /// engine's per-VM committed vectors at the start of a slot) and drops
    /// any reservation left open from the previous slot (counted as
    /// aborts). Per-slot writer marks reset — the new slot starts
    /// uncontended everywhere. Counters persist across slots.
    ///
    /// # Panics
    ///
    /// If `committed` has a different length than the fleet.
    pub fn begin_slot(&self, committed: &[ResourceVector]) {
        self.rebase(None, committed);
    }

    /// [`begin_slot`](Self::begin_slot) that also re-bases per-VM
    /// capacities — required under fault injection, where a crashed VM's
    /// view capacity drops to zero and rejoins at nominal on recovery.
    /// With unchanged capacities this is exactly `begin_slot`.
    ///
    /// # Panics
    ///
    /// If `capacities` or `committed` has a different length than the
    /// fleet.
    pub fn begin_slot_full(&self, capacities: &[ResourceVector], committed: &[ResourceVector]) {
        assert_eq!(self.num_vms, capacities.len(), "fleet size changed mid-run");
        self.rebase(Some(capacities), committed);
    }

    /// Stripe-ordered whole-fleet rebase (one lock acquisition per stripe).
    fn rebase(&self, capacities: Option<&[ResourceVector]>, committed: &[ResourceVector]) {
        assert_eq!(self.num_vms, committed.len(), "fleet size changed mid-run");
        for (s, stripe) in self.stripes.iter().enumerate() {
            let mut stripe = stripe.lock();
            stripe.counters.aborts += stripe.open.len() as u64;
            stripe.open.clear();
            for local in 0..stripe.vms.len() {
                let global = self.global_of(s, local);
                let ledger = &mut stripe.vms[local];
                if let Some(caps) = capacities {
                    ledger.capacity = caps[global];
                }
                ledger.committed = committed[global];
                ledger.reserved = ResourceVector::ZERO;
                ledger.epoch += 1;
                ledger.writer = SlotWriter::Idle;
            }
            // Every headroom changed at once; per-entry repositioning would
            // be wasted work, so drop the index and rebuild lazily.
            stripe.index = None;
        }
    }

    /// Sets one VM's capacity mid-slot — the crash/recovery primitive. If
    /// the new capacity no longer covers the VM's commitments and open
    /// holds (a crash), the durable commitments are wiped (they died with
    /// the VM) and every open hold on it is aborted, so the no-overcommit
    /// invariant holds by construction. The VM's writer mark resets either
    /// way: whatever a shard knew about this VM predates the rebase, so a
    /// later fast commit must revalidate rather than trust a stale mark.
    /// Returns `false` for an unknown VM.
    pub fn set_capacity(&self, vm: usize, capacity: ResourceVector) -> bool {
        if vm >= self.num_vms {
            return false;
        }
        let local = self.local_of(vm);
        let mut stripe = self.stripes[self.stripe_of(vm)].lock();
        stripe.vms[local].capacity = capacity;
        stripe.vms[local].epoch += 1;
        stripe.vms[local].writer = SlotWriter::Idle;
        let ledger = &stripe.vms[local];
        if (ledger.committed + ledger.reserved).fits_within(&capacity) {
            stripe.touch_index(local);
            return true;
        }
        stripe.vms[local].committed = ResourceVector::ZERO;
        stripe.vms[local].reserved = ResourceVector::ZERO;
        let stale: Vec<u64> = stripe
            .open
            .iter()
            .filter(|(_, r)| r.local_vm == local)
            .map(|(&id, _)| id)
            .collect();
        stripe.counters.aborts += stale.len() as u64;
        for id in stale {
            stripe.open.remove(&id);
        }
        stripe.touch_index(local);
        true
    }

    /// Phase 1: holds `amount` on `vm` for `shard`. Admitted only if the
    /// VM's durable commitments plus all open holds still leave room.
    pub fn reserve(
        &self,
        shard: usize,
        vm: usize,
        amount: ResourceVector,
    ) -> Result<ReservationId, ReserveError> {
        if vm >= self.num_vms {
            return Err(ReserveError::UnknownVm);
        }
        let s = self.stripe_of(vm);
        let mut stripe = self.stripes[s].lock();
        self.reserve_locked(&mut stripe, s, shard, vm, amount)
    }

    /// [`reserve`](Self::reserve) under an already-held stripe lock — the
    /// shared body of the single and batched paths.
    fn reserve_locked(
        &self,
        stripe: &mut Stripe,
        stripe_idx: usize,
        shard: usize,
        vm: usize,
        amount: ResourceVector,
    ) -> Result<ReservationId, ReserveError> {
        let amount = amount.clamp_nonnegative();
        let local = self.local_of(vm);
        if !amount.fits_within(&stripe.vms[local].headroom()) {
            stripe.counters.conflicts += 1;
            return Err(ReserveError::Conflict);
        }
        let seq = stripe.next_seq;
        stripe.next_seq += 1;
        let ledger = &mut stripe.vms[local];
        ledger.reserved += amount;
        ledger.touch(shard);
        stripe.open.insert(
            seq,
            Reservation {
                local_vm: local,
                amount,
                shard,
            },
        );
        stripe.counters.reservations += 1;
        stripe.touch_index(local);
        Ok(ReservationId(
            seq * self.stripe_count as u64 + stripe_idx as u64,
        ))
    }

    /// Phase 2 commit: the hold becomes a durable commitment.
    pub fn confirm(&self, id: ReservationId) -> Result<(), TxnError> {
        let stripe_idx = (id.0 % self.stripe_count as u64) as usize;
        let mut stripe = self.stripes[stripe_idx].lock();
        Self::confirm_locked(&mut stripe, id.0 / self.stripe_count as u64)
    }

    fn confirm_locked(stripe: &mut Stripe, seq: u64) -> Result<(), TxnError> {
        let Some(r) = stripe.open.remove(&seq) else {
            return Err(TxnError::UnknownReservation);
        };
        let ledger = &mut stripe.vms[r.local_vm];
        ledger.reserved = (ledger.reserved - r.amount).clamp_nonnegative();
        ledger.committed += r.amount;
        ledger.epoch += 1;
        stripe.counters.commits += 1;
        stripe.touch_index(r.local_vm);
        Ok(())
    }

    /// Phase 2 rollback: the hold is released.
    pub fn abort(&self, id: ReservationId) -> Result<(), TxnError> {
        let stripe_idx = (id.0 % self.stripe_count as u64) as usize;
        let mut stripe = self.stripes[stripe_idx].lock();
        let seq = id.0 / self.stripe_count as u64;
        let Some(r) = stripe.open.remove(&seq) else {
            return Err(TxnError::UnknownReservation);
        };
        let ledger = &mut stripe.vms[r.local_vm];
        ledger.reserved = (ledger.reserved - r.amount).clamp_nonnegative();
        ledger.epoch += 1;
        stripe.counters.aborts += 1;
        stripe.touch_index(r.local_vm);
        Ok(())
    }

    /// Optimistic single-acquisition claim: if no *other* shard has written
    /// `vm` since the slot began and `amount` still fits its headroom, both
    /// 2PC phases are fused into one durable commit under one stripe lock.
    /// Any miss leaves the store untouched and reports why, so the caller
    /// can fall back to full ordered 2PC ([`reserve`](Self::reserve) →
    /// best-fit retry → [`confirm`](Self::confirm)):
    ///
    /// * [`FastPathMiss::Contended`] — foreign writer mark (counted as an
    ///   epoch conflict);
    /// * [`FastPathMiss::Conflict`] — the claim no longer fits (not
    ///   counted: the fallback's own reserve will count the refusal);
    /// * [`FastPathMiss::UnknownVm`] — no such VM.
    pub fn try_fast_commit(
        &self,
        shard: usize,
        vm: usize,
        amount: ResourceVector,
    ) -> Result<(), FastPathMiss> {
        if vm >= self.num_vms {
            return Err(FastPathMiss::UnknownVm);
        }
        let mut stripe = self.stripes[self.stripe_of(vm)].lock();
        self.fast_commit_locked(&mut stripe, shard, vm, amount)
    }

    fn fast_commit_locked(
        &self,
        stripe: &mut Stripe,
        shard: usize,
        vm: usize,
        amount: ResourceVector,
    ) -> Result<(), FastPathMiss> {
        let local = self.local_of(vm);
        if stripe.vms[local].writer.is_foreign_to(shard) {
            stripe.counters.epoch_conflicts += 1;
            return Err(FastPathMiss::Contended);
        }
        let amount = amount.clamp_nonnegative();
        if !amount.fits_within(&stripe.vms[local].headroom()) {
            return Err(FastPathMiss::Conflict);
        }
        let ledger = &mut stripe.vms[local];
        ledger.committed += amount;
        ledger.touch(shard);
        stripe.counters.reservations += 1;
        stripe.counters.commits += 1;
        stripe.counters.fast_commits += 1;
        stripe.touch_index(local);
        Ok(())
    }

    /// One batched phase-1 round: every request grouped by stripe, each
    /// stripe lock acquired once (in canonical ascending order), requests
    /// applied in submission order within a stripe. Because admission on
    /// one stripe never reads another, the outcomes are exactly those of
    /// issuing the same [`reserve`](Self::reserve) calls one by one —
    /// pinned by the property tests — while a shard's whole per-slot
    /// reserve set costs `O(stripes)` lock acquisitions instead of
    /// `O(requests)`.
    pub fn reserve_batch(
        &self,
        shard: usize,
        requests: &[(usize, ResourceVector)],
    ) -> Vec<Result<ReservationId, ReserveError>> {
        let mut results = vec![Err(ReserveError::UnknownVm); requests.len()];
        let mut by_stripe: Vec<Vec<usize>> = vec![Vec::new(); self.stripe_count];
        for (i, &(vm, _)) in requests.iter().enumerate() {
            if vm < self.num_vms {
                by_stripe[self.stripe_of(vm)].push(i);
            }
        }
        for (s, group) in by_stripe.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut stripe = self.stripes[s].lock();
            for &i in group {
                let (vm, amount) = requests[i];
                results[i] = self.reserve_locked(&mut stripe, s, shard, vm, amount);
            }
        }
        results
    }

    /// One batched phase-2 round over `ids` (commit side of
    /// [`reserve_batch`](Self::reserve_batch)): grouped by owning stripe,
    /// one lock acquisition per stripe in canonical order.
    pub fn confirm_batch(&self, ids: &[ReservationId]) -> Vec<Result<(), TxnError>> {
        let mut results = vec![Err(TxnError::UnknownReservation); ids.len()];
        let mut by_stripe: Vec<Vec<usize>> = vec![Vec::new(); self.stripe_count];
        for (i, id) in ids.iter().enumerate() {
            by_stripe[(id.0 % self.stripe_count as u64) as usize].push(i);
        }
        for (s, group) in by_stripe.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut stripe = self.stripes[s].lock();
            for &i in group {
                results[i] = Self::confirm_locked(&mut stripe, ids[i].0 / self.stripe_count as u64);
            }
        }
        results
    }

    /// One batched optimistic round: `(shard, vm, amount)` claims grouped
    /// by stripe, each stripe lock acquired once, claims applied in
    /// submission order within a stripe. Stripes are mutually independent,
    /// so large rounds fan the per-stripe groups out to scoped threads
    /// (above [`PARALLEL_BATCH_CUTOFF`], multi-core hosts only) with
    /// results identical to the sequential canonical-order round.
    pub fn fast_commit_batch(
        &self,
        claims: &[(usize, usize, ResourceVector)],
    ) -> Vec<Result<(), FastPathMiss>> {
        let mut results = vec![Err(FastPathMiss::UnknownVm); claims.len()];
        let mut by_stripe: Vec<Vec<usize>> = vec![Vec::new(); self.stripe_count];
        for (i, &(_, vm, _)) in claims.iter().enumerate() {
            if vm < self.num_vms {
                by_stripe[self.stripe_of(vm)].push(i);
            }
        }
        let run_stripe = |s: usize, group: &[usize], out: &mut [Result<(), FastPathMiss>]| {
            let mut stripe = self.stripes[s].lock();
            for (slot, &i) in group.iter().enumerate() {
                let (shard, vm, amount) = claims[i];
                out[slot] = self.fast_commit_locked(&mut stripe, shard, vm, amount);
            }
        };
        let parallel = claims.len() >= PARALLEL_BATCH_CUTOFF
            && by_stripe.iter().filter(|g| !g.is_empty()).count() > 1
            && std::thread::available_parallelism().map_or(1, usize::from) > 1;
        if parallel {
            // Scatter per-stripe result slices to scoped threads; stripes
            // never alias, so the round is schedule-independent.
            let mut per_stripe_out: Vec<Vec<Result<(), FastPathMiss>>> = by_stripe
                .iter()
                .map(|g| vec![Err(FastPathMiss::UnknownVm); g.len()])
                .collect();
            std::thread::scope(|scope| {
                let run_stripe = &run_stripe;
                for ((s, group), out) in by_stripe.iter().enumerate().zip(&mut per_stripe_out) {
                    if !group.is_empty() {
                        scope.spawn(move || run_stripe(s, group, out));
                    }
                }
            });
            for (group, out) in by_stripe.iter().zip(per_stripe_out) {
                for (&i, r) in group.iter().zip(out) {
                    results[i] = r;
                }
            }
        } else {
            let mut scratch = Vec::new();
            for (s, group) in by_stripe.iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                scratch.clear();
                scratch.resize(group.len(), Err(FastPathMiss::UnknownVm));
                run_stripe(s, group, &mut scratch);
                for (&i, &r) in group.iter().zip(scratch.iter()) {
                    results[i] = r;
                }
            }
        }
        results
    }

    /// Re-bases a running job's allocation on `vm` from `old` to `new`,
    /// using the engine's own validation arithmetic (`committed - old +
    /// new`, clamped, must fit capacity net of open holds). Returns whether
    /// the adjustment was applied; a refusal counts as a conflict.
    ///
    /// Adjustments are coordinator-ordered *before* the placement rounds,
    /// so they bump the VM's epoch but leave its writer mark alone — an
    /// adjusted VM is still fast-committable (admission under the stripe
    /// lock keeps that safe regardless).
    pub fn adjust(&self, vm: usize, old: ResourceVector, new: ResourceVector) -> bool {
        if vm >= self.num_vms {
            let mut stripe = self.stripes[self.stripe_of(vm)].lock();
            stripe.counters.conflicts += 1;
            return false;
        }
        let local = self.local_of(vm);
        let mut stripe = self.stripes[self.stripe_of(vm)].lock();
        if !new.is_nonnegative() {
            stripe.counters.conflicts += 1;
            return false;
        }
        let ledger = &stripe.vms[local];
        let candidate = (ledger.committed - old + new).clamp_nonnegative();
        if (candidate + ledger.reserved).fits_within(&ledger.capacity) {
            stripe.vms[local].committed = candidate;
            stripe.vms[local].epoch += 1;
            stripe.touch_index(local);
            true
        } else {
            stripe.counters.conflicts += 1;
            false
        }
    }

    /// Eq. 22 best-fit over the store's current headrooms: the VM fitting
    /// `demand` with the smallest unused volume relative to `reference`,
    /// ties toward the lower VM id — exactly the choice a linear scan over
    /// [`free_all`](Self::free_all) would make. Each stripe serves its
    /// candidate from an incrementally maintained sorted index (rebuilt
    /// lazily after whole-fleet rebases or when `reference` changes), and
    /// the per-stripe winners are compared by `(volume, vm id)` — within a
    /// stripe, local order is global order, so the lexicographic minimum
    /// across stripes is the fleet-wide best fit. Stripe locks are taken
    /// one at a time in canonical order.
    pub fn best_fit(&self, demand: &ResourceVector, reference: &ResourceVector) -> Option<usize> {
        let floor = demand.volume(reference).to_bits();
        let mut best: Option<(f64, usize)> = None;
        for (s, stripe) in self.stripes.iter().enumerate() {
            let mut stripe = stripe.lock();
            let stale = match &stripe.index {
                Some((built_against, _)) => built_against != reference,
                None => true,
            };
            if stale {
                let headrooms: Vec<ResourceVector> =
                    stripe.vms.iter().map(VmLedger::headroom).collect();
                stripe.index = Some((*reference, VolumeIndex::new(&headrooms, reference)));
            }
            let Stripe { vms, index, .. } = &*stripe;
            let (_, idx) = index.as_ref().expect("index built above");
            // A fitting headroom dominates the demand componentwise, so its
            // volume is at least the demand's: seek straight to that floor.
            let candidate = idx.first_fit_from(floor, |i| demand.fits_within(&vms[i].headroom()));
            if let Some(local) = candidate {
                let volume = vms[local].headroom().volume(reference);
                let global = self.global_of(s, local);
                let better = match best {
                    None => true,
                    Some((bv, bg)) => volume < bv || (volume == bv && global < bg),
                };
                if better {
                    best = Some((volume, global));
                }
            }
        }
        best.map(|(_, g)| g)
    }

    /// Capacity net of durable commitments and open holds on one VM.
    pub fn free(&self, vm: usize) -> Option<ResourceVector> {
        if vm >= self.num_vms {
            return None;
        }
        let stripe = self.stripes[self.stripe_of(vm)].lock();
        Some(stripe.vms[self.local_of(vm)].headroom())
    }

    /// [`free`](Self::free) for the whole fleet, VM-id ordered.
    pub fn free_all(&self) -> Vec<ResourceVector> {
        let mut all = vec![ResourceVector::ZERO; self.num_vms];
        for (s, stripe) in self.stripes.iter().enumerate() {
            let stripe = stripe.lock();
            for (local, ledger) in stripe.vms.iter().enumerate() {
                all[self.global_of(s, local)] = ledger.headroom();
            }
        }
        all
    }

    /// The per-VM mutation epoch (monotone over the store's lifetime), or
    /// `None` for an unknown VM. Exposed for tests and benches asserting
    /// fast-path behavior.
    pub fn vm_epoch(&self, vm: usize) -> Option<u64> {
        if vm >= self.num_vms {
            return None;
        }
        let stripe = self.stripes[self.stripe_of(vm)].lock();
        Some(stripe.vms[self.local_of(vm)].epoch)
    }

    /// Number of VMs under arbitration.
    pub fn num_vms(&self) -> usize {
        self.num_vms
    }

    /// Number of open (neither confirmed nor aborted) reservations.
    pub fn outstanding(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().open.len()).sum()
    }

    /// Snapshot of the lifetime counters (summed across stripes, canonical
    /// stripe order).
    pub fn counters(&self) -> StoreCounters {
        let mut total = StoreCounters::default();
        for stripe in &self.stripes {
            total.add(&stripe.lock().counters);
        }
        total
    }

    /// Checks the no-overcommit invariant on every VM: durable commitments
    /// plus open holds never exceed capacity (within `eps` of float
    /// accumulation slack per resource).
    pub fn holds_invariants(&self, eps: f64) -> bool {
        self.stripes.iter().all(|stripe| {
            stripe.lock().vms.iter().all(|ledger| {
                let total = ledger.committed + ledger.reserved;
                (0..total.as_array().len()).all(|k| total[k] <= ledger.capacity[k] + eps)
                    && ledger.committed.is_nonnegative()
                    && ledger.reserved.is_nonnegative()
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rv(a: f64, b: f64, c: f64) -> ResourceVector {
        ResourceVector::new([a, b, c])
    }

    fn store_one_vm() -> PlacementStore {
        PlacementStore::new(vec![rv(4.0, 16.0, 180.0)])
    }

    #[test]
    fn reserve_confirm_commits_capacity() {
        let store = store_one_vm();
        let id = store.reserve(0, 0, rv(2.0, 8.0, 90.0)).unwrap();
        assert_eq!(store.outstanding(), 1);
        store.confirm(id).unwrap();
        assert_eq!(store.outstanding(), 0);
        assert_eq!(store.free(0).unwrap(), rv(2.0, 8.0, 90.0));
        let c = store.counters();
        assert_eq!(
            (c.reservations, c.commits, c.conflicts, c.aborts),
            (1, 1, 0, 0)
        );
    }

    #[test]
    fn reserve_abort_releases_hold() {
        let store = store_one_vm();
        let id = store.reserve(0, 0, rv(4.0, 16.0, 180.0)).unwrap();
        store.abort(id).unwrap();
        assert_eq!(store.free(0).unwrap(), rv(4.0, 16.0, 180.0));
        let c = store.counters();
        assert_eq!((c.reservations, c.commits, c.aborts), (1, 0, 1));
    }

    #[test]
    fn open_holds_block_conflicting_reservations() {
        let store = store_one_vm();
        let _held = store.reserve(0, 0, rv(3.0, 1.0, 1.0)).unwrap();
        // A second reservation exceeding the remaining CPU must conflict
        // even though nothing is durably committed yet.
        assert_eq!(
            store.reserve(1, 0, rv(2.0, 1.0, 1.0)),
            Err(ReserveError::Conflict)
        );
        assert_eq!(store.counters().conflicts, 1);
        assert!(store.holds_invariants(1e-9));
    }

    #[test]
    fn double_confirm_and_unknown_ids_are_rejected() {
        let store = store_one_vm();
        let id = store.reserve(0, 0, rv(1.0, 1.0, 1.0)).unwrap();
        store.confirm(id).unwrap();
        assert_eq!(store.confirm(id), Err(TxnError::UnknownReservation));
        assert_eq!(store.abort(id), Err(TxnError::UnknownReservation));
        assert_eq!(
            store.reserve(0, 9, rv(1.0, 1.0, 1.0)),
            Err(ReserveError::UnknownVm)
        );
    }

    #[test]
    fn begin_slot_rebases_and_aborts_stale_holds() {
        let store = store_one_vm();
        let _stale = store.reserve(0, 0, rv(1.0, 1.0, 1.0)).unwrap();
        store.begin_slot(&[rv(1.0, 4.0, 45.0)]);
        assert_eq!(store.outstanding(), 0);
        assert_eq!(store.counters().aborts, 1);
        assert_eq!(store.free(0).unwrap(), rv(3.0, 12.0, 135.0));
    }

    #[test]
    fn adjust_applies_engine_arithmetic() {
        let store = store_one_vm();
        let id = store.reserve(0, 0, rv(2.0, 2.0, 2.0)).unwrap();
        store.confirm(id).unwrap();
        // Shrink 2 -> 1 CPU.
        assert!(store.adjust(0, rv(2.0, 2.0, 2.0), rv(1.0, 2.0, 2.0)));
        assert_eq!(store.free(0).unwrap(), rv(3.0, 14.0, 178.0));
        // Growing past capacity is refused and counted.
        assert!(!store.adjust(0, rv(1.0, 2.0, 2.0), rv(9.0, 2.0, 2.0)));
        assert_eq!(store.counters().conflicts, 1);
        assert!(store.holds_invariants(1e-9));
    }

    #[test]
    fn begin_slot_full_rebases_capacities() {
        let store = store_one_vm();
        // The VM crashed: zero capacity, nothing committed.
        store.begin_slot_full(&[ResourceVector::ZERO], &[ResourceVector::ZERO]);
        assert_eq!(
            store.reserve(0, 0, rv(1.0, 1.0, 1.0)),
            Err(ReserveError::Conflict)
        );
        // Recovery restores nominal capacity.
        store.begin_slot_full(&[rv(4.0, 16.0, 180.0)], &[ResourceVector::ZERO]);
        assert!(store.reserve(0, 0, rv(1.0, 1.0, 1.0)).is_ok());
        assert!(store.holds_invariants(1e-9));
    }

    #[test]
    fn set_capacity_crash_wipes_commitments_and_aborts_holds() {
        let store = store_one_vm();
        let committed = store.reserve(0, 0, rv(2.0, 2.0, 2.0)).unwrap();
        store.confirm(committed).unwrap();
        let open = store.reserve(0, 0, rv(1.0, 1.0, 1.0)).unwrap();
        // Crash: zero capacity can no longer cover the ledger.
        assert!(store.set_capacity(0, ResourceVector::ZERO));
        assert!(store.holds_invariants(1e-9));
        assert_eq!(store.outstanding(), 0, "open hold died with the VM");
        assert_eq!(store.confirm(open), Err(TxnError::UnknownReservation));
        // Recovery on an emptied ledger changes nothing but capacity.
        assert!(store.set_capacity(0, rv(4.0, 16.0, 180.0)));
        assert_eq!(store.free(0).unwrap(), rv(4.0, 16.0, 180.0));
        assert!(!store.set_capacity(7, ResourceVector::ZERO), "unknown VM");
    }

    #[test]
    fn racing_reservations_never_overcommit() {
        use std::sync::Arc;
        // 8 threads fight for one VM that fits exactly 4 unit reservations;
        // every interleaving must commit at most 4.
        let store = Arc::new(PlacementStore::new(vec![rv(4.0, 4.0, 4.0)]));
        std::thread::scope(|s| {
            for shard in 0..8 {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    if let Ok(id) = store.reserve(shard, 0, rv(1.0, 1.0, 1.0)) {
                        store.confirm(id).unwrap();
                    }
                });
            }
        });
        let c = store.counters();
        assert_eq!(c.commits, 4, "{c:?}");
        assert_eq!(c.conflicts, 4, "{c:?}");
        assert!(store.holds_invariants(1e-9));
        assert_eq!(store.free(0).unwrap(), rv(0.0, 0.0, 0.0));
    }

    // ---- striping, batching, and fast-path semantics ----

    fn striped_fleet(vms: usize, stripes: usize) -> PlacementStore {
        PlacementStore::with_stripes(vec![rv(4.0, 4.0, 4.0); vms], stripes)
    }

    #[test]
    fn stripe_count_is_clamped_to_the_fleet() {
        assert_eq!(striped_fleet(3, 8).stripe_count(), 3);
        assert_eq!(striped_fleet(32, 4).stripe_count(), 4);
        assert_eq!(
            PlacementStore::with_stripes(Vec::new(), 7).stripe_count(),
            1
        );
        assert_eq!(store_one_vm().stripe_count(), 1);
    }

    #[test]
    fn cross_stripe_operations_route_by_vm_id() {
        let store = striped_fleet(10, 4);
        // VMs 2 and 6 share stripe 2; VM 3 lives on stripe 3.
        let a = store.reserve(0, 2, rv(1.0, 1.0, 1.0)).unwrap();
        let b = store.reserve(1, 6, rv(2.0, 2.0, 2.0)).unwrap();
        let c = store.reserve(2, 3, rv(3.0, 3.0, 3.0)).unwrap();
        assert_eq!(store.outstanding(), 3);
        store.confirm(a).unwrap();
        store.abort(b).unwrap();
        store.confirm(c).unwrap();
        assert_eq!(store.free(2).unwrap(), rv(3.0, 3.0, 3.0));
        assert_eq!(store.free(6).unwrap(), rv(4.0, 4.0, 4.0));
        assert_eq!(store.free(3).unwrap(), rv(1.0, 1.0, 1.0));
        assert!(store.holds_invariants(1e-9));
    }

    #[test]
    fn fast_commit_hits_on_uncontended_vms() {
        let store = striped_fleet(8, 4);
        store.try_fast_commit(0, 5, rv(1.0, 1.0, 1.0)).unwrap();
        // Same shard again: still uncontended from shard 0's perspective.
        store.try_fast_commit(0, 5, rv(1.0, 1.0, 1.0)).unwrap();
        assert_eq!(store.free(5).unwrap(), rv(2.0, 2.0, 2.0));
        let c = store.counters();
        assert_eq!((c.fast_commits, c.commits, c.reservations), (2, 2, 2));
        assert_eq!(c.epoch_conflicts, 0);
        assert!(store.holds_invariants(1e-9));
    }

    #[test]
    fn foreign_writer_forces_fallback_to_full_2pc() {
        let store = striped_fleet(4, 2);
        store.try_fast_commit(0, 1, rv(1.0, 1.0, 1.0)).unwrap();
        assert_eq!(
            store.try_fast_commit(3, 1, rv(1.0, 1.0, 1.0)),
            Err(FastPathMiss::Contended)
        );
        assert_eq!(store.counters().epoch_conflicts, 1);
        // The fallback 2PC path still admits the claim — contention marks
        // are a routing decision, not a capacity one.
        let id = store.reserve(3, 1, rv(1.0, 1.0, 1.0)).unwrap();
        store.confirm(id).unwrap();
        assert_eq!(store.free(1).unwrap(), rv(2.0, 2.0, 2.0));
        // A slot rebase clears writer marks: fast path works again.
        store.begin_slot(&[ResourceVector::ZERO; 4]);
        store.try_fast_commit(3, 1, rv(1.0, 1.0, 1.0)).unwrap();
        assert!(store.holds_invariants(1e-9));
    }

    #[test]
    fn fast_commit_misses_cleanly_on_capacity_and_unknown_vms() {
        let store = striped_fleet(2, 2);
        assert_eq!(
            store.try_fast_commit(0, 0, rv(9.0, 1.0, 1.0)),
            Err(FastPathMiss::Conflict)
        );
        assert_eq!(
            store.try_fast_commit(0, 7, rv(1.0, 1.0, 1.0)),
            Err(FastPathMiss::UnknownVm)
        );
        let c = store.counters();
        assert_eq!((c.fast_commits, c.commits, c.conflicts), (0, 0, 0));
        assert_eq!(store.free(0).unwrap(), rv(4.0, 4.0, 4.0), "miss is a no-op");
    }

    #[test]
    fn crash_rebase_resets_writer_marks_but_fast_path_revalidates() {
        let store = striped_fleet(2, 2);
        store.try_fast_commit(0, 0, rv(3.0, 3.0, 3.0)).unwrap();
        // Crash wipes the ledger and the writer mark...
        assert!(store.set_capacity(0, ResourceVector::ZERO));
        // ...so a foreign shard may try the fast path, but admission still
        // validates against the wiped capacity.
        assert_eq!(
            store.try_fast_commit(1, 0, rv(1.0, 1.0, 1.0)),
            Err(FastPathMiss::Conflict)
        );
        assert!(store.set_capacity(0, rv(4.0, 4.0, 4.0)));
        store.try_fast_commit(1, 0, rv(1.0, 1.0, 1.0)).unwrap();
        assert!(store.holds_invariants(1e-9));
    }

    #[test]
    fn epochs_advance_on_every_mutation() {
        let store = striped_fleet(2, 2);
        let e0 = store.vm_epoch(0).unwrap();
        let id = store.reserve(0, 0, rv(1.0, 1.0, 1.0)).unwrap();
        let e1 = store.vm_epoch(0).unwrap();
        assert!(e1 > e0);
        store.confirm(id).unwrap();
        assert!(store.vm_epoch(0).unwrap() > e1);
        assert_eq!(store.vm_epoch(9), None);
    }

    #[test]
    fn batched_rounds_match_sequential_semantics() {
        let store = striped_fleet(6, 3);
        let unit = rv(1.0, 1.0, 1.0);
        let results = store.reserve_batch(
            0,
            &[
                (0, unit),
                (3, unit),
                (1, rv(9.0, 1.0, 1.0)),
                (9, unit),
                (0, unit),
            ],
        );
        assert!(results[0].is_ok());
        assert!(results[1].is_ok());
        assert_eq!(results[2], Err(ReserveError::Conflict));
        assert_eq!(results[3], Err(ReserveError::UnknownVm));
        assert!(results[4].is_ok(), "same-VM requests apply in order");
        assert_eq!(store.outstanding(), 3);
        let ids: Vec<ReservationId> = results.into_iter().flatten().collect();
        let confirmed = store.confirm_batch(&ids);
        assert!(confirmed.iter().all(Result::is_ok));
        assert_eq!(
            store.confirm_batch(&ids)[0],
            Err(TxnError::UnknownReservation),
            "double confirm rejected batch-wise too"
        );
        assert_eq!(store.free(0).unwrap(), rv(2.0, 2.0, 2.0));
        let c = store.counters();
        assert_eq!((c.reservations, c.commits, c.conflicts), (3, 3, 1));
        assert!(store.holds_invariants(1e-9));
    }

    #[test]
    fn fast_commit_batch_commits_disjoint_stripes_and_reports_misses() {
        let store = striped_fleet(8, 4);
        let unit = rv(1.0, 1.0, 1.0);
        // Mark VM 2 contended for shard 1 first.
        store.try_fast_commit(0, 2, unit).unwrap();
        let results = store.fast_commit_batch(&[
            (1, 0, unit),
            (1, 1, unit),
            (1, 2, unit),              // foreign writer -> Contended
            (1, 3, rv(9.0, 1.0, 1.0)), // does not fit -> Conflict
            (1, 42, unit),             // -> UnknownVm
        ]);
        assert!(results[0].is_ok());
        assert!(results[1].is_ok());
        assert_eq!(results[2], Err(FastPathMiss::Contended));
        assert_eq!(results[3], Err(FastPathMiss::Conflict));
        assert_eq!(results[4], Err(FastPathMiss::UnknownVm));
        let c = store.counters();
        assert_eq!(c.fast_commits, 3);
        assert_eq!(c.epoch_conflicts, 1);
        assert!(store.holds_invariants(1e-9));
    }

    #[test]
    fn racing_fast_commits_never_overcommit() {
        use std::sync::Arc;
        // 8 shards race fast commits across 4 VMs on 2 stripes; whatever
        // interleaving of hits/misses occurs, capacity is never exceeded.
        let store = Arc::new(striped_fleet(4, 2));
        std::thread::scope(|s| {
            for shard in 0..8 {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    for vm in 0..4 {
                        if store.try_fast_commit(shard, vm, rv(1.0, 1.0, 1.0)).is_err() {
                            if let Ok(id) = store.reserve(shard, vm, rv(1.0, 1.0, 1.0)) {
                                store.confirm(id).unwrap();
                            }
                        }
                    }
                });
            }
        });
        assert!(store.holds_invariants(1e-9));
        let c = store.counters();
        assert_eq!(c.commits + c.aborts, c.reservations, "{c:?}");
        assert_eq!(c.commits, 16, "4 VMs x 4 unit claims each: {c:?}");
    }

    #[test]
    fn striped_best_fit_prefers_smallest_volume_then_lowest_id() {
        let reference = rv(4.0, 4.0, 4.0);
        let store = PlacementStore::with_stripes(
            vec![
                rv(4.0, 4.0, 4.0), // vm 0, stripe 0
                rv(2.0, 2.0, 2.0), // vm 1, stripe 1 — tightest fit
                rv(3.0, 3.0, 3.0), // vm 2, stripe 2
                rv(2.0, 2.0, 2.0), // vm 3, stripe 0 — ties with vm 1
            ],
            3,
        );
        let demand = rv(1.0, 1.0, 1.0);
        assert_eq!(
            store.best_fit(&demand, &reference),
            Some(1),
            "volume tie between vm 1 and vm 3 resolves to the lower id"
        );
        // Commit vm 1 full: the tie-partner on another stripe wins next.
        store.try_fast_commit(0, 1, rv(2.0, 2.0, 2.0)).unwrap();
        assert_eq!(store.best_fit(&demand, &reference), Some(3));
    }
}
