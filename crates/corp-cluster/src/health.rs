//! Per-shard health snapshots for external supervisors.
//!
//! The coordinator already recovers from worker failures on its own
//! (restart + inline scheduling, see [`crate::provisioner`]); this module
//! is the *observability* side of that machinery. After every slot the
//! coordinator records what actually happened on each shard — did the
//! worker's plan arrive, did the coordinator fall back inline, or was the
//! shard deliberately isolated — and exposes it through
//! [`ShardedProvisioner::shard_health`](crate::ShardedProvisioner::shard_health).
//!
//! The corp-serve circuit-breaker layer consumes these snapshots between
//! slots: K consecutive [`ShardSlotOutcome::FellBack`] outcomes trip a
//! breaker, which then holds the shard isolated via
//! [`ShardedProvisioner::set_forced_inline`](crate::ShardedProvisioner::set_forced_inline)
//! until a half-open probe succeeds. Keeping the state machine outside
//! this crate keeps the coordinator's own recovery policy unchanged; the
//! breaker is strictly layered on top.

/// What one shard did in the most recent provisioning slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSlotOutcome {
    /// No slot has run yet.
    Idle,
    /// The worker's plan arrived and was arbitrated normally.
    Served,
    /// The coordinator had to schedule the shard inline: dead worker,
    /// dropped request, delayed or missing reply — a *failure* fallback.
    FellBack,
    /// The shard was deliberately isolated (forced inline) by an external
    /// supervisor; nothing was dispatched to its worker.
    Isolated,
}

/// Snapshot of one shard's supervision state after a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// Whether the coordinator believes the worker thread is serving.
    pub alive: bool,
    /// Dead with no way back (no factory, or respawn failed): the shard
    /// schedules inline forever.
    pub failed: bool,
    /// What happened on the most recent slot.
    pub last_outcome: ShardSlotOutcome,
}
