//! Per-shard circuit breakers over the sharded control plane.
//!
//! corp-cluster's supervisor already *recovers* from shard failures —
//! restart the worker, schedule the missed slot inline — but it retries a
//! flapping shard every single slot, paying a dispatch, a timeout wait,
//! and an inline fallback each time. [`BreakerSupervisor`] layers the
//! classic circuit-breaker state machine on top:
//!
//! * **Closed** — normal operation; consecutive failure fallbacks
//!   ([`ShardSlotOutcome::FellBack`]) are counted.
//! * **Open** — after [`BreakerConfig::failure_threshold`] consecutive
//!   fallbacks the shard is isolated via
//!   [`ShardedProvisioner::set_forced_inline`]: the coordinator schedules
//!   its jobs inline *without* dispatching or waiting on the worker, for a
//!   backoff measured in virtual slots (deterministic by construction —
//!   no wall clocks anywhere).
//! * **Half-open** — when the backoff expires the shard gets one probe
//!   slot. Success closes the breaker and resets the backoff; another
//!   fallback reopens it with the backoff doubled (capped at
//!   [`BreakerConfig::max_backoff_slots`]).
//!
//! A shard the coordinator marks permanently `failed` latches Open forever
//! — no point probing a worker that cannot be respawned. Every transition
//! is a [`corp_sim::BreakerTransition`] carried in the control-plane stats
//! of the serve report, alongside open/half-open/close counters.
//!
//! The supervisor is itself a [`Provisioner`], so it drops into either
//! driver (serve daemon or batch simulation) unchanged; everything else —
//! completions, service levels, view periods — forwards to the inner
//! coordinator.

use corp_cluster::{ShardSlotOutcome, ShardedProvisioner};
use corp_sim::{
    BreakerStateName, BreakerTransition, ControlPlaneStats, JobCompletion, JobId, ProvisionPlan,
    Provisioner, SlotContext,
};

/// Breaker thresholds, in deterministic units (slots, not seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failure fallbacks that trip a Closed breaker.
    pub failure_threshold: u32,
    /// Initial Open backoff, in virtual slots.
    pub backoff_slots: u64,
    /// Backoff cap for the exponential reopen schedule.
    pub max_backoff_slots: u64,
}

impl Default for BreakerConfig {
    /// Trip after 3 consecutive fallbacks; back off 4 slots, doubling to
    /// at most 32.
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            backoff_slots: 4,
            max_backoff_slots: 32,
        }
    }
}

/// One shard's breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed { consecutive_failures: u32 },
    Open { until_slot: u64, backoff: u64 },
    HalfOpen { backoff: u64 },
}

impl BreakerState {
    fn name(&self) -> BreakerStateName {
        match self {
            BreakerState::Closed { .. } => BreakerStateName::Closed,
            BreakerState::Open { .. } => BreakerStateName::Open,
            BreakerState::HalfOpen { .. } => BreakerStateName::HalfOpen,
        }
    }
}

/// A [`ShardedProvisioner`] wrapped in per-shard circuit breakers.
pub struct BreakerSupervisor {
    inner: ShardedProvisioner,
    config: BreakerConfig,
    states: Vec<BreakerState>,
    transitions: Vec<BreakerTransition>,
    opens: u64,
    half_opens: u64,
    closes: u64,
}

impl BreakerSupervisor {
    /// Wraps `inner` with breakers in the Closed state.
    pub fn new(inner: ShardedProvisioner, config: BreakerConfig) -> Self {
        let shards = inner.num_shards();
        BreakerSupervisor {
            inner,
            config,
            states: vec![
                BreakerState::Closed {
                    consecutive_failures: 0
                };
                shards
            ],
            transitions: Vec::new(),
            opens: 0,
            half_opens: 0,
            closes: 0,
        }
    }

    /// The wrapped coordinator (for error and recovery inspection).
    pub fn inner(&self) -> &ShardedProvisioner {
        &self.inner
    }

    /// Breaker transitions so far, in slot order.
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }

    /// `(opens, half_opens, closes)` counters so far.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.opens, self.half_opens, self.closes)
    }

    fn transition(&mut self, slot: u64, shard: usize, to: BreakerState) {
        let from = self.states[shard].name();
        let to_name = to.name();
        if from != to_name {
            match to_name {
                BreakerStateName::Open => self.opens += 1,
                BreakerStateName::HalfOpen => self.half_opens += 1,
                BreakerStateName::Closed => self.closes += 1,
            }
            self.transitions.push(BreakerTransition {
                slot,
                shard,
                from,
                to: to_name,
            });
        }
        self.states[shard] = to;
    }

    /// Expires Open backoffs before the slot runs: an expired breaker goes
    /// half-open and its shard gets one probe dispatch.
    fn pre_slot(&mut self, slot: u64) {
        for shard in 0..self.states.len() {
            if let BreakerState::Open {
                until_slot,
                backoff,
            } = self.states[shard]
            {
                if until_slot != u64::MAX && slot >= until_slot {
                    self.inner.set_forced_inline(shard, false);
                    self.transition(slot, shard, BreakerState::HalfOpen { backoff });
                }
            }
        }
    }

    /// Folds the slot's health snapshot into the state machines.
    fn post_slot(&mut self, slot: u64) {
        let health = self.inner.shard_health();
        for h in health {
            let shard = h.shard;
            // A permanently failed worker can never serve a probe: latch
            // Open so the coordinator stops even pretending to dispatch.
            if h.failed {
                if !matches!(self.states[shard], BreakerState::Open { .. }) {
                    self.inner.set_forced_inline(shard, true);
                    self.transition(
                        slot,
                        shard,
                        BreakerState::Open {
                            until_slot: u64::MAX,
                            backoff: self.config.max_backoff_slots.max(1),
                        },
                    );
                }
                continue;
            }
            match (self.states[shard], h.last_outcome) {
                (BreakerState::Closed { .. }, ShardSlotOutcome::Served) => {
                    self.states[shard] = BreakerState::Closed {
                        consecutive_failures: 0,
                    };
                }
                (
                    BreakerState::Closed {
                        consecutive_failures,
                    },
                    ShardSlotOutcome::FellBack,
                ) => {
                    let failures = consecutive_failures + 1;
                    if failures >= self.config.failure_threshold.max(1) {
                        let backoff = self.config.backoff_slots.max(1);
                        self.inner.set_forced_inline(shard, true);
                        self.transition(
                            slot,
                            shard,
                            BreakerState::Open {
                                until_slot: slot + backoff,
                                backoff,
                            },
                        );
                    } else {
                        self.states[shard] = BreakerState::Closed {
                            consecutive_failures: failures,
                        };
                    }
                }
                (BreakerState::HalfOpen { .. }, ShardSlotOutcome::Served) => {
                    self.transition(
                        slot,
                        shard,
                        BreakerState::Closed {
                            consecutive_failures: 0,
                        },
                    );
                }
                (BreakerState::HalfOpen { backoff }, ShardSlotOutcome::FellBack) => {
                    let backoff = (backoff * 2).min(self.config.max_backoff_slots.max(1));
                    self.inner.set_forced_inline(shard, true);
                    self.transition(
                        slot,
                        shard,
                        BreakerState::Open {
                            until_slot: slot + backoff,
                            backoff,
                        },
                    );
                }
                // Open shards report Isolated; Idle means the slot never
                // reached the shard. Neither moves the machine.
                _ => {}
            }
        }
    }
}

impl Provisioner for BreakerSupervisor {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn provision(&mut self, ctx: &SlotContext<'_>) -> ProvisionPlan {
        self.pre_slot(ctx.slot);
        let plan = self.inner.provision(ctx);
        self.post_slot(ctx.slot);
        plan
    }

    fn on_job_completed(&mut self, job: JobId, unused_history: &[Vec<f64>]) {
        self.inner.on_job_completed(job, unused_history);
    }

    fn on_jobs_completed(&mut self, completed: &[JobCompletion]) {
        self.inner.on_jobs_completed(completed);
    }

    fn control_plane_stats(&self) -> Option<ControlPlaneStats> {
        let mut stats = self.inner.control_plane_stats()?;
        stats.breaker_opens = self.opens;
        stats.breaker_half_opens = self.half_opens;
        stats.breaker_closes = self.closes;
        stats.breaker_transitions = self.transitions.clone();
        Some(stats)
    }

    fn set_service_level(&mut self, level: u8) {
        self.inner.set_service_level(level);
    }

    fn full_view_period(&self) -> u64 {
        self.inner.full_view_period()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corp_cluster::ShardConfig;
    use corp_sim::StaticPeakProvisioner;

    // State-machine tests drive `transition`/`pre_slot` directly against a
    // one-shard coordinator with hand-set states; the end-to-end behavior
    // (breakers tripping over a real flapping shard) lives in the
    // corp-bench serve_runtime suite where a full cluster and fault plan
    // exist.

    fn bare(state: BreakerState) -> BreakerSupervisor {
        let inner = ShardedProvisioner::new(
            "test",
            vec![Box::new(StaticPeakProvisioner)],
            ShardConfig::default(),
        );
        let mut s = BreakerSupervisor::new(inner, BreakerConfig::default());
        s.states = vec![state];
        s
    }

    #[test]
    fn open_expires_into_half_open() {
        let mut s = bare(BreakerState::Open {
            until_slot: 5,
            backoff: 4,
        });
        s.pre_slot(4);
        assert_eq!(s.states[0].name(), BreakerStateName::Open, "not yet");
        s.pre_slot(5);
        assert_eq!(s.states[0].name(), BreakerStateName::HalfOpen);
        assert_eq!(s.half_opens, 1);
        assert_eq!(
            s.transitions,
            vec![BreakerTransition {
                slot: 5,
                shard: 0,
                from: BreakerStateName::Open,
                to: BreakerStateName::HalfOpen,
            }]
        );
    }

    #[test]
    fn latched_open_never_probes() {
        let mut s = bare(BreakerState::Open {
            until_slot: u64::MAX,
            backoff: 32,
        });
        s.pre_slot(1_000_000);
        assert_eq!(s.states[0].name(), BreakerStateName::Open);
        assert!(s.transitions.is_empty());
    }

    #[test]
    fn same_state_updates_do_not_count_as_transitions() {
        let mut s = bare(BreakerState::Closed {
            consecutive_failures: 0,
        });
        s.transition(
            3,
            0,
            BreakerState::Closed {
                consecutive_failures: 2,
            },
        );
        assert!(
            s.transitions.is_empty(),
            "Closed→Closed is not a transition"
        );
        assert_eq!(s.closes, 0);
        match s.states[0] {
            BreakerState::Closed {
                consecutive_failures,
            } => assert_eq!(consecutive_failures, 2),
            other => panic!("unexpected state {other:?}"),
        }
    }
}
