//! The adaptive degradation ladder: trade scheduling quality for survival.
//!
//! Under sustained overload a serving system that keeps doing full-quality
//! work simply falls further behind. The brownout controller watches two
//! overload signals every tick — admission-queue depth and the worst
//! placement latency observed in that tick — and steps through an explicit
//! ladder of [`BrownoutLevel`]s, each one shedding a well-defined slice of
//! work:
//!
//! * [`SkipGate`](BrownoutLevel::SkipGate) — the provisioning pipeline
//!   skips the opportunistic reallocation gate (service level 1): no more
//!   window rewrites, but forecasts keep running so stepping back down is
//!   instant.
//! * [`CheapPredict`](BrownoutLevel::CheapPredict) — forecasting itself is
//!   skipped (service level 2): the expensive DNN/ETS inference disappears
//!   from the tick path.
//! * [`RejectNew`](BrownoutLevel::RejectNew) — the admission queue's
//!   backpressure policy is overridden to reject-new: queue-full arrivals
//!   fail fast instead of piling up at the door.
//!
//! Escalation is immediate (one level per hot tick); recovery requires
//! [`BrownoutConfig::recovery_ticks`] consecutive calm ticks below the low
//! watermark, then steps down one level at a time. Every transition is a
//! deterministic [`BrownoutTransition`] — virtual timestamp, trigger, and
//! the latency-sketch p95 at that moment — recorded in the report, so a
//! chaos run explains *when* and *why* it degraded, byte-identically on
//! every replay.

use serde::Serialize;

/// One rung of the degradation ladder, cheapest-to-serve last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum BrownoutLevel {
    /// Full service.
    Normal,
    /// Pipeline skips the reallocation gate (service level 1).
    SkipGate,
    /// Pipeline also skips forecasting (service level 2).
    CheapPredict,
    /// Admission backpressure overridden to reject-new.
    RejectNew,
}

impl BrownoutLevel {
    const LADDER: [BrownoutLevel; 4] = [
        BrownoutLevel::Normal,
        BrownoutLevel::SkipGate,
        BrownoutLevel::CheapPredict,
        BrownoutLevel::RejectNew,
    ];

    /// Ladder rung index (0 = full service).
    pub fn rung(self) -> u8 {
        match self {
            BrownoutLevel::Normal => 0,
            BrownoutLevel::SkipGate => 1,
            BrownoutLevel::CheapPredict => 2,
            BrownoutLevel::RejectNew => 3,
        }
    }

    /// The [`crate::daemon`]-to-provisioner service level for this rung:
    /// rung 3 is an admission-side measure, so the provisioner stays at
    /// its level-2 posture.
    pub fn service_level(self) -> u8 {
        self.rung().min(2)
    }

    fn up(self) -> BrownoutLevel {
        Self::LADDER[(self.rung() as usize + 1).min(Self::LADDER.len() - 1)]
    }

    fn down(self) -> BrownoutLevel {
        Self::LADDER[(self.rung() as usize).saturating_sub(1)]
    }
}

/// Why a transition fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BrownoutTrigger {
    /// Queue depth reached the high watermark.
    QueueDepth,
    /// The tick's worst placement latency crossed the threshold.
    Latency,
    /// Enough consecutive calm ticks: stepping back down.
    Recovery,
}

/// One deterministic ladder transition, recorded in the serve report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BrownoutTransition {
    /// Virtual time of the tick that fired the transition.
    pub at_micros: u64,
    /// Level before.
    pub from: BrownoutLevel,
    /// Level after.
    pub to: BrownoutLevel,
    /// What fired it.
    pub trigger: BrownoutTrigger,
    /// Admission-queue depth at the decision point.
    pub queue_depth: u64,
    /// All-time placement-latency p95 from the GK sketch at that moment
    /// (context for the reader; the *windowed* signal drives decisions).
    pub latency_p95_micros: f64,
}

/// Controller thresholds. All signals are in deterministic units (queue
/// entries, virtual microseconds, ticks), so identical runs transition
/// identically.
#[derive(Debug, Clone, PartialEq)]
pub struct BrownoutConfig {
    /// Queue depth at or above which a tick counts as overloaded.
    pub high_depth: usize,
    /// Queue depth at or below which a tick can count as calm
    /// (hysteresis: between the watermarks nothing moves).
    pub low_depth: usize,
    /// A tick whose worst placement latency reaches this is overloaded.
    pub latency_high_micros: u64,
    /// Consecutive calm ticks required before stepping down one level.
    pub recovery_ticks: u32,
}

impl Default for BrownoutConfig {
    /// Overload at 64 queued / 30 virtual seconds of placement wait; step
    /// down after 3 calm ticks at depth ≤ 8.
    fn default() -> Self {
        BrownoutConfig {
            high_depth: 64,
            low_depth: 8,
            latency_high_micros: 30_000_000,
            recovery_ticks: 3,
        }
    }
}

/// Ladder summary, serialized into the `ServeReport`.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct BrownoutSummary {
    /// Level at shutdown (rung index; 0 = recovered / never degraded).
    pub final_rung: u8,
    /// Deepest rung reached.
    pub max_rung: u8,
    /// Upward steps taken.
    pub escalations: u64,
    /// Downward steps taken.
    pub recoveries: u64,
    /// Every transition in tick order.
    pub transitions: Vec<BrownoutTransition>,
}

/// The per-tick overload controller.
#[derive(Debug)]
pub struct BrownoutController {
    config: BrownoutConfig,
    level: BrownoutLevel,
    calm_ticks: u32,
    summary: BrownoutSummary,
}

impl BrownoutController {
    /// A controller at full service.
    pub fn new(config: BrownoutConfig) -> Self {
        BrownoutController {
            config,
            level: BrownoutLevel::Normal,
            calm_ticks: 0,
            summary: BrownoutSummary::default(),
        }
    }

    /// Current ladder level.
    pub fn level(&self) -> BrownoutLevel {
        self.level
    }

    /// Feeds one tick's signals; returns the new level if this tick moved
    /// the ladder. `tick_max_latency_micros` is the worst placement
    /// latency measured in *this* tick (0 when nothing placed);
    /// `sketch_p95_micros` is recorded into the transition for context.
    pub fn observe_tick(
        &mut self,
        at_micros: u64,
        queue_depth: usize,
        tick_max_latency_micros: u64,
        sketch_p95_micros: f64,
    ) -> Option<BrownoutLevel> {
        let depth_hot = queue_depth >= self.config.high_depth.max(1);
        let latency_hot = tick_max_latency_micros >= self.config.latency_high_micros.max(1);
        if depth_hot || latency_hot {
            self.calm_ticks = 0;
            let to = self.level.up();
            if to == self.level {
                return None;
            }
            let trigger = if depth_hot {
                BrownoutTrigger::QueueDepth
            } else {
                BrownoutTrigger::Latency
            };
            return Some(self.transition(at_micros, to, trigger, queue_depth, sketch_p95_micros));
        }
        if self.level == BrownoutLevel::Normal {
            return None;
        }
        if queue_depth > self.config.low_depth {
            // Between the watermarks: hold position, restart the calm count.
            self.calm_ticks = 0;
            return None;
        }
        self.calm_ticks += 1;
        if self.calm_ticks < self.config.recovery_ticks.max(1) {
            return None;
        }
        self.calm_ticks = 0;
        let to = self.level.down();
        Some(self.transition(
            at_micros,
            to,
            BrownoutTrigger::Recovery,
            queue_depth,
            sketch_p95_micros,
        ))
    }

    fn transition(
        &mut self,
        at_micros: u64,
        to: BrownoutLevel,
        trigger: BrownoutTrigger,
        queue_depth: usize,
        latency_p95_micros: f64,
    ) -> BrownoutLevel {
        if to > self.level {
            self.summary.escalations += 1;
        } else {
            self.summary.recoveries += 1;
        }
        self.summary.transitions.push(BrownoutTransition {
            at_micros,
            from: self.level,
            to,
            trigger,
            queue_depth: queue_depth as u64,
            latency_p95_micros,
        });
        self.level = to;
        self.summary.max_rung = self.summary.max_rung.max(to.rung());
        to
    }

    /// Consumes the controller into its report summary.
    pub fn into_summary(mut self) -> BrownoutSummary {
        self.summary.final_rung = self.level.rung();
        self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BrownoutConfig {
        BrownoutConfig {
            high_depth: 4,
            low_depth: 1,
            latency_high_micros: 50,
            recovery_ticks: 2,
        }
    }

    #[test]
    fn escalates_one_rung_per_hot_tick_and_saturates() {
        let mut c = BrownoutController::new(quick());
        assert_eq!(c.observe_tick(0, 4, 0, 0.0), Some(BrownoutLevel::SkipGate));
        assert_eq!(
            c.observe_tick(10, 9, 0, 0.0),
            Some(BrownoutLevel::CheapPredict)
        );
        assert_eq!(
            c.observe_tick(20, 9, 0, 0.0),
            Some(BrownoutLevel::RejectNew)
        );
        assert_eq!(c.observe_tick(30, 9, 0, 0.0), None, "ladder saturates");
        let s = c.into_summary();
        assert_eq!(s.escalations, 3);
        assert_eq!(s.max_rung, 3);
        assert_eq!(s.final_rung, 3);
        assert_eq!(s.transitions[0].trigger, BrownoutTrigger::QueueDepth);
    }

    #[test]
    fn latency_alone_escalates() {
        let mut c = BrownoutController::new(quick());
        assert_eq!(c.observe_tick(0, 0, 60, 0.0), Some(BrownoutLevel::SkipGate));
        assert_eq!(
            c.into_summary().transitions[0].trigger,
            BrownoutTrigger::Latency
        );
    }

    #[test]
    fn recovery_needs_consecutive_calm_ticks_below_the_low_watermark() {
        let mut c = BrownoutController::new(quick());
        c.observe_tick(0, 4, 0, 0.0);
        assert_eq!(c.observe_tick(10, 1, 0, 0.0), None, "1 of 2 calm ticks");
        assert_eq!(
            c.observe_tick(20, 3, 0, 0.0),
            None,
            "hysteresis resets calm"
        );
        assert_eq!(c.observe_tick(30, 1, 0, 0.0), None);
        assert_eq!(
            c.observe_tick(40, 0, 0, 0.0),
            Some(BrownoutLevel::Normal),
            "2 consecutive calm ticks step down"
        );
        let s = c.into_summary();
        assert_eq!(s.recoveries, 1);
        assert_eq!(s.final_rung, 0);
        assert_eq!(s.max_rung, 1);
        assert_eq!(s.transitions[1].trigger, BrownoutTrigger::Recovery);
    }

    #[test]
    fn service_level_caps_at_two() {
        assert_eq!(BrownoutLevel::Normal.service_level(), 0);
        assert_eq!(BrownoutLevel::SkipGate.service_level(), 1);
        assert_eq!(BrownoutLevel::CheapPredict.service_level(), 2);
        assert_eq!(BrownoutLevel::RejectNew.service_level(), 2);
    }
}
