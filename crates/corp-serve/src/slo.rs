//! Placement deadlines: per-class admission SLOs and their accounting.
//!
//! A short-lived job that waits too long for placement is often worthless
//! by the time it runs — the paper's motivation for treating placement
//! latency as a first-class SLO. [`DeadlineConfig`] attaches an optional
//! placement deadline (virtual microseconds from arrival) to each
//! [`IntensityClass`]; the daemon consults it twice:
//!
//! * **At every tick, before draining**: a queued job whose wait already
//!   *exceeds* its deadline is expired — removed from the queue, counted
//!   in [`SloStats::expired`], and never submitted to the engine. Shedding
//!   it early frees queue capacity for jobs that can still make it.
//! * **At placement**: the measured latency is classified as a deadline
//!   hit (`latency <= deadline`) or miss. Jobs of a class with no deadline
//!   are not classified.
//!
//! With every deadline `None` (the default) nothing expires, nothing is
//! classified, and serve reports stay byte-identical to pre-deadline
//! builds modulo the zeroed counters — the acceptance bar for this layer.

use corp_trace::IntensityClass;
use serde::Serialize;

/// Position of a class in per-class arrays (mirrors
/// [`IntensityClass::ALL`] order).
fn class_index(class: IntensityClass) -> usize {
    match class {
        IntensityClass::CpuIntensive => 0,
        IntensityClass::MemoryIntensive => 1,
        IntensityClass::StorageIntensive => 2,
        IntensityClass::Balanced => 3,
    }
}

/// Optional placement deadline per intensity class, in virtual
/// microseconds from the arrival event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeadlineConfig {
    deadline_micros: [Option<u64>; IntensityClass::ALL.len()],
}

impl DeadlineConfig {
    /// No deadlines: nothing expires, nothing is classified.
    pub fn unbounded() -> Self {
        DeadlineConfig::default()
    }

    /// The same deadline for every class.
    pub fn uniform(micros: u64) -> Self {
        DeadlineConfig {
            deadline_micros: [Some(micros); IntensityClass::ALL.len()],
        }
    }

    /// Sets one class's deadline (builder style).
    pub fn with_deadline(mut self, class: IntensityClass, micros: u64) -> Self {
        self.deadline_micros[class_index(class)] = Some(micros);
        self
    }

    /// The deadline for `class`, if it has one.
    pub fn deadline_for(&self, class: IntensityClass) -> Option<u64> {
        self.deadline_micros[class_index(class)]
    }

    /// True when no class has a deadline (the fast path: the daemon skips
    /// expiry scans entirely).
    pub fn is_unbounded(&self) -> bool {
        self.deadline_micros.iter().all(|d| d.is_none())
    }
}

/// Deadline accounting, serialized into the `ServeReport`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct SloStats {
    /// Placements within the class deadline (`latency <= deadline`).
    pub deadline_hits: u64,
    /// Placements past the class deadline.
    pub deadline_misses: u64,
    /// Jobs shed while queued because their wait exceeded the deadline;
    /// they never reached the engine.
    pub expired: u64,
}

impl SloStats {
    /// Classifies one placement latency against `deadline` (no-op when the
    /// class has no deadline).
    pub fn record_placement(&mut self, latency_micros: u64, deadline: Option<u64>) {
        match deadline {
            Some(d) if latency_micros <= d => self.deadline_hits += 1,
            Some(_) => self.deadline_misses += 1,
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_has_no_deadlines() {
        let cfg = DeadlineConfig::unbounded();
        assert!(cfg.is_unbounded());
        for class in IntensityClass::ALL {
            assert_eq!(cfg.deadline_for(class), None);
        }
    }

    #[test]
    fn uniform_and_per_class_overrides() {
        let cfg =
            DeadlineConfig::uniform(5_000_000).with_deadline(IntensityClass::Balanced, 20_000_000);
        assert!(!cfg.is_unbounded());
        assert_eq!(
            cfg.deadline_for(IntensityClass::CpuIntensive),
            Some(5_000_000)
        );
        assert_eq!(cfg.deadline_for(IntensityClass::Balanced), Some(20_000_000));
    }

    #[test]
    fn placement_classification() {
        let mut stats = SloStats::default();
        stats.record_placement(10, Some(10)); // on the line: a hit
        stats.record_placement(11, Some(10));
        stats.record_placement(999, None); // no deadline: unclassified
        assert_eq!(stats.deadline_hits, 1);
        assert_eq!(stats.deadline_misses, 1);
        assert_eq!(stats.expired, 0);
    }
}
