//! Bounded admission queue with configurable backpressure.
//!
//! Arrivals land here between provisioning ticks; each tick drains the
//! queue into the engine in FIFO order. The queue is bounded — when an
//! arrival finds it full, the configured [`BackpressurePolicy`] decides
//! who pays:
//!
//! * [`Block`](BackpressurePolicy::Block) — the arrival waits at the door
//!   (a side FIFO) and enters the queue as soon as a drain frees space;
//!   nobody is lost, latency absorbs the stall.
//! * [`ShedOldest`](BackpressurePolicy::ShedOldest) — the oldest queued
//!   request is dropped to make room for the newcomer (tail-latency
//!   protection: the oldest entry is the most likely to be a lost cause).
//! * [`RejectNew`](BackpressurePolicy::RejectNew) — the newcomer is turned
//!   away immediately (fail-fast admission control).
//!
//! Independently of the full-queue policy, [`AdmissionQueue::expire`]
//! sheds waiting jobs whose placement deadline (see [`crate::slo`]) has
//! already passed — there is no point burning engine capacity on a job
//! that has missed its window before ever being drained.
//!
//! Every decision increments a counter in [`QueueStats`], and the queue
//! records its depth high-water mark; both land in the `ServeReport`.

use corp_sim::JobId;
use corp_trace::JobSpec;
use serde::Serialize;
use std::collections::VecDeque;

/// What to do when an arrival finds the admission queue full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BackpressurePolicy {
    /// Hold the arrival at the door until a drain frees space.
    Block,
    /// Drop the oldest queued request to admit the newcomer.
    ShedOldest,
    /// Turn the newcomer away.
    RejectNew,
}

impl BackpressurePolicy {
    /// Parses a CLI-style policy name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "block" => Ok(BackpressurePolicy::Block),
            "shed-oldest" | "shed" => Ok(BackpressurePolicy::ShedOldest),
            "reject-new" | "reject" => Ok(BackpressurePolicy::RejectNew),
            _ => Err(format!(
                "invalid backpressure policy `{s}`: expected block, shed-oldest, or reject-new"
            )),
        }
    }

    /// Canonical name (the `parse` spelling).
    pub fn name(&self) -> &'static str {
        match self {
            BackpressurePolicy::Block => "block",
            BackpressurePolicy::ShedOldest => "shed-oldest",
            BackpressurePolicy::RejectNew => "reject-new",
        }
    }
}

/// Admission-queue counters, serialized into the `ServeReport`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct QueueStats {
    /// Requests that entered the queue (including after a block or a
    /// shed made room).
    pub admitted: u64,
    /// Queued requests dropped by [`BackpressurePolicy::ShedOldest`].
    pub shed: u64,
    /// Arrivals turned away by [`BackpressurePolicy::RejectNew`].
    pub rejected: u64,
    /// Arrivals that had to wait at the door under
    /// [`BackpressurePolicy::Block`].
    pub blocked: u64,
    /// Waiting jobs dropped because their placement deadline passed
    /// before a tick could drain them (see [`AdmissionQueue::expire`]).
    pub expired: u64,
    /// Deepest the queue ever got (bounded by the configured capacity).
    pub high_water: u64,
}

/// A job waiting for admission, stamped with its arrival's virtual time
/// (the clock latency percentiles start from).
#[derive(Debug)]
pub struct QueuedJob {
    /// The job itself.
    pub spec: Box<JobSpec>,
    /// Virtual time of the arrival event, in microseconds.
    pub arrival_micros: u64,
}

/// What [`AdmissionQueue::offer`] did with an arrival.
#[derive(Debug, PartialEq, Eq)]
pub enum Admission {
    /// Entered the queue.
    Enqueued,
    /// Entered the queue after this older job was shed.
    EnqueuedAfterShed(JobId),
    /// Turned away.
    Rejected(JobId),
    /// Waiting at the door until space frees.
    Blocked,
}

/// The bounded FIFO between arrival events and the engine.
#[derive(Debug)]
pub struct AdmissionQueue {
    queue: VecDeque<QueuedJob>,
    door: VecDeque<QueuedJob>,
    capacity: usize,
    policy: BackpressurePolicy,
    stats: QueueStats,
}

impl AdmissionQueue {
    /// A queue holding at most `capacity` requests (min 1).
    pub fn new(capacity: usize, policy: BackpressurePolicy) -> Self {
        AdmissionQueue {
            queue: VecDeque::new(),
            door: VecDeque::new(),
            capacity: capacity.max(1),
            policy,
            stats: QueueStats::default(),
        }
    }

    /// Offers one arrival to the queue.
    pub fn offer(&mut self, spec: Box<JobSpec>, arrival_micros: u64) -> Admission {
        let job = QueuedJob {
            spec,
            arrival_micros,
        };
        if self.queue.len() < self.capacity {
            self.enqueue(job);
            return Admission::Enqueued;
        }
        match self.policy {
            BackpressurePolicy::Block => {
                self.stats.blocked += 1;
                self.door.push_back(job);
                Admission::Blocked
            }
            BackpressurePolicy::ShedOldest => {
                let victim = self.queue.pop_front().expect("full queue is non-empty");
                self.stats.shed += 1;
                self.enqueue(job);
                Admission::EnqueuedAfterShed(victim.spec.id)
            }
            BackpressurePolicy::RejectNew => {
                self.stats.rejected += 1;
                Admission::Rejected(job.spec.id)
            }
        }
    }

    fn enqueue(&mut self, job: QueuedJob) {
        self.queue.push_back(job);
        self.stats.admitted += 1;
        self.stats.high_water = self.stats.high_water.max(self.queue.len() as u64);
    }

    /// Empties the queue (FIFO) for submission to the engine, then lets
    /// door-blocked arrivals claim the freed space, oldest first.
    pub fn drain(&mut self) -> Vec<QueuedJob> {
        let mut drained = Vec::new();
        self.drain_into(&mut drained);
        drained
    }

    /// [`drain`](Self::drain) into a caller-owned buffer: appends the
    /// queued jobs (FIFO) to `out` without allocating, then lets
    /// door-blocked arrivals claim the freed space, oldest first. The
    /// daemon calls this once per tick with one reused buffer, so steady
    /// state drains allocation-free.
    pub fn drain_into(&mut self, out: &mut Vec<QueuedJob>) {
        out.extend(self.queue.drain(..));
        while self.queue.len() < self.capacity {
            match self.door.pop_front() {
                Some(job) => self.enqueue(job),
                None => break,
            }
        }
    }

    /// Sheds every waiting job (queued or door-blocked) whose wait at
    /// `now_micros` strictly exceeds its class deadline. Expired jobs are
    /// counted in [`QueueStats::expired`] and their ids appended to
    /// `expired_ids`; space they free is immediately offered to
    /// door-blocked survivors, oldest first.
    pub fn expire(
        &mut self,
        now_micros: u64,
        deadlines: &crate::slo::DeadlineConfig,
        expired_ids: &mut Vec<JobId>,
    ) {
        if deadlines.is_unbounded() {
            return;
        }
        let before = expired_ids.len();
        let overdue = |job: &QueuedJob| match deadlines.deadline_for(job.spec.class) {
            Some(d) => now_micros.saturating_sub(job.arrival_micros) > d,
            None => false,
        };
        self.queue.retain(|job| {
            if overdue(job) {
                expired_ids.push(job.spec.id);
                false
            } else {
                true
            }
        });
        self.door.retain(|job| {
            if overdue(job) {
                expired_ids.push(job.spec.id);
                false
            } else {
                true
            }
        });
        self.stats.expired += (expired_ids.len() - before) as u64;
        while self.queue.len() < self.capacity {
            match self.door.pop_front() {
                Some(job) => self.enqueue(job),
                None => break,
            }
        }
    }

    /// Swaps the backpressure policy at runtime — the brownout ladder's
    /// reject-new rung uses this, restoring the configured policy on
    /// recovery.
    pub fn set_policy(&mut self, policy: BackpressurePolicy) {
        self.policy = policy;
    }

    /// The policy currently in force.
    pub fn policy(&self) -> BackpressurePolicy {
        self.policy
    }

    /// Requests currently queued (not counting those blocked at the door).
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Requests blocked at the door (the [`BackpressurePolicy::Block`]
    /// side FIFO), waiting for a drain to free queue space.
    pub fn door_depth(&self) -> usize {
        self.door.len()
    }

    /// Whether both the queue and the door are empty.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.door.is_empty()
    }

    /// The counters so far.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corp_trace::IntensityClass;

    fn spec(id: u64) -> Box<JobSpec> {
        Box::new(JobSpec {
            id,
            arrival_slot: 0,
            duration_slots: 1,
            class: IntensityClass::Balanced,
            requested: [1.0, 1.0, 1.0],
            demand: vec![[0.5, 0.5, 0.5]],
            slo_slots: 5,
            bandwidth_mbps: 0.02,
        })
    }

    #[test]
    fn policy_parsing() {
        assert_eq!(
            BackpressurePolicy::parse("block"),
            Ok(BackpressurePolicy::Block)
        );
        assert_eq!(
            BackpressurePolicy::parse("SHED-OLDEST"),
            Ok(BackpressurePolicy::ShedOldest)
        );
        assert_eq!(
            BackpressurePolicy::parse("reject"),
            Ok(BackpressurePolicy::RejectNew)
        );
        assert!(BackpressurePolicy::parse("yolo").is_err());
    }

    #[test]
    fn fifo_below_capacity() {
        let mut q = AdmissionQueue::new(8, BackpressurePolicy::RejectNew);
        for id in 0..5 {
            assert_eq!(q.offer(spec(id), id * 10), Admission::Enqueued);
        }
        assert_eq!(q.depth(), 5);
        let drained = q.drain();
        assert_eq!(
            drained.iter().map(|j| j.spec.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(drained[3].arrival_micros, 30);
        assert!(q.is_idle());
        assert_eq!(q.stats().high_water, 5);
        assert_eq!(q.stats().admitted, 5);
    }

    #[test]
    fn shed_oldest_drops_the_front() {
        let mut q = AdmissionQueue::new(2, BackpressurePolicy::ShedOldest);
        q.offer(spec(1), 0);
        q.offer(spec(2), 0);
        assert_eq!(q.offer(spec(3), 1), Admission::EnqueuedAfterShed(1));
        let ids: Vec<u64> = q.drain().iter().map(|j| j.spec.id).collect();
        assert_eq!(ids, vec![2, 3]);
        assert_eq!(q.stats().shed, 1);
        assert_eq!(q.stats().high_water, 2, "shedding never exceeds capacity");
    }

    #[test]
    fn reject_new_turns_the_newcomer_away() {
        let mut q = AdmissionQueue::new(1, BackpressurePolicy::RejectNew);
        q.offer(spec(1), 0);
        assert_eq!(q.offer(spec(2), 1), Admission::Rejected(2));
        let ids: Vec<u64> = q.drain().iter().map(|j| j.spec.id).collect();
        assert_eq!(ids, vec![1]);
        assert_eq!(q.stats().rejected, 1);
    }

    #[test]
    fn drain_into_reuses_the_buffer() {
        let mut q = AdmissionQueue::new(8, BackpressurePolicy::Block);
        let mut buf = Vec::new();
        q.offer(spec(1), 0);
        q.offer(spec(2), 0);
        q.drain_into(&mut buf);
        assert_eq!(buf.iter().map(|j| j.spec.id).collect::<Vec<_>>(), [1, 2]);
        buf.clear();
        q.offer(spec(3), 1);
        q.drain_into(&mut buf);
        assert_eq!(buf.len(), 1, "clear-then-refill leaves only new jobs");
        assert_eq!(buf[0].spec.id, 3);
    }

    #[test]
    fn expire_sheds_overdue_jobs_from_queue_and_door() {
        use crate::slo::DeadlineConfig;
        let mut q = AdmissionQueue::new(2, BackpressurePolicy::Block);
        q.offer(spec(1), 0);
        q.offer(spec(2), 40);
        assert_eq!(q.offer(spec(3), 45), Admission::Blocked);
        let deadlines = DeadlineConfig::uniform(10);
        let mut expired = Vec::new();
        // At t=50: job 1 waited 50 (> 10, expired), job 2 waited 10 (on
        // the line, kept), door job 3 waited 5 (kept and admitted into the
        // freed slot).
        q.expire(50, &deadlines, &mut expired);
        assert_eq!(expired, vec![1]);
        assert_eq!(q.stats().expired, 1);
        assert_eq!(q.depth(), 2, "door job claimed the freed slot");
        let ids: Vec<u64> = q.drain().iter().map(|j| j.spec.id).collect();
        assert_eq!(ids, vec![2, 3]);
        // Unbounded deadlines: expire is a no-op fast path.
        q.offer(spec(4), 0);
        q.expire(1_000, &DeadlineConfig::unbounded(), &mut expired);
        assert_eq!(q.depth(), 1);
        assert_eq!(expired.len(), 1);
    }

    #[test]
    fn policy_can_be_swapped_at_runtime() {
        let mut q = AdmissionQueue::new(1, BackpressurePolicy::Block);
        q.offer(spec(1), 0);
        q.set_policy(BackpressurePolicy::RejectNew);
        assert_eq!(q.policy(), BackpressurePolicy::RejectNew);
        assert_eq!(q.offer(spec(2), 1), Admission::Rejected(2));
        q.set_policy(BackpressurePolicy::Block);
        assert_eq!(q.offer(spec(3), 2), Admission::Blocked);
    }

    #[test]
    fn blocked_arrivals_enter_after_a_drain() {
        let mut q = AdmissionQueue::new(1, BackpressurePolicy::Block);
        q.offer(spec(1), 0);
        assert_eq!(q.offer(spec(2), 5), Admission::Blocked);
        assert!(!q.is_idle());
        let first: Vec<u64> = q.drain().iter().map(|j| j.spec.id).collect();
        assert_eq!(first, vec![1]);
        // The drain let job 2 through the door with its original stamp.
        assert_eq!(q.depth(), 1);
        let second = q.drain();
        assert_eq!(second[0].spec.id, 2);
        assert_eq!(second[0].arrival_micros, 5, "blocking keeps the stamp");
        assert!(q.is_idle());
        assert_eq!(q.stats().blocked, 1);
        assert_eq!(q.stats().admitted, 2);
    }
}
