//! Bounded admission queue with configurable backpressure.
//!
//! Arrivals land here between provisioning ticks; each tick drains the
//! queue into the engine in FIFO order. The queue is bounded — when an
//! arrival finds it full, the configured [`BackpressurePolicy`] decides
//! who pays:
//!
//! * [`Block`](BackpressurePolicy::Block) — the arrival waits at the door
//!   (a side FIFO) and enters the queue as soon as a drain frees space;
//!   nobody is lost, latency absorbs the stall.
//! * [`ShedOldest`](BackpressurePolicy::ShedOldest) — the oldest queued
//!   request is dropped to make room for the newcomer (tail-latency
//!   protection: the oldest entry is the most likely to be a lost cause).
//! * [`RejectNew`](BackpressurePolicy::RejectNew) — the newcomer is turned
//!   away immediately (fail-fast admission control).
//!
//! Every decision increments a counter in [`QueueStats`], and the queue
//! records its depth high-water mark; both land in the `ServeReport`.

use corp_sim::JobId;
use corp_trace::JobSpec;
use serde::Serialize;
use std::collections::VecDeque;

/// What to do when an arrival finds the admission queue full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BackpressurePolicy {
    /// Hold the arrival at the door until a drain frees space.
    Block,
    /// Drop the oldest queued request to admit the newcomer.
    ShedOldest,
    /// Turn the newcomer away.
    RejectNew,
}

impl BackpressurePolicy {
    /// Parses a CLI-style policy name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "block" => Ok(BackpressurePolicy::Block),
            "shed-oldest" | "shed" => Ok(BackpressurePolicy::ShedOldest),
            "reject-new" | "reject" => Ok(BackpressurePolicy::RejectNew),
            _ => Err(format!(
                "invalid backpressure policy `{s}`: expected block, shed-oldest, or reject-new"
            )),
        }
    }

    /// Canonical name (the `parse` spelling).
    pub fn name(&self) -> &'static str {
        match self {
            BackpressurePolicy::Block => "block",
            BackpressurePolicy::ShedOldest => "shed-oldest",
            BackpressurePolicy::RejectNew => "reject-new",
        }
    }
}

/// Admission-queue counters, serialized into the `ServeReport`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct QueueStats {
    /// Requests that entered the queue (including after a block or a
    /// shed made room).
    pub admitted: u64,
    /// Queued requests dropped by [`BackpressurePolicy::ShedOldest`].
    pub shed: u64,
    /// Arrivals turned away by [`BackpressurePolicy::RejectNew`].
    pub rejected: u64,
    /// Arrivals that had to wait at the door under
    /// [`BackpressurePolicy::Block`].
    pub blocked: u64,
    /// Deepest the queue ever got (bounded by the configured capacity).
    pub high_water: u64,
}

/// A job waiting for admission, stamped with its arrival's virtual time
/// (the clock latency percentiles start from).
#[derive(Debug)]
pub struct QueuedJob {
    /// The job itself.
    pub spec: Box<JobSpec>,
    /// Virtual time of the arrival event, in microseconds.
    pub arrival_micros: u64,
}

/// What [`AdmissionQueue::offer`] did with an arrival.
#[derive(Debug, PartialEq, Eq)]
pub enum Admission {
    /// Entered the queue.
    Enqueued,
    /// Entered the queue after this older job was shed.
    EnqueuedAfterShed(JobId),
    /// Turned away.
    Rejected(JobId),
    /// Waiting at the door until space frees.
    Blocked,
}

/// The bounded FIFO between arrival events and the engine.
#[derive(Debug)]
pub struct AdmissionQueue {
    queue: VecDeque<QueuedJob>,
    door: VecDeque<QueuedJob>,
    capacity: usize,
    policy: BackpressurePolicy,
    stats: QueueStats,
}

impl AdmissionQueue {
    /// A queue holding at most `capacity` requests (min 1).
    pub fn new(capacity: usize, policy: BackpressurePolicy) -> Self {
        AdmissionQueue {
            queue: VecDeque::new(),
            door: VecDeque::new(),
            capacity: capacity.max(1),
            policy,
            stats: QueueStats::default(),
        }
    }

    /// Offers one arrival to the queue.
    pub fn offer(&mut self, spec: Box<JobSpec>, arrival_micros: u64) -> Admission {
        let job = QueuedJob {
            spec,
            arrival_micros,
        };
        if self.queue.len() < self.capacity {
            self.enqueue(job);
            return Admission::Enqueued;
        }
        match self.policy {
            BackpressurePolicy::Block => {
                self.stats.blocked += 1;
                self.door.push_back(job);
                Admission::Blocked
            }
            BackpressurePolicy::ShedOldest => {
                let victim = self.queue.pop_front().expect("full queue is non-empty");
                self.stats.shed += 1;
                self.enqueue(job);
                Admission::EnqueuedAfterShed(victim.spec.id)
            }
            BackpressurePolicy::RejectNew => {
                self.stats.rejected += 1;
                Admission::Rejected(job.spec.id)
            }
        }
    }

    fn enqueue(&mut self, job: QueuedJob) {
        self.queue.push_back(job);
        self.stats.admitted += 1;
        self.stats.high_water = self.stats.high_water.max(self.queue.len() as u64);
    }

    /// Empties the queue (FIFO) for submission to the engine, then lets
    /// door-blocked arrivals claim the freed space, oldest first.
    pub fn drain(&mut self) -> Vec<QueuedJob> {
        let drained: Vec<QueuedJob> = self.queue.drain(..).collect();
        while self.queue.len() < self.capacity {
            match self.door.pop_front() {
                Some(job) => self.enqueue(job),
                None => break,
            }
        }
        drained
    }

    /// Requests currently queued (not counting those blocked at the door).
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Whether both the queue and the door are empty.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.door.is_empty()
    }

    /// The counters so far.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corp_trace::IntensityClass;

    fn spec(id: u64) -> Box<JobSpec> {
        Box::new(JobSpec {
            id,
            arrival_slot: 0,
            duration_slots: 1,
            class: IntensityClass::Balanced,
            requested: [1.0, 1.0, 1.0],
            demand: vec![[0.5, 0.5, 0.5]],
            slo_slots: 5,
            bandwidth_mbps: 0.02,
        })
    }

    #[test]
    fn policy_parsing() {
        assert_eq!(
            BackpressurePolicy::parse("block"),
            Ok(BackpressurePolicy::Block)
        );
        assert_eq!(
            BackpressurePolicy::parse("SHED-OLDEST"),
            Ok(BackpressurePolicy::ShedOldest)
        );
        assert_eq!(
            BackpressurePolicy::parse("reject"),
            Ok(BackpressurePolicy::RejectNew)
        );
        assert!(BackpressurePolicy::parse("yolo").is_err());
    }

    #[test]
    fn fifo_below_capacity() {
        let mut q = AdmissionQueue::new(8, BackpressurePolicy::RejectNew);
        for id in 0..5 {
            assert_eq!(q.offer(spec(id), id * 10), Admission::Enqueued);
        }
        assert_eq!(q.depth(), 5);
        let drained = q.drain();
        assert_eq!(
            drained.iter().map(|j| j.spec.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(drained[3].arrival_micros, 30);
        assert!(q.is_idle());
        assert_eq!(q.stats().high_water, 5);
        assert_eq!(q.stats().admitted, 5);
    }

    #[test]
    fn shed_oldest_drops_the_front() {
        let mut q = AdmissionQueue::new(2, BackpressurePolicy::ShedOldest);
        q.offer(spec(1), 0);
        q.offer(spec(2), 0);
        assert_eq!(q.offer(spec(3), 1), Admission::EnqueuedAfterShed(1));
        let ids: Vec<u64> = q.drain().iter().map(|j| j.spec.id).collect();
        assert_eq!(ids, vec![2, 3]);
        assert_eq!(q.stats().shed, 1);
        assert_eq!(q.stats().high_water, 2, "shedding never exceeds capacity");
    }

    #[test]
    fn reject_new_turns_the_newcomer_away() {
        let mut q = AdmissionQueue::new(1, BackpressurePolicy::RejectNew);
        q.offer(spec(1), 0);
        assert_eq!(q.offer(spec(2), 1), Admission::Rejected(2));
        let ids: Vec<u64> = q.drain().iter().map(|j| j.spec.id).collect();
        assert_eq!(ids, vec![1]);
        assert_eq!(q.stats().rejected, 1);
    }

    #[test]
    fn blocked_arrivals_enter_after_a_drain() {
        let mut q = AdmissionQueue::new(1, BackpressurePolicy::Block);
        q.offer(spec(1), 0);
        assert_eq!(q.offer(spec(2), 5), Admission::Blocked);
        assert!(!q.is_idle());
        let first: Vec<u64> = q.drain().iter().map(|j| j.spec.id).collect();
        assert_eq!(first, vec![1]);
        // The drain let job 2 through the door with its original stamp.
        assert_eq!(q.depth(), 1);
        let second = q.drain();
        assert_eq!(second[0].spec.id, 2);
        assert_eq!(second[0].arrival_micros, 5, "blocking keeps the stamp");
        assert!(q.is_idle());
        assert_eq!(q.stats().blocked, 1);
        assert_eq!(q.stats().admitted, 2);
    }
}
