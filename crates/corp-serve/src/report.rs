//! Serving-mode reports.
//!
//! [`ServeReport`] extends the engine's `SimulationReport` with the
//! request-level view only an event-driven driver has: placement-latency
//! percentiles, admission-queue counters, and event totals. Everything in
//! it is derived from virtual time and deterministic counters, so two runs
//! with the same seed and trace serialize to identical bytes — the
//! property the serve determinism tests pin. Wall-clock throughput is
//! deliberately *not* in the report: [`ServeOutcome`] carries it alongside
//! (the same split `run_cell_sharded` uses for its wall-seconds
//! measurement).

use crate::admission::QueueStats;
use crate::brownout::BrownoutSummary;
use crate::slo::SloStats;
use corp_sim::SimulationReport;
use corp_stats::QuantileSketch;
use serde::Serialize;

/// Placement-latency percentiles in virtual microseconds, measured from a
/// job's arrival event to the tick that placed it on a VM.
#[derive(Debug, Clone, Serialize)]
pub struct LatencySummary {
    /// Number of placements measured.
    pub count: u64,
    /// Median latency.
    pub p50_micros: f64,
    /// 95th-percentile latency.
    pub p95_micros: f64,
    /// 99th-percentile latency.
    pub p99_micros: f64,
    /// Worst observed latency (exact).
    pub max_micros: f64,
}

impl LatencySummary {
    /// Summarizes a latency sketch; an empty sketch yields zeroed
    /// percentiles with `count = 0`.
    pub fn from_sketch(sketch: &QuantileSketch) -> Self {
        LatencySummary {
            count: sketch.count(),
            p50_micros: sketch.query(0.50).unwrap_or(0.0),
            p95_micros: sketch.query(0.95).unwrap_or(0.0),
            p99_micros: sketch.query(0.99).unwrap_or(0.0),
            max_micros: sketch.max().unwrap_or(0.0),
        }
    }
}

/// The serving daemon's run report: the engine report plus request-level
/// latency and admission accounting. Byte-deterministic for a given seed,
/// trace, and configuration.
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    /// The underlying engine report (utilization, SLOs, predictions,
    /// faults — everything the batch mode reports).
    pub sim: SimulationReport,
    /// Placement-latency percentiles over all placed jobs.
    pub placement_latency: LatencySummary,
    /// Admission-queue counters and depth high-water mark.
    pub queue: QueueStats,
    /// Deadline accounting (hits, misses, queue expiries); all zero when
    /// the run has no deadlines configured.
    pub slo: SloStats,
    /// Degradation-ladder summary (final/max rung and every transition);
    /// empty when the controller is disabled or never triggered.
    pub brownout: BrownoutSummary,
    /// Total events processed (arrivals, ticks, completions, drain,
    /// shutdown).
    pub events_processed: u64,
    /// Provisioning ticks executed (slots stepped).
    pub ticks: u64,
    /// Virtual time at shutdown, in microseconds.
    pub virtual_end_micros: u64,
}

/// A [`ServeReport`] plus the wall-clock measurements that must stay out
/// of it (they vary run to run; the report must not).
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// The deterministic report.
    pub report: ServeReport,
    /// Wall-clock duration of the run in seconds.
    pub wall_secs: f64,
    /// Events processed per wall-clock second.
    pub events_per_sec: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_summarizes_to_zeroes() {
        let s = LatencySummary::from_sketch(&QuantileSketch::new(0.01));
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_micros, 0.0);
        assert_eq!(s.max_micros, 0.0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut q = QuantileSketch::new(0.005);
        for i in 0..1000 {
            q.insert((i % 97) as f64 * 1000.0);
        }
        let s = LatencySummary::from_sketch(&q);
        assert_eq!(s.count, 1000);
        assert!(s.p50_micros <= s.p95_micros);
        assert!(s.p95_micros <= s.p99_micros);
        assert!(s.p99_micros <= s.max_micros);
    }
}
