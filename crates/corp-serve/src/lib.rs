//! Event-driven online provisioning daemon for the CORP reproduction.
//!
//! The paper's evaluation runs its four schemes in a lockstep slot loop,
//! but the system it describes is a live control plane: short-lived jobs
//! arrive on a stream, admission happens under backpressure, and placement
//! latency is a first-class SLO. This crate is that serving mode
//! (DESIGN.md §12), built from four pieces:
//!
//! * [`clock`] — virtual time in microseconds plus [`ReplaySpeed`] pacing:
//!   `inf` consumes the trace as fast as the host allows (the
//!   byte-deterministic batch mode), `N` paces one virtual second per
//!   `1/N` wall seconds without ever feeding wall readings back into the
//!   simulation.
//! * [`events`] — a binary-heap event queue over `(time, class, seq)`:
//!   arrivals sort before the tick that admits them, completion
//!   notifications after it, drain/shutdown close the stream. The order is
//!   total, so runs are reproducible bit for bit.
//! * [`admission`] — a bounded FIFO between arrivals and the engine with
//!   three backpressure ladders (block, shed-oldest, reject-new) and full
//!   admission/shed/high-water accounting.
//! * [`daemon`] — the event loop itself, driving the *same*
//!   [`corp_sim::SlotEngine`] the batch simulation uses. At unbounded
//!   queue capacity and infinite speed it reproduces the batch run byte
//!   for byte — same jobs on the same VMs — which is what makes serving
//!   mode a mode, not a fork.
//!
//! Overload is a first-class concern (DESIGN.md §13), handled by three
//! cooperating layers, each deterministic and fully accounted:
//!
//! * [`slo`] — per-class placement deadlines: jobs that out-wait their
//!   deadline in the queue are expired before ever reaching the engine,
//!   and placements are classified as deadline hits or misses.
//! * [`brownout`] — an adaptive degradation ladder watching queue depth
//!   and per-tick placement latency, trading scheduling quality for
//!   survival one explicit rung at a time (skip the reallocation gate →
//!   skip forecasting → reject new work) and stepping back down after
//!   consecutive calm ticks.
//! * [`breaker`] — per-shard circuit breakers over the `corp-cluster`
//!   coordinator: K consecutive failure fallbacks isolate a shard (forced
//!   inline, no dispatch or timeout wait) until a half-open probe in
//!   virtual-slot backoff succeeds.
//!
//! Reports ([`ServeReport`]) extend the engine report with placement-
//! latency percentiles (p50/p95/p99 via the GK sketch in `corp-stats`),
//! queue-depth high-water marks, deadline and brownout accounting, and
//! event totals; wall-clock throughput rides outside the report in
//! [`ServeOutcome`] so serialization stays deterministic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod breaker;
pub mod brownout;
pub mod clock;
pub mod daemon;
pub mod events;
pub mod report;
pub mod slo;

pub use admission::{Admission, AdmissionQueue, BackpressurePolicy, QueueStats};
pub use breaker::{BreakerConfig, BreakerSupervisor};
pub use brownout::{
    BrownoutConfig, BrownoutController, BrownoutLevel, BrownoutSummary, BrownoutTransition,
    BrownoutTrigger,
};
pub use clock::{ReplaySpeed, VirtualClock, MICROS_PER_SEC};
pub use daemon::{ServeConfig, ServeDaemon};
pub use events::{EventQueue, ServeEvent};
pub use report::{LatencySummary, ServeOutcome, ServeReport};
pub use slo::{DeadlineConfig, SloStats};
