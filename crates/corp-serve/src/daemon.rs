//! The serving daemon: an event loop over the slot engine.
//!
//! Where the batch `Simulation` walks a pre-sorted workload slot by slot,
//! the daemon consumes a timestamped event stream — arrivals hit a bounded
//! admission queue, provisioning-window ticks drain it into the
//! [`SlotEngine`] and run one slot, completions flow back out as
//! notification events, and drain/shutdown events close the stream. Virtual
//! time keeps the whole thing byte-deterministic; wall time appears only as
//! optional replay pacing ([`ReplaySpeed`]) and in the measured throughput
//! that travels *outside* the report.
//!
//! At unbounded queue capacity and `speed = inf`, a recorded workload
//! replayed here makes exactly the decisions the batch simulation makes —
//! same jobs on the same VMs — because both drivers feed the identical
//! engine in the identical order. The cross-mode equivalence test in
//! corp-bench pins this.

use crate::admission::{Admission, AdmissionQueue, BackpressurePolicy};
use crate::clock::{ReplaySpeed, VirtualClock};
use crate::events::{EventQueue, ServeEvent};
use crate::report::{LatencySummary, ServeOutcome, ServeReport};
use corp_faults::FaultTimeline;
use corp_sim::{Cluster, JobId, Provisioner, SimulationOptions, SlotEngine};
use corp_stats::QuantileSketch;
use corp_trace::JobSpec;
use std::collections::HashMap;
use std::time::Instant;

/// Daemon knobs. The defaults describe the paper's setting: 10-second
/// slots, an effectively open admission queue, no pacing.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Virtual microseconds per provisioning slot (default 10 s, the
    /// paper's slot length).
    pub slot_micros: u64,
    /// Admission-queue capacity (requests buffered between ticks).
    pub queue_capacity: usize,
    /// What happens when an arrival finds the queue full.
    pub policy: BackpressurePolicy,
    /// Replay pacing against the wall clock.
    pub speed: ReplaySpeed,
    /// Rank accuracy of the latency percentile sketch.
    pub latency_eps: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            slot_micros: 10_000_000,
            queue_capacity: 4096,
            policy: BackpressurePolicy::Block,
            speed: ReplaySpeed::Infinite,
            latency_eps: 0.005,
        }
    }
}

/// The long-running provisioning daemon.
pub struct ServeDaemon {
    engine: SlotEngine,
    config: ServeConfig,
}

impl ServeDaemon {
    /// Builds a daemon over `cluster`. `options` is the engine
    /// configuration shared with batch mode (slot cap, prediction
    /// tolerance, …).
    pub fn new(cluster: Cluster, options: SimulationOptions, config: ServeConfig) -> Self {
        ServeDaemon {
            engine: SlotEngine::new(cluster, options),
            config,
        }
    }

    /// Read access to every submitted job's state, submission-ordered —
    /// the same view [`corp_sim::Simulation::jobs`] exposes, so cross-mode
    /// tests can compare job→VM placement maps between the two drivers.
    pub fn jobs(&self) -> &[corp_sim::RunningJob] {
        self.engine.jobs()
    }

    /// Arms the daemon to replay `timeline` alongside the workload —
    /// the exact fault machinery batch mode uses, unchanged, because the
    /// timeline lives inside the shared engine.
    pub fn with_fault_timeline(mut self, timeline: FaultTimeline) -> Self {
        self.engine = self.engine.with_fault_timeline(timeline);
        self
    }

    /// Replays `jobs` through the event loop under `provisioner` and
    /// returns the report plus wall-clock throughput.
    pub fn run(&mut self, provisioner: &mut dyn Provisioner, jobs: Vec<JobSpec>) -> ServeOutcome {
        let wall_start = Instant::now();
        let slot_micros = self.config.slot_micros.max(1);
        let mut clock = VirtualClock::new(slot_micros, self.config.speed);
        let mut events = EventQueue::new();
        let mut admission = AdmissionQueue::new(self.config.queue_capacity, self.config.policy);
        let mut latency = QuantileSketch::new(self.config.latency_eps);
        // Virtual arrival stamp of each job still waiting for its first
        // placement; removed on placement (latency measured once — a
        // crash-induced re-placement is replacement latency, a fault
        // metric, not admission latency).
        let mut arrival_stamp: HashMap<JobId, u64> = HashMap::new();

        // Arrivals feed the heap lazily, one in flight at a time, in the
        // same stable arrival order the batch driver uses: the heap stays
        // O(1)-deep in arrivals no matter how long the trace is.
        let last_arrival = jobs.iter().map(|j| j.arrival_slot).max().unwrap_or(0);
        let max_slot = self.engine.options().max_slots + last_arrival;
        let mut sorted = jobs;
        sorted.sort_by_key(|j| j.arrival_slot);
        let mut pending_arrivals = sorted.len();
        let mut arrivals = sorted.into_iter();
        if let Some(first) = arrivals.next() {
            let at = clock.time_of_slot(first.arrival_slot);
            events.push(at, ServeEvent::Arrival(Box::new(first)));
        }
        events.push(0, ServeEvent::Tick);

        let mut events_processed: u64 = 0;
        let mut ticks: u64 = 0;
        while let Some((time, event)) = events.pop() {
            clock.advance_to(time);
            events_processed += 1;
            match event {
                ServeEvent::Arrival(spec) => {
                    pending_arrivals -= 1;
                    arrival_stamp.insert(spec.id, time);
                    match admission.offer(spec, time) {
                        Admission::EnqueuedAfterShed(victim) => {
                            arrival_stamp.remove(&victim);
                        }
                        Admission::Rejected(id) => {
                            arrival_stamp.remove(&id);
                        }
                        Admission::Enqueued | Admission::Blocked => {}
                    }
                    if let Some(next) = arrivals.next() {
                        let at = clock.time_of_slot(next.arrival_slot);
                        events.push(at, ServeEvent::Arrival(Box::new(next)));
                    }
                }
                ServeEvent::Tick => {
                    for queued in admission.drain() {
                        self.engine.submit(*queued.spec);
                    }
                    let outcome = self.engine.step(provisioner);
                    ticks += 1;
                    for (job, _vm) in &outcome.placements {
                        if let Some(stamp) = arrival_stamp.remove(job) {
                            latency.insert(time.saturating_sub(stamp) as f64);
                        }
                    }
                    for job in &outcome.rejected {
                        arrival_stamp.remove(job);
                    }
                    for job in outcome.completed {
                        events.push(time, ServeEvent::Completion(job));
                    }
                    let arrivals_done = pending_arrivals == 0;
                    let drained = arrivals_done && self.engine.active() == 0 && admission.is_idle();
                    if drained || self.engine.slot() >= max_slot {
                        events.push(time, ServeEvent::Drain);
                    } else {
                        events.push(time + slot_micros, ServeEvent::Tick);
                    }
                }
                ServeEvent::Completion(_) => {
                    // Notification only: the completion is already folded
                    // into the engine metrics by the tick that emitted it.
                }
                ServeEvent::Drain => {
                    events.push(time, ServeEvent::Shutdown);
                }
                ServeEvent::Shutdown => break,
            }
        }

        // A slot-cap stop leaves later arrivals unprocessed in the heap
        // and possibly requests parked in the admission queue. Register
        // them with the engine (without stepping) so the report counts
        // every offered job, exactly as the batch driver does.
        while let Some((_, event)) = events.pop() {
            if let ServeEvent::Arrival(spec) = event {
                self.engine.submit(*spec);
            }
        }
        for spec in arrivals {
            self.engine.submit(spec);
        }
        for queued in admission.drain() {
            self.engine.submit(*queued.spec);
        }

        let report = ServeReport {
            sim: self.engine.report(provisioner),
            placement_latency: LatencySummary::from_sketch(&latency),
            queue: admission.stats().clone(),
            events_processed,
            ticks,
            virtual_end_micros: clock.now(),
        };
        let wall_secs = wall_start.elapsed().as_secs_f64();
        ServeOutcome {
            events_per_sec: events_processed as f64 / wall_secs.max(1e-9),
            report,
            wall_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corp_sim::{EnvironmentProfile, StaticPeakProvisioner};
    use corp_trace::{WorkloadConfig, WorkloadGenerator};

    fn cluster() -> Cluster {
        Cluster::from_profile(EnvironmentProfile::palmetto_cluster())
    }

    fn workload(n: usize, seed: u64) -> Vec<JobSpec> {
        WorkloadGenerator::new(
            WorkloadConfig {
                num_jobs: n,
                ..WorkloadConfig::default()
            },
            seed,
        )
        .generate()
    }

    fn quiet_options() -> SimulationOptions {
        SimulationOptions {
            measure_decision_time: false,
            ..SimulationOptions::default()
        }
    }

    #[test]
    fn serve_completes_a_workload_and_reports_latency() {
        let mut daemon = ServeDaemon::new(cluster(), quiet_options(), ServeConfig::default());
        let out = daemon.run(&mut StaticPeakProvisioner, workload(40, 1));
        let r = &out.report;
        assert_eq!(r.sim.completed, 40, "{r:?}");
        assert_eq!(r.sim.unfinished, 0);
        assert_eq!(r.placement_latency.count, 40);
        assert_eq!(r.queue.admitted, 40);
        assert_eq!(r.queue.shed, 0);
        assert!(r.queue.high_water >= 1);
        assert_eq!(r.ticks, r.sim.slots_run);
        // Arrivals + ticks + completions + drain + shutdown.
        assert_eq!(r.events_processed, 40 + r.ticks + 40 + 2);
        assert!(out.wall_secs > 0.0);
        assert!(out.events_per_sec > 0.0);
    }

    #[test]
    fn serve_matches_batch_simulation_byte_for_byte() {
        let jobs = workload(35, 2);
        let mut sim = corp_sim::Simulation::new(cluster(), jobs.clone(), quiet_options());
        let batch = sim.run(&mut StaticPeakProvisioner);
        let mut daemon = ServeDaemon::new(cluster(), quiet_options(), ServeConfig::default());
        let served = daemon.run(&mut StaticPeakProvisioner, jobs);
        assert_eq!(
            serde::json::to_string(&batch),
            serde::json::to_string(&served.report.sim),
            "serve mode must reproduce the batch engine report exactly"
        );
    }

    #[test]
    fn empty_workload_shuts_down_after_one_tick() {
        let mut daemon = ServeDaemon::new(cluster(), quiet_options(), ServeConfig::default());
        let out = daemon.run(&mut StaticPeakProvisioner, Vec::new());
        assert_eq!(out.report.ticks, 1);
        assert_eq!(out.report.placement_latency.count, 0);
        // One tick + drain + shutdown.
        assert_eq!(out.report.events_processed, 3);
    }

    #[test]
    fn queued_arrivals_accumulate_latency() {
        // Several same-slot arrivals on a tiny queue under Block: the
        // overflow waits a full slot at the door, showing up in p-max.
        let mut jobs = workload(6, 3);
        for j in &mut jobs {
            j.arrival_slot = 0;
        }
        let config = ServeConfig {
            queue_capacity: 2,
            ..ServeConfig::default()
        };
        let mut daemon = ServeDaemon::new(cluster(), quiet_options(), config);
        let out = daemon.run(&mut StaticPeakProvisioner, jobs);
        let r = &out.report;
        assert_eq!(r.sim.completed, 6, "blocking loses nobody: {r:?}");
        assert_eq!(r.queue.blocked, 4);
        assert_eq!(r.queue.high_water, 2);
        assert!(
            r.placement_latency.max_micros >= 10_000_000.0,
            "door-blocked arrivals wait at least one slot: {r:?}"
        );
    }

    #[test]
    fn shed_oldest_drops_jobs_under_overload() {
        let mut jobs = workload(8, 4);
        for j in &mut jobs {
            j.arrival_slot = 0;
        }
        let config = ServeConfig {
            queue_capacity: 3,
            policy: BackpressurePolicy::ShedOldest,
            ..ServeConfig::default()
        };
        let mut daemon = ServeDaemon::new(cluster(), quiet_options(), config);
        let out = daemon.run(&mut StaticPeakProvisioner, jobs);
        let r = &out.report;
        assert_eq!(r.queue.shed, 5);
        assert_eq!(r.sim.num_jobs, 3, "shed jobs never reach the engine");
        assert_eq!(r.sim.completed, 3);
    }

    #[test]
    fn reject_new_turns_overflow_away() {
        let mut jobs = workload(8, 5);
        for j in &mut jobs {
            j.arrival_slot = 0;
        }
        let config = ServeConfig {
            queue_capacity: 3,
            policy: BackpressurePolicy::RejectNew,
            ..ServeConfig::default()
        };
        let mut daemon = ServeDaemon::new(cluster(), quiet_options(), config);
        let out = daemon.run(&mut StaticPeakProvisioner, jobs);
        let r = &out.report;
        assert_eq!(r.queue.rejected, 5);
        assert_eq!(r.sim.num_jobs, 3);
        assert_eq!(r.placement_latency.count, 3);
    }

    #[test]
    fn fault_timeline_runs_unchanged_in_serving_mode() {
        use corp_faults::{FaultEvent, TimedFault};
        let jobs = workload(10, 6);
        let num_vms = cluster().vms.len();
        let timeline = || {
            let mut ev = Vec::new();
            for vm in 0..num_vms {
                ev.push(TimedFault {
                    slot: 3,
                    event: FaultEvent::VmCrash { vm },
                });
                ev.push(TimedFault {
                    slot: 20,
                    event: FaultEvent::VmRecover { vm },
                });
            }
            FaultTimeline::new(ev)
        };
        let mut sim = corp_sim::Simulation::new(cluster(), jobs.clone(), quiet_options())
            .with_fault_timeline(timeline());
        let batch = sim.run(&mut StaticPeakProvisioner);
        let mut daemon = ServeDaemon::new(cluster(), quiet_options(), ServeConfig::default())
            .with_fault_timeline(timeline());
        let served = daemon.run(&mut StaticPeakProvisioner, jobs);
        assert_eq!(
            serde::json::to_string(&batch),
            serde::json::to_string(&served.report.sim),
            "fault scenarios must play out identically in serve mode"
        );
        let faults = served.report.sim.faults.expect("fault stats present");
        assert!(faults.jobs_killed > 0);
    }

    #[test]
    fn paced_replay_matches_virtual_time_results() {
        // A tiny workload at a very high pacing multiplier: slow enough to
        // exercise the sleep path, fast enough for CI. The report must be
        // byte-identical to the unpaced run — pacing only stretches wall
        // time.
        let mut jobs = workload(3, 7);
        for j in &mut jobs {
            j.arrival_slot = 0;
        }
        let run = |speed| {
            let config = ServeConfig {
                speed,
                ..ServeConfig::default()
            };
            let mut daemon = ServeDaemon::new(cluster(), quiet_options(), config);
            let out = daemon.run(&mut StaticPeakProvisioner, jobs.clone());
            serde::json::to_string(&out.report)
        };
        let unpaced = run(ReplaySpeed::Infinite);
        let paced = run(ReplaySpeed::Times(2_000_000.0));
        assert_eq!(unpaced, paced);
    }

    #[test]
    fn slot_cap_registers_stragglers_like_batch_mode() {
        /// Never places anything.
        struct DoNothing;
        impl Provisioner for DoNothing {
            fn name(&self) -> &str {
                "noop"
            }
            fn provision(&mut self, _: &corp_sim::SlotContext<'_>) -> corp_sim::ProvisionPlan {
                corp_sim::ProvisionPlan::default()
            }
        }
        let jobs = workload(5, 8);
        let options = SimulationOptions {
            max_slots: 10,
            measure_decision_time: false,
            ..SimulationOptions::default()
        };
        let mut sim = corp_sim::Simulation::new(cluster(), jobs.clone(), options.clone());
        let batch = sim.run(&mut DoNothing);
        let mut daemon = ServeDaemon::new(cluster(), options, ServeConfig::default());
        let served = daemon.run(&mut DoNothing, jobs);
        assert_eq!(served.report.sim.unfinished, 5);
        assert_eq!(
            serde::json::to_string(&batch),
            serde::json::to_string(&served.report.sim)
        );
    }
}
