//! The serving daemon: an event loop over the slot engine.
//!
//! Where the batch `Simulation` walks a pre-sorted workload slot by slot,
//! the daemon consumes a timestamped event stream — arrivals hit a bounded
//! admission queue, provisioning-window ticks drain it into the
//! [`SlotEngine`] and run one slot, completions flow back out as
//! notification events, and drain/shutdown events close the stream. Virtual
//! time keeps the whole thing byte-deterministic; wall time appears only as
//! optional replay pacing ([`ReplaySpeed`]) and in the measured throughput
//! that travels *outside* the report.
//!
//! At unbounded queue capacity and `speed = inf`, a recorded workload
//! replayed here makes exactly the decisions the batch simulation makes —
//! same jobs on the same VMs — because both drivers feed the identical
//! engine in the identical order. The cross-mode equivalence test in
//! corp-bench pins this.

use crate::admission::{Admission, AdmissionQueue, BackpressurePolicy, QueuedJob};
use crate::brownout::{BrownoutConfig, BrownoutController, BrownoutLevel};
use crate::clock::{ReplaySpeed, VirtualClock};
use crate::events::{EventQueue, ServeEvent};
use crate::report::{LatencySummary, ServeOutcome, ServeReport};
use crate::slo::{DeadlineConfig, SloStats};
use corp_faults::FaultTimeline;
use corp_sim::{Cluster, JobId, Provisioner, SimulationOptions, SlotEngine};
use corp_stats::QuantileSketch;
use corp_trace::JobSpec;
use std::collections::HashMap;
use std::time::Instant;

/// Daemon knobs. The defaults describe the paper's setting: 10-second
/// slots, an effectively open admission queue, no pacing, no deadlines,
/// no degradation ladder.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Virtual microseconds per provisioning slot (default 10 s, the
    /// paper's slot length).
    pub slot_micros: u64,
    /// Admission-queue capacity (requests buffered between ticks).
    pub queue_capacity: usize,
    /// What happens when an arrival finds the queue full.
    pub policy: BackpressurePolicy,
    /// Replay pacing against the wall clock.
    pub speed: ReplaySpeed,
    /// Rank accuracy of the latency percentile sketch.
    pub latency_eps: f64,
    /// Per-class placement deadlines; unbounded by default (nothing
    /// expires, nothing is classified).
    pub deadlines: DeadlineConfig,
    /// Overload degradation ladder; `None` (the default) disables the
    /// controller entirely.
    pub brownout: Option<BrownoutConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            slot_micros: 10_000_000,
            queue_capacity: 4096,
            policy: BackpressurePolicy::Block,
            speed: ReplaySpeed::Infinite,
            latency_eps: 0.005,
            deadlines: DeadlineConfig::unbounded(),
            brownout: None,
        }
    }
}

/// The long-running provisioning daemon.
pub struct ServeDaemon {
    engine: SlotEngine,
    config: ServeConfig,
}

impl ServeDaemon {
    /// Builds a daemon over `cluster`. `options` is the engine
    /// configuration shared with batch mode (slot cap, prediction
    /// tolerance, …).
    pub fn new(cluster: Cluster, options: SimulationOptions, config: ServeConfig) -> Self {
        ServeDaemon {
            engine: SlotEngine::new(cluster, options),
            config,
        }
    }

    /// Read access to every submitted job's state, submission-ordered —
    /// the same view [`corp_sim::Simulation::jobs`] exposes, so cross-mode
    /// tests can compare job→VM placement maps between the two drivers.
    pub fn jobs(&self) -> &[corp_sim::RunningJob] {
        self.engine.jobs()
    }

    /// Arms the daemon to replay `timeline` alongside the workload —
    /// the exact fault machinery batch mode uses, unchanged, because the
    /// timeline lives inside the shared engine.
    pub fn with_fault_timeline(mut self, timeline: FaultTimeline) -> Self {
        self.engine = self.engine.with_fault_timeline(timeline);
        self
    }

    /// Replays `jobs` through the event loop under `provisioner` and
    /// returns the report plus wall-clock throughput.
    ///
    /// `jobs` is any arrival stream — a `Vec`, a generator adapter, a
    /// decoded trace reader — consumed lazily with exactly one arrival in
    /// flight, so memory stays O(1) in the trace length. The stream is
    /// expected in arrival order (every recorded or generated workload
    /// is); a spec arriving out of order is clamped forward to the stream
    /// frontier, the way a live front door would see it — a daemon cannot
    /// admit into the past.
    pub fn run<I>(&mut self, provisioner: &mut dyn Provisioner, jobs: I) -> ServeOutcome
    where
        I: IntoIterator<Item = JobSpec>,
    {
        let wall_start = Instant::now();
        let slot_micros = self.config.slot_micros.max(1);
        let deadlines = self.config.deadlines;
        let base_policy = self.config.policy;
        let mut clock = VirtualClock::new(slot_micros, self.config.speed);
        let mut events = EventQueue::new();
        let mut admission = AdmissionQueue::new(self.config.queue_capacity, base_policy);
        let mut latency = QuantileSketch::new(self.config.latency_eps);
        let mut slo = SloStats::default();
        let mut ladder = self.config.brownout.clone().map(BrownoutController::new);
        // Virtual arrival stamp and class deadline of each job still
        // waiting for its first placement; removed on placement (latency
        // measured once — a crash-induced re-placement is replacement
        // latency, a fault metric, not admission latency).
        let mut arrival_stamp: HashMap<JobId, (u64, Option<u64>)> = HashMap::new();
        // Per-tick reusable buffers: the loop drains and expires without
        // allocating at steady state.
        let mut drain_buf: Vec<QueuedJob> = Vec::new();
        let mut expired_buf: Vec<JobId> = Vec::new();

        // Arrivals feed the heap lazily, one in flight at a time, in
        // stream order: the heap stays O(1)-deep in arrivals no matter how
        // long the trace is. `frontier_slot` tracks the newest arrival
        // slot pushed so far — the slot cap is measured from it, and only
        // once the stream is exhausted, which reproduces the batch
        // driver's `max_slots + last_arrival` horizon exactly.
        let mut arrivals = jobs.into_iter();
        let mut frontier_slot: u64 = 0;
        let mut in_flight = false;
        let mut exhausted = false;
        if let Some(first) = arrivals.next() {
            frontier_slot = first.arrival_slot;
            let at = clock.time_of_slot(frontier_slot);
            events.push(at, ServeEvent::Arrival(Box::new(first)));
            in_flight = true;
        } else {
            exhausted = true;
        }
        events.push(0, ServeEvent::Tick);

        let mut events_processed: u64 = 0;
        let mut ticks: u64 = 0;
        while let Some((time, event)) = events.pop() {
            clock.advance_to(time);
            events_processed += 1;
            match event {
                ServeEvent::Arrival(spec) => {
                    in_flight = false;
                    arrival_stamp.insert(spec.id, (time, deadlines.deadline_for(spec.class)));
                    match admission.offer(spec, time) {
                        Admission::EnqueuedAfterShed(victim) => {
                            arrival_stamp.remove(&victim);
                        }
                        Admission::Rejected(id) => {
                            arrival_stamp.remove(&id);
                        }
                        Admission::Enqueued | Admission::Blocked => {}
                    }
                    match arrivals.next() {
                        Some(next) => {
                            frontier_slot = frontier_slot.max(next.arrival_slot);
                            let at = clock.time_of_slot(frontier_slot);
                            events.push(at, ServeEvent::Arrival(Box::new(next)));
                            in_flight = true;
                        }
                        None => exhausted = true,
                    }
                }
                ServeEvent::Tick => {
                    // Depth before the drain is the demand signal the
                    // brownout controller keys on: how much piled up since
                    // the last tick.
                    let depth_before = admission.depth();
                    if !deadlines.is_unbounded() {
                        expired_buf.clear();
                        admission.expire(time, &deadlines, &mut expired_buf);
                        for id in &expired_buf {
                            arrival_stamp.remove(id);
                        }
                        slo.expired += expired_buf.len() as u64;
                    }
                    drain_buf.clear();
                    admission.drain_into(&mut drain_buf);
                    for queued in drain_buf.drain(..) {
                        self.engine.submit(*queued.spec);
                    }
                    let outcome = self.engine.step(provisioner);
                    ticks += 1;
                    let mut tick_max_latency: u64 = 0;
                    for (job, _vm) in &outcome.placements {
                        if let Some((stamp, deadline)) = arrival_stamp.remove(job) {
                            let waited = time.saturating_sub(stamp);
                            latency.insert(waited as f64);
                            slo.record_placement(waited, deadline);
                            tick_max_latency = tick_max_latency.max(waited);
                        }
                    }
                    for job in &outcome.rejected {
                        arrival_stamp.remove(job);
                    }
                    for job in outcome.completed {
                        events.push(time, ServeEvent::Completion(job));
                    }
                    if let Some(controller) = ladder.as_mut() {
                        let p95 = latency.query(0.95).unwrap_or(0.0);
                        if let Some(level) =
                            controller.observe_tick(time, depth_before, tick_max_latency, p95)
                        {
                            provisioner.set_service_level(level.service_level());
                            admission.set_policy(if level == BrownoutLevel::RejectNew {
                                BackpressurePolicy::RejectNew
                            } else {
                                base_policy
                            });
                        }
                    }
                    let arrivals_done = exhausted && !in_flight;
                    let drained = arrivals_done && self.engine.active() == 0 && admission.is_idle();
                    let capped = arrivals_done
                        && self.engine.slot() >= self.engine.options().max_slots + frontier_slot;
                    if drained || capped {
                        events.push(time, ServeEvent::Drain);
                    } else {
                        events.push(time + slot_micros, ServeEvent::Tick);
                    }
                }
                ServeEvent::Completion(_) => {
                    // Notification only: the completion is already folded
                    // into the engine metrics by the tick that emitted it.
                }
                ServeEvent::Drain => {
                    events.push(time, ServeEvent::Shutdown);
                }
                ServeEvent::Shutdown => break,
            }
        }

        // A slot-cap stop leaves later arrivals unprocessed in the heap
        // and possibly requests parked in the admission queue. Register
        // them with the engine (without stepping) so the report counts
        // every offered job, exactly as the batch driver does.
        while let Some((_, event)) = events.pop() {
            if let ServeEvent::Arrival(spec) = event {
                self.engine.submit(*spec);
            }
        }
        for spec in arrivals {
            self.engine.submit(spec);
        }
        for queued in admission.drain() {
            self.engine.submit(*queued.spec);
        }

        let report = ServeReport {
            sim: self.engine.report(provisioner),
            placement_latency: LatencySummary::from_sketch(&latency),
            queue: admission.stats().clone(),
            slo,
            brownout: ladder
                .map(BrownoutController::into_summary)
                .unwrap_or_default(),
            events_processed,
            ticks,
            virtual_end_micros: clock.now(),
        };
        let wall_secs = wall_start.elapsed().as_secs_f64();
        ServeOutcome {
            events_per_sec: events_processed as f64 / wall_secs.max(1e-9),
            report,
            wall_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corp_sim::{EnvironmentProfile, StaticPeakProvisioner};
    use corp_trace::{WorkloadConfig, WorkloadGenerator};

    fn cluster() -> Cluster {
        Cluster::from_profile(EnvironmentProfile::palmetto_cluster())
    }

    fn workload(n: usize, seed: u64) -> Vec<JobSpec> {
        WorkloadGenerator::new(
            WorkloadConfig {
                num_jobs: n,
                ..WorkloadConfig::default()
            },
            seed,
        )
        .generate()
    }

    fn quiet_options() -> SimulationOptions {
        SimulationOptions {
            measure_decision_time: false,
            ..SimulationOptions::default()
        }
    }

    #[test]
    fn serve_completes_a_workload_and_reports_latency() {
        let mut daemon = ServeDaemon::new(cluster(), quiet_options(), ServeConfig::default());
        let out = daemon.run(&mut StaticPeakProvisioner, workload(40, 1));
        let r = &out.report;
        assert_eq!(r.sim.completed, 40, "{r:?}");
        assert_eq!(r.sim.unfinished, 0);
        assert_eq!(r.placement_latency.count, 40);
        assert_eq!(r.queue.admitted, 40);
        assert_eq!(r.queue.shed, 0);
        assert!(r.queue.high_water >= 1);
        assert_eq!(r.ticks, r.sim.slots_run);
        // Arrivals + ticks + completions + drain + shutdown.
        assert_eq!(r.events_processed, 40 + r.ticks + 40 + 2);
        assert!(out.wall_secs > 0.0);
        assert!(out.events_per_sec > 0.0);
    }

    #[test]
    fn serve_matches_batch_simulation_byte_for_byte() {
        let jobs = workload(35, 2);
        let mut sim = corp_sim::Simulation::new(cluster(), jobs.clone(), quiet_options());
        let batch = sim.run(&mut StaticPeakProvisioner);
        let mut daemon = ServeDaemon::new(cluster(), quiet_options(), ServeConfig::default());
        let served = daemon.run(&mut StaticPeakProvisioner, jobs);
        assert_eq!(
            serde::json::to_string(&batch),
            serde::json::to_string(&served.report.sim),
            "serve mode must reproduce the batch engine report exactly"
        );
    }

    #[test]
    fn empty_workload_shuts_down_after_one_tick() {
        let mut daemon = ServeDaemon::new(cluster(), quiet_options(), ServeConfig::default());
        let out = daemon.run(&mut StaticPeakProvisioner, Vec::new());
        assert_eq!(out.report.ticks, 1);
        assert_eq!(out.report.placement_latency.count, 0);
        // One tick + drain + shutdown.
        assert_eq!(out.report.events_processed, 3);
    }

    #[test]
    fn queued_arrivals_accumulate_latency() {
        // Several same-slot arrivals on a tiny queue under Block: the
        // overflow waits a full slot at the door, showing up in p-max.
        let mut jobs = workload(6, 3);
        for j in &mut jobs {
            j.arrival_slot = 0;
        }
        let config = ServeConfig {
            queue_capacity: 2,
            ..ServeConfig::default()
        };
        let mut daemon = ServeDaemon::new(cluster(), quiet_options(), config);
        let out = daemon.run(&mut StaticPeakProvisioner, jobs);
        let r = &out.report;
        assert_eq!(r.sim.completed, 6, "blocking loses nobody: {r:?}");
        assert_eq!(r.queue.blocked, 4);
        assert_eq!(r.queue.high_water, 2);
        assert!(
            r.placement_latency.max_micros >= 10_000_000.0,
            "door-blocked arrivals wait at least one slot: {r:?}"
        );
    }

    #[test]
    fn shed_oldest_drops_jobs_under_overload() {
        let mut jobs = workload(8, 4);
        for j in &mut jobs {
            j.arrival_slot = 0;
        }
        let config = ServeConfig {
            queue_capacity: 3,
            policy: BackpressurePolicy::ShedOldest,
            ..ServeConfig::default()
        };
        let mut daemon = ServeDaemon::new(cluster(), quiet_options(), config);
        let out = daemon.run(&mut StaticPeakProvisioner, jobs);
        let r = &out.report;
        assert_eq!(r.queue.shed, 5);
        assert_eq!(r.sim.num_jobs, 3, "shed jobs never reach the engine");
        assert_eq!(r.sim.completed, 3);
    }

    #[test]
    fn reject_new_turns_overflow_away() {
        let mut jobs = workload(8, 5);
        for j in &mut jobs {
            j.arrival_slot = 0;
        }
        let config = ServeConfig {
            queue_capacity: 3,
            policy: BackpressurePolicy::RejectNew,
            ..ServeConfig::default()
        };
        let mut daemon = ServeDaemon::new(cluster(), quiet_options(), config);
        let out = daemon.run(&mut StaticPeakProvisioner, jobs);
        let r = &out.report;
        assert_eq!(r.queue.rejected, 5);
        assert_eq!(r.sim.num_jobs, 3);
        assert_eq!(r.placement_latency.count, 3);
    }

    #[test]
    fn deadlines_expire_door_blocked_jobs_with_full_accounting() {
        use crate::slo::DeadlineConfig;
        // Six same-slot arrivals through a 2-deep queue under Block: the
        // first tick places two; the four door-blocked jobs out-wait a
        // 5-second deadline before the next tick and are expired, never
        // reaching the engine.
        let mut jobs = workload(6, 9);
        for j in &mut jobs {
            j.arrival_slot = 0;
        }
        let config = ServeConfig {
            queue_capacity: 2,
            deadlines: DeadlineConfig::uniform(5_000_000),
            ..ServeConfig::default()
        };
        let mut daemon = ServeDaemon::new(cluster(), quiet_options(), config);
        let out = daemon.run(&mut StaticPeakProvisioner, jobs);
        let r = &out.report;
        assert_eq!(r.slo.expired, 4, "{r:?}");
        assert_eq!(r.queue.expired, 4);
        assert_eq!(r.sim.num_jobs, 2, "expired jobs never reach the engine");
        assert_eq!(r.sim.completed, 2);
        assert_eq!(r.slo.deadline_hits, 2, "same-tick placements hit");
        assert_eq!(r.slo.deadline_misses, 0);
        // Conservation: offered == engine jobs + expired.
        assert_eq!(r.sim.num_jobs + r.slo.expired as usize, 6);
    }

    #[test]
    fn unbounded_deadlines_change_nothing() {
        let jobs = workload(20, 10);
        let run = |config: ServeConfig| {
            let mut daemon = ServeDaemon::new(cluster(), quiet_options(), config);
            let out = daemon.run(&mut StaticPeakProvisioner, jobs.clone());
            serde::json::to_string(&out.report)
        };
        let plain = run(ServeConfig::default());
        let unbounded = run(ServeConfig {
            deadlines: crate::slo::DeadlineConfig::unbounded(),
            ..ServeConfig::default()
        });
        assert_eq!(plain, unbounded);
    }

    /// Never places; records every service-level change it is told about.
    struct LevelProbe {
        levels: Vec<u8>,
    }
    impl Provisioner for LevelProbe {
        fn name(&self) -> &str {
            "level-probe"
        }
        fn provision(&mut self, _: &corp_sim::SlotContext<'_>) -> corp_sim::ProvisionPlan {
            corp_sim::ProvisionPlan::default()
        }
        fn set_service_level(&mut self, level: u8) {
            self.levels.push(level);
        }
    }

    #[test]
    fn brownout_ladder_escalates_and_recovers_deterministically() {
        use crate::brownout::{BrownoutConfig, BrownoutTrigger};
        // Five same-slot arrivals trip the depth trigger on the first
        // tick; the queue is empty afterwards (everything drained into the
        // engine), so the controller steps back down after two calm ticks.
        let mut jobs = workload(5, 11);
        for j in &mut jobs {
            j.arrival_slot = 0;
        }
        let config = ServeConfig {
            brownout: Some(BrownoutConfig {
                high_depth: 4,
                low_depth: 0,
                latency_high_micros: u64::MAX,
                recovery_ticks: 2,
            }),
            ..ServeConfig::default()
        };
        let options = SimulationOptions {
            max_slots: 6,
            measure_decision_time: false,
            ..SimulationOptions::default()
        };
        let mut probe = LevelProbe { levels: Vec::new() };
        let mut daemon = ServeDaemon::new(cluster(), options, config);
        let out = daemon.run(&mut probe, jobs);
        let b = &out.report.brownout;
        assert_eq!(b.escalations, 1, "{b:?}");
        assert_eq!(b.recoveries, 1);
        assert_eq!(b.max_rung, 1);
        assert_eq!(b.final_rung, 0);
        assert_eq!(b.transitions.len(), 2);
        assert_eq!(b.transitions[0].trigger, BrownoutTrigger::QueueDepth);
        assert_eq!(b.transitions[0].at_micros, 0, "tripped on the first tick");
        assert_eq!(b.transitions[1].trigger, BrownoutTrigger::Recovery);
        assert_eq!(
            probe.levels,
            vec![1, 0],
            "provisioner told to degrade, then restored"
        );
    }

    #[test]
    fn reject_new_rung_overrides_the_admission_policy() {
        use crate::brownout::BrownoutConfig;
        // A steady two-per-slot arrival stream against a depth trigger of
        // 1 climbs the whole ladder; once RejectNew is reached, later
        // queue-full arrivals are rejected even though the configured
        // policy is Block.
        let mut jobs = workload(16, 12);
        for (i, j) in jobs.iter_mut().enumerate() {
            j.arrival_slot = (i / 2) as u64;
        }
        let config = ServeConfig {
            queue_capacity: 1,
            policy: BackpressurePolicy::Block,
            brownout: Some(BrownoutConfig {
                high_depth: 1,
                low_depth: 0,
                latency_high_micros: u64::MAX,
                recovery_ticks: 100,
            }),
            ..ServeConfig::default()
        };
        let options = SimulationOptions {
            max_slots: 12,
            measure_decision_time: false,
            ..SimulationOptions::default()
        };
        let mut probe = LevelProbe { levels: Vec::new() };
        let mut daemon = ServeDaemon::new(cluster(), options, config);
        let out = daemon.run(&mut probe, jobs);
        let r = &out.report;
        assert_eq!(r.brownout.max_rung, 3, "{r:?}");
        assert!(
            r.queue.rejected > 0,
            "reject-new rung must turn arrivals away: {r:?}"
        );
        assert!(r.queue.blocked > 0, "pre-escalation arrivals blocked");
        assert_eq!(
            probe.levels,
            vec![1, 2, 2],
            "service level saturates at 2 while the ladder reaches rung 3"
        );
    }

    #[test]
    fn run_accepts_any_arrival_iterator() {
        // The same stream fed as a Vec and as a boxed lazy iterator must
        // produce byte-identical reports.
        let jobs = workload(25, 13);
        let from_vec = {
            let mut daemon = ServeDaemon::new(cluster(), quiet_options(), ServeConfig::default());
            let out = daemon.run(&mut StaticPeakProvisioner, jobs.clone());
            serde::json::to_string(&out.report)
        };
        let from_iter = {
            let mut daemon = ServeDaemon::new(cluster(), quiet_options(), ServeConfig::default());
            let mut stream = jobs.clone().into_iter();
            let out = daemon.run(
                &mut StaticPeakProvisioner,
                std::iter::from_fn(move || stream.next()),
            );
            serde::json::to_string(&out.report)
        };
        assert_eq!(from_vec, from_iter);
    }

    #[test]
    fn out_of_order_arrivals_clamp_to_the_stream_frontier() {
        // A straggler spec behind the frontier is admitted at the frontier
        // (a live daemon cannot admit into the past) and still completes.
        let mut jobs = workload(4, 14);
        jobs[0].arrival_slot = 5;
        jobs[1].arrival_slot = 2; // behind the frontier: clamps to 5
        jobs[2].arrival_slot = 6;
        jobs[3].arrival_slot = 6;
        let mut daemon = ServeDaemon::new(cluster(), quiet_options(), ServeConfig::default());
        let out = daemon.run(&mut StaticPeakProvisioner, jobs);
        let r = &out.report;
        assert_eq!(r.sim.completed, 4, "{r:?}");
        assert_eq!(r.queue.admitted, 4);
    }

    #[test]
    fn fault_timeline_runs_unchanged_in_serving_mode() {
        use corp_faults::{FaultEvent, TimedFault};
        let jobs = workload(10, 6);
        let num_vms = cluster().vms.len();
        let timeline = || {
            let mut ev = Vec::new();
            for vm in 0..num_vms {
                ev.push(TimedFault {
                    slot: 3,
                    event: FaultEvent::VmCrash { vm },
                });
                ev.push(TimedFault {
                    slot: 20,
                    event: FaultEvent::VmRecover { vm },
                });
            }
            FaultTimeline::new(ev)
        };
        let mut sim = corp_sim::Simulation::new(cluster(), jobs.clone(), quiet_options())
            .with_fault_timeline(timeline());
        let batch = sim.run(&mut StaticPeakProvisioner);
        let mut daemon = ServeDaemon::new(cluster(), quiet_options(), ServeConfig::default())
            .with_fault_timeline(timeline());
        let served = daemon.run(&mut StaticPeakProvisioner, jobs);
        assert_eq!(
            serde::json::to_string(&batch),
            serde::json::to_string(&served.report.sim),
            "fault scenarios must play out identically in serve mode"
        );
        let faults = served.report.sim.faults.expect("fault stats present");
        assert!(faults.jobs_killed > 0);
    }

    #[test]
    fn paced_replay_matches_virtual_time_results() {
        // A tiny workload at a very high pacing multiplier: slow enough to
        // exercise the sleep path, fast enough for CI. The report must be
        // byte-identical to the unpaced run — pacing only stretches wall
        // time.
        let mut jobs = workload(3, 7);
        for j in &mut jobs {
            j.arrival_slot = 0;
        }
        let run = |speed| {
            let config = ServeConfig {
                speed,
                ..ServeConfig::default()
            };
            let mut daemon = ServeDaemon::new(cluster(), quiet_options(), config);
            let out = daemon.run(&mut StaticPeakProvisioner, jobs.clone());
            serde::json::to_string(&out.report)
        };
        let unpaced = run(ReplaySpeed::Infinite);
        let paced = run(ReplaySpeed::Times(2_000_000.0));
        assert_eq!(unpaced, paced);
    }

    #[test]
    fn slot_cap_registers_stragglers_like_batch_mode() {
        /// Never places anything.
        struct DoNothing;
        impl Provisioner for DoNothing {
            fn name(&self) -> &str {
                "noop"
            }
            fn provision(&mut self, _: &corp_sim::SlotContext<'_>) -> corp_sim::ProvisionPlan {
                corp_sim::ProvisionPlan::default()
            }
        }
        let jobs = workload(5, 8);
        let options = SimulationOptions {
            max_slots: 10,
            measure_decision_time: false,
            ..SimulationOptions::default()
        };
        let mut sim = corp_sim::Simulation::new(cluster(), jobs.clone(), options.clone());
        let batch = sim.run(&mut DoNothing);
        let mut daemon = ServeDaemon::new(cluster(), options, ServeConfig::default());
        let served = daemon.run(&mut DoNothing, jobs);
        assert_eq!(served.report.sim.unfinished, 5);
        assert_eq!(
            serde::json::to_string(&batch),
            serde::json::to_string(&served.report.sim)
        );
    }
}
