//! Virtual time for the serving daemon.
//!
//! All event timestamps are virtual microseconds from daemon start; one
//! provisioning slot spans [`ServeConfig::slot_micros`](crate::ServeConfig)
//! of virtual time (10 s by default, the paper's slot length). Virtual time
//! is what reports and latency percentiles are measured in, so runs are
//! byte-identical no matter how fast the host executes them. Wall time
//! enters only through [`ReplaySpeed`] pacing, which *sleeps* to slow a
//! replay down to N× real time but never feeds wall readings back into the
//! simulation.

use std::time::{Duration, Instant};

/// Virtual microseconds per simulated second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// How fast to replay virtual time against the wall clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplaySpeed {
    /// No pacing: consume events as fast as the host allows (virtual-time
    /// batch mode, the only mode the determinism gates exercise).
    Infinite,
    /// N× real time: one virtual second passes in `1/N` wall seconds.
    Times(f64),
}

impl ReplaySpeed {
    /// Parses a CLI-style speed: `inf`/`infinite`/`max` or a positive
    /// multiplier like `1`, `10`, `0.5`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "inf" | "infinite" | "max" => Ok(ReplaySpeed::Infinite),
            other => match other.parse::<f64>() {
                Ok(v) if v.is_finite() && v > 0.0 => Ok(ReplaySpeed::Times(v)),
                _ => Err(format!(
                    "invalid replay speed `{s}`: expected `inf` or a positive number"
                )),
            },
        }
    }

    /// Whether this speed involves wall-clock pacing at all.
    pub fn is_paced(&self) -> bool {
        matches!(self, ReplaySpeed::Times(_))
    }
}

/// The daemon's clock: monotone virtual time plus optional wall pacing.
#[derive(Debug)]
pub struct VirtualClock {
    now_micros: u64,
    slot_micros: u64,
    speed: ReplaySpeed,
    wall_start: Instant,
}

impl VirtualClock {
    /// Starts a clock at virtual time zero.
    pub fn new(slot_micros: u64, speed: ReplaySpeed) -> Self {
        VirtualClock {
            now_micros: 0,
            slot_micros: slot_micros.max(1),
            speed,
            wall_start: Instant::now(),
        }
    }

    /// Current virtual time in microseconds.
    pub fn now(&self) -> u64 {
        self.now_micros
    }

    /// Virtual microseconds per slot.
    pub fn slot_micros(&self) -> u64 {
        self.slot_micros
    }

    /// The virtual timestamp at which `slot` begins.
    pub fn time_of_slot(&self, slot: u64) -> u64 {
        slot.saturating_mul(self.slot_micros)
    }

    /// The slot containing virtual time `micros`.
    pub fn slot_of(&self, micros: u64) -> u64 {
        micros / self.slot_micros
    }

    /// Advances virtual time to `micros` (monotone: earlier targets are
    /// no-ops) and, when paced, sleeps until the wall clock catches up to
    /// `virtual elapsed / speed`.
    pub fn advance_to(&mut self, micros: u64) {
        if micros > self.now_micros {
            self.now_micros = micros;
        }
        if let ReplaySpeed::Times(speed) = self.speed {
            let target_wall = Duration::from_secs_f64(self.now_micros as f64 / 1e6 / speed);
            let elapsed = self.wall_start.elapsed();
            if target_wall > elapsed {
                std::thread::sleep(target_wall - elapsed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_inf_and_positive_numbers() {
        assert_eq!(ReplaySpeed::parse("inf"), Ok(ReplaySpeed::Infinite));
        assert_eq!(ReplaySpeed::parse("MAX"), Ok(ReplaySpeed::Infinite));
        assert_eq!(ReplaySpeed::parse("10"), Ok(ReplaySpeed::Times(10.0)));
        assert_eq!(ReplaySpeed::parse("0.5"), Ok(ReplaySpeed::Times(0.5)));
        assert!(ReplaySpeed::parse("0").is_err());
        assert!(ReplaySpeed::parse("-3").is_err());
        assert!(ReplaySpeed::parse("NaN").is_err());
        assert!(ReplaySpeed::parse("warp").is_err());
    }

    #[test]
    fn virtual_time_is_monotone_and_slot_math_holds() {
        let mut c = VirtualClock::new(10 * MICROS_PER_SEC, ReplaySpeed::Infinite);
        assert_eq!(c.now(), 0);
        assert_eq!(c.time_of_slot(3), 30 * MICROS_PER_SEC);
        assert_eq!(c.slot_of(29_999_999), 2);
        assert_eq!(c.slot_of(30_000_000), 3);
        c.advance_to(5_000_000);
        assert_eq!(c.now(), 5_000_000);
        c.advance_to(1_000_000); // going backwards is a no-op
        assert_eq!(c.now(), 5_000_000);
    }

    #[test]
    fn paced_clock_sleeps_towards_wall_target() {
        // 1 virtual second at 100x => ~10ms wall.
        let mut c = VirtualClock::new(MICROS_PER_SEC, ReplaySpeed::Times(100.0));
        let start = Instant::now();
        c.advance_to(MICROS_PER_SEC);
        assert!(
            start.elapsed() >= Duration::from_millis(8),
            "pacing must actually sleep"
        );
    }
}
