//! The daemon's event queue: a binary min-heap over virtual timestamps
//! with a deterministic total order.
//!
//! Events at the same virtual time are ordered by class — arrivals land
//! before the provisioning tick that would admit them, completions are
//! notifications emitted *by* a tick and sort after it, and drain/shutdown
//! close the stream — and within a class by insertion sequence. The
//! sequence number makes the order total, so a heap pop never depends on
//! allocator or hash state: identical pushes ⇒ identical pops ⇒
//! byte-identical runs.

use corp_sim::JobId;
use corp_trace::JobSpec;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One daemon event.
#[derive(Debug)]
pub enum ServeEvent {
    /// A job hits the front door (carries its spec).
    Arrival(Box<JobSpec>),
    /// A job finished — emitted by the tick that completed it, consumed as
    /// a notification (counters, completion hooks for external observers).
    Completion(JobId),
    /// A provisioning-window tick: drain the admission queue into the
    /// engine and run one slot.
    Tick,
    /// The workload is exhausted: verify nothing is left queued.
    Drain,
    /// Stop the event loop.
    Shutdown,
}

impl ServeEvent {
    /// Same-timestamp ordering class (lower pops first).
    fn class(&self) -> u8 {
        match self {
            ServeEvent::Arrival(_) => 0,
            ServeEvent::Tick => 1,
            ServeEvent::Completion(_) => 2,
            ServeEvent::Drain => 3,
            ServeEvent::Shutdown => 4,
        }
    }
}

/// An event stamped with its virtual due time and insertion sequence.
#[derive(Debug)]
struct QueuedEvent {
    time: u64,
    class: u8,
    seq: u64,
    event: ServeEvent,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (time, class, seq) on top.
        (other.time, other.class, other.seq).cmp(&(self.time, self.class, self.seq))
    }
}

/// Deterministic min-heap of [`ServeEvent`]s.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<QueuedEvent>,
    next_seq: u64,
    pushed: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at virtual time `time`.
    pub fn push(&mut self, time: u64, event: ServeEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(QueuedEvent {
            time,
            class: event.class(),
            seq,
            event,
        });
    }

    /// Pops the earliest event: `(time, event)`.
    pub fn pop(&mut self) -> Option<(u64, ServeEvent)> {
        self.heap.pop().map(|q| (q.time, q.event))
    }

    /// Number of events currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever pushed (the daemon's events-processed counter
    /// once the loop drains the queue).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u64) -> Box<JobSpec> {
        Box::new(JobSpec {
            id,
            arrival_slot: 0,
            duration_slots: 1,
            class: corp_trace::IntensityClass::Balanced,
            requested: [1.0, 1.0, 1.0],
            demand: vec![[0.5, 0.5, 0.5]],
            slo_slots: 5,
            bandwidth_mbps: 0.02,
        })
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, ServeEvent::Tick);
        q.push(10, ServeEvent::Tick);
        q.push(20, ServeEvent::Tick);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn same_time_orders_by_class_then_seq() {
        let mut q = EventQueue::new();
        q.push(10, ServeEvent::Shutdown);
        q.push(10, ServeEvent::Tick);
        q.push(10, ServeEvent::Arrival(spec(1)));
        q.push(10, ServeEvent::Arrival(spec(2)));
        q.push(10, ServeEvent::Drain);
        q.push(10, ServeEvent::Completion(9));
        let order: Vec<String> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                ServeEvent::Arrival(s) => format!("arrival{}", s.id),
                ServeEvent::Tick => "tick".into(),
                ServeEvent::Completion(_) => "completion".into(),
                ServeEvent::Drain => "drain".into(),
                ServeEvent::Shutdown => "shutdown".into(),
            })
            .collect();
        assert_eq!(
            order,
            vec![
                "arrival1".to_string(),
                "arrival2".to_string(),
                "tick".to_string(),
                "completion".to_string(),
                "drain".to_string(),
                "shutdown".to_string(),
            ],
            "arrivals (FIFO) before the tick, notifications after, drain/shutdown last"
        );
    }

    #[test]
    fn counters_track_pushes() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, ServeEvent::Tick);
        q.push(2, ServeEvent::Tick);
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.total_pushed(), 2);
    }
}
