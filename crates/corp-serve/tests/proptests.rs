//! Property tests for the admission queue's conservation law.
//!
//! Whatever interleaving of offers, drains, and deadline expiries the
//! daemon throws at the queue, and under every backpressure policy, two
//! invariants must hold after every single operation:
//!
//! 1. **Conservation** — every offered job is in exactly one bucket:
//!    `drained + queued + door + shed + rejected + expired == offered`.
//!    A violated identity means a job was lost or double-counted, the
//!    exact failure the resilience experiment's zero-jobs-lost gate
//!    exists to catch.
//! 2. **Boundedness** — queue depth never exceeds the configured
//!    capacity, no matter how shedding, expiry refill, or door admission
//!    interleave.

use corp_serve::{AdmissionQueue, BackpressurePolicy, DeadlineConfig};
use corp_trace::{IntensityClass, JobSpec};
use proptest::prelude::*;

fn spec(id: u64) -> Box<JobSpec> {
    Box::new(JobSpec {
        id,
        arrival_slot: 0,
        duration_slots: 1,
        class: IntensityClass::Balanced,
        requested: [1.0, 1.0, 1.0],
        demand: vec![[0.5, 0.5, 0.5]],
        slo_slots: 5,
        bandwidth_mbps: 0.02,
    })
}

/// One queue operation: the daemon's tick loop decomposed.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Offer one arrival after advancing virtual time by the delta.
    Offer(u64),
    /// Expire overdue waiters, then drain the queue (one tick).
    Tick(u64),
    /// Expire without draining (a tick where the engine takes nothing).
    ExpireOnly(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..3, 0u64..30).prop_map(|(kind, dt)| match kind {
        0 => Op::Offer(dt),
        1 => Op::Tick(dt),
        _ => Op::ExpireOnly(dt),
    })
}

fn policy_strategy() -> impl Strategy<Value = BackpressurePolicy> {
    (0usize..3).prop_map(|kind| match kind {
        0 => BackpressurePolicy::Block,
        1 => BackpressurePolicy::ShedOldest,
        _ => BackpressurePolicy::RejectNew,
    })
}

proptest! {
    #[test]
    fn conservation_holds_across_arbitrary_interleavings(
        ops in prop::collection::vec(op_strategy(), 1..200),
        capacity in 1usize..8,
        policy in policy_strategy(),
        deadline in (0usize..2, 1u64..40).prop_map(|(some, d)| (some == 1).then_some(d)),
    ) {
        let deadlines = match deadline {
            Some(d) => DeadlineConfig::uniform(d),
            None => DeadlineConfig::unbounded(),
        };
        let mut q = AdmissionQueue::new(capacity, policy);
        let mut now: u64 = 0;
        let mut next_id: u64 = 0;
        let mut offered: u64 = 0;
        let mut drained: u64 = 0;
        let mut expired_ids: Vec<u64> = Vec::new();
        let mut drain_buf = Vec::new();
        for &op in &ops {
            match op {
                Op::Offer(dt) => {
                    now += dt;
                    q.offer(spec(next_id), now);
                    next_id += 1;
                    offered += 1;
                }
                Op::Tick(dt) => {
                    now += dt;
                    q.expire(now, &deadlines, &mut expired_ids);
                    drain_buf.clear();
                    q.drain_into(&mut drain_buf);
                    drained += drain_buf.len() as u64;
                }
                Op::ExpireOnly(dt) => {
                    now += dt;
                    q.expire(now, &deadlines, &mut expired_ids);
                }
            }
            let stats = q.stats();
            prop_assert!(
                q.depth() <= capacity,
                "depth {} exceeds capacity {}", q.depth(), capacity
            );
            prop_assert_eq!(
                drained
                    + q.depth() as u64
                    + q.door_depth() as u64
                    + stats.shed
                    + stats.rejected
                    + stats.expired,
                offered,
                "conservation violated after {:?} (policy {:?}, deadline {:?})",
                op, policy, deadline
            );
            prop_assert_eq!(
                stats.expired, expired_ids.len() as u64,
                "expired counter must match the ids handed back"
            );
        }
        // Final flush: everything still waiting must drain out, leaving
        // every offered job in a terminal bucket.
        drain_buf.clear();
        q.drain_into(&mut drain_buf);
        drained += drain_buf.len() as u64;
        while q.depth() > 0 || q.door_depth() > 0 {
            drain_buf.clear();
            q.drain_into(&mut drain_buf);
            drained += drain_buf.len() as u64;
        }
        let stats = q.stats();
        prop_assert_eq!(
            drained + stats.shed + stats.rejected + stats.expired,
            offered,
            "terminal conservation violated"
        );
    }

    #[test]
    fn expiry_only_sheds_strictly_overdue_jobs(
        deadline in 1u64..50,
        waits in prop::collection::vec(0u64..100, 1..30),
    ) {
        // Offer everything at t=0, expire at t=wait: a job expires iff
        // wait > deadline, exactly.
        for (i, &wait) in waits.iter().enumerate() {
            let mut q = AdmissionQueue::new(64, BackpressurePolicy::Block);
            q.offer(spec(i as u64), 0);
            let mut expired = Vec::new();
            q.expire(wait, &DeadlineConfig::uniform(deadline), &mut expired);
            if wait > deadline {
                prop_assert_eq!(&expired, &vec![i as u64]);
                prop_assert_eq!(q.depth(), 0);
            } else {
                prop_assert!(expired.is_empty());
                prop_assert_eq!(q.depth(), 1);
            }
        }
    }
}
