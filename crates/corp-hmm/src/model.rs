//! The HMM parameter triple `lambda = (A, B, pi)` (paper Eqs. 9-11).

use serde::{Deserialize, Serialize};

/// A discrete hidden Markov model with `H` states and `M` observation
/// symbols.
///
/// * `a[i][j] = P(q_{t+1} = S_j | q_t = S_i)` — transition matrix (Eq. 9);
/// * `b[j][k] = P(O_t = k | q_t = S_j)` — emission matrix (Eq. 10);
/// * `pi[i] = P(q_1 = S_i)` — initial distribution (Eq. 11).
///
/// Rows are validated to be stochastic on construction; Baum-Welch
/// re-estimation preserves the invariant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hmm {
    /// Number of hidden states `H`.
    pub num_states: usize,
    /// Number of observation symbols `M`.
    pub num_symbols: usize,
    /// Row-major transition probabilities, `num_states x num_states`.
    pub a: Vec<Vec<f64>>,
    /// Row-major emission probabilities, `num_states x num_symbols`.
    pub b: Vec<Vec<f64>>,
    /// Initial state distribution, length `num_states`.
    pub pi: Vec<f64>,
}

fn is_distribution(row: &[f64]) -> bool {
    row.iter().all(|&p| (0.0..=1.0 + 1e-9).contains(&p))
        && (row.iter().sum::<f64>() - 1.0).abs() < 1e-6
}

impl Hmm {
    /// Creates a validated model.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent or any row is not a probability
    /// distribution.
    pub fn new(a: Vec<Vec<f64>>, b: Vec<Vec<f64>>, pi: Vec<f64>) -> Self {
        let h = pi.len();
        assert!(h > 0, "need at least one state");
        assert_eq!(a.len(), h, "A must have one row per state");
        assert!(a.iter().all(|r| r.len() == h), "A must be square");
        assert_eq!(b.len(), h, "B must have one row per state");
        let m = b[0].len();
        assert!(m > 0, "need at least one symbol");
        assert!(
            b.iter().all(|r| r.len() == m),
            "B rows must agree on symbol count"
        );
        assert!(is_distribution(&pi), "pi must be a distribution: {pi:?}");
        for (i, row) in a.iter().enumerate() {
            assert!(
                is_distribution(row),
                "A row {i} is not a distribution: {row:?}"
            );
        }
        for (j, row) in b.iter().enumerate() {
            assert!(
                is_distribution(row),
                "B row {j} is not a distribution: {row:?}"
            );
        }
        Hmm {
            num_states: h,
            num_symbols: m,
            a,
            b,
            pi,
        }
    }

    /// A uniform model: every transition, emission, and initial probability
    /// equal — the standard agnostic starting point for Baum-Welch when
    /// nothing is known.
    pub fn uniform(num_states: usize, num_symbols: usize) -> Self {
        assert!(num_states > 0 && num_symbols > 0);
        Hmm {
            num_states,
            num_symbols,
            a: vec![vec![1.0 / num_states as f64; num_states]; num_states],
            b: vec![vec![1.0 / num_symbols as f64; num_symbols]; num_states],
            pi: vec![1.0 / num_states as f64; num_states],
        }
    }

    /// A mildly perturbed uniform model. Exactly uniform parameters are a
    /// fixed point of Baum-Welch (all states indistinguishable), so
    /// re-estimation needs symmetry breaking; the perturbation is
    /// deterministic in `seed`.
    pub fn near_uniform(num_states: usize, num_symbols: usize, seed: u64) -> Self {
        let mut m = Self::uniform(num_states, num_symbols);
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut noise = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.1
        };
        for row in m.a.iter_mut().chain(m.b.iter_mut()) {
            for p in row.iter_mut() {
                *p = (*p + noise() * *p).max(1e-3);
            }
            let sum: f64 = row.iter().sum();
            for p in row.iter_mut() {
                *p /= sum;
            }
        }
        m
    }

    /// The paper's 3-state (OP/NP/UP), 3-symbol (peak/center/valley)
    /// provisioning model, initialized with a sticky-diagonal prior: the
    /// provisioning regime tends to persist, and each regime prefers its
    /// namesake symbol (OP -> peak of unused resource, UP -> valley).
    pub fn paper_default() -> Self {
        Hmm::new(
            vec![
                vec![0.6, 0.3, 0.1],
                vec![0.2, 0.6, 0.2],
                vec![0.1, 0.3, 0.6],
            ],
            vec![
                vec![0.6, 0.3, 0.1],
                vec![0.2, 0.6, 0.2],
                vec![0.1, 0.3, 0.6],
            ],
            vec![1.0 / 3.0; 3],
        )
    }

    /// Validates an observation sequence against the symbol alphabet.
    ///
    /// # Panics
    ///
    /// Panics if any symbol is out of range.
    pub fn check_observations(&self, obs: &[usize]) {
        for (t, &o) in obs.iter().enumerate() {
            assert!(
                o < self.num_symbols,
                "observation {o} at position {t} exceeds alphabet size {}",
                self.num_symbols
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_model_is_valid() {
        let m = Hmm::uniform(3, 3);
        assert_eq!(m.num_states, 3);
        assert_eq!(m.num_symbols, 3);
        assert!((m.pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_default_has_three_states_three_symbols() {
        let m = Hmm::paper_default();
        assert_eq!(m.num_states, 3);
        assert_eq!(m.num_symbols, 3);
        for row in m.a.iter().chain(m.b.iter()) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn near_uniform_rows_remain_stochastic_but_not_exactly_uniform() {
        let m = Hmm::near_uniform(3, 3, 42);
        for row in m.a.iter().chain(m.b.iter()) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        let uniform = 1.0 / 3.0;
        assert!(
            m.a.iter().flatten().any(|&p| (p - uniform).abs() > 1e-6),
            "perturbation must break symmetry"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_non_stochastic_transition_row() {
        Hmm::new(
            vec![vec![0.9, 0.9], vec![0.5, 0.5]],
            vec![vec![1.0], vec![1.0]],
            vec![0.5, 0.5],
        );
    }

    #[test]
    #[should_panic]
    fn rejects_shape_mismatch() {
        Hmm::new(
            vec![vec![1.0]],
            vec![vec![0.5, 0.5], vec![0.5, 0.5]],
            vec![1.0],
        );
    }

    #[test]
    #[should_panic]
    fn check_observations_rejects_out_of_range() {
        Hmm::uniform(2, 2).check_observations(&[0, 1, 2]);
    }
}
