//! Viterbi decoding (paper Eq. 16 context).
//!
//! "In implementation, we use Viterbi algorithm to find the single best
//! state sequence (path) ... maximizing P(Q, O | lambda)." Log-space
//! recursion avoids underflow on long sequences.

use crate::model::Hmm;

/// Result of Viterbi decoding.
#[derive(Debug, Clone, PartialEq)]
pub struct ViterbiPath {
    /// The most likely state sequence `Q* = q_1* ... q_T*`.
    pub states: Vec<usize>,
    /// `log P(Q*, O | lambda)`.
    pub log_prob: f64,
}

/// Finds the single best state sequence for `obs` under `hmm`.
///
/// # Panics
///
/// Panics if `obs` is empty or contains out-of-range symbols.
pub fn viterbi(hmm: &Hmm, obs: &[usize]) -> ViterbiPath {
    assert!(!obs.is_empty(), "observation sequence must be non-empty");
    hmm.check_observations(obs);
    let h = hmm.num_states;
    let t_len = obs.len();
    let ln = |p: f64| if p > 0.0 { p.ln() } else { f64::NEG_INFINITY };

    // delta[t][i]: best log-prob of any path ending in state i at t.
    let mut delta = vec![vec![f64::NEG_INFINITY; h]; t_len];
    let mut psi = vec![vec![0usize; h]; t_len];

    for i in 0..h {
        delta[0][i] = ln(hmm.pi[i]) + ln(hmm.b[i][obs[0]]);
    }
    for t in 1..t_len {
        for j in 0..h {
            let mut best = f64::NEG_INFINITY;
            let mut arg = 0;
            for i in 0..h {
                let cand = delta[t - 1][i] + ln(hmm.a[i][j]);
                if cand > best {
                    best = cand;
                    arg = i;
                }
            }
            delta[t][j] = best + ln(hmm.b[j][obs[t]]);
            psi[t][j] = arg;
        }
    }

    let (mut last, mut log_prob) = (0usize, f64::NEG_INFINITY);
    for (i, &d) in delta[t_len - 1].iter().enumerate() {
        if d > log_prob {
            log_prob = d;
            last = i;
        }
    }
    let mut states = vec![0usize; t_len];
    states[t_len - 1] = last;
    for t in (0..t_len - 1).rev() {
        states[t] = psi[t + 1][states[t + 1]];
    }
    ViterbiPath { states, log_prob }
}

/// Reusable buffers for [`viterbi_last_in`]: two rolling rows of the
/// `delta` trellis. Cleared and refilled on every call — reuse never
/// changes a result, it only skips the per-call allocations.
#[derive(Debug, Clone, Default)]
pub struct ViterbiScratch {
    prev: Vec<f64>,
    cur: Vec<f64>,
}

impl ViterbiScratch {
    /// An empty scratch; sized lazily on first use.
    pub fn new() -> Self {
        ViterbiScratch::default()
    }
}

/// The final state of the single best path and `log P(Q*, O | lambda)`,
/// computed through caller-provided scratch without allocating.
///
/// Runs the same log-space recurrence as [`viterbi`] in the same
/// arithmetic order, so the returned pair is bit-identical to
/// `(*path.states.last().unwrap(), path.log_prob)`; it just keeps only the
/// rolling `delta` rows instead of the full trellis (the last state is the
/// arg-max of the final row — no backtrack needed).
///
/// # Panics
///
/// Panics if `obs` is empty or contains out-of-range symbols.
pub fn viterbi_last_in(hmm: &Hmm, obs: &[usize], scratch: &mut ViterbiScratch) -> (usize, f64) {
    assert!(!obs.is_empty(), "observation sequence must be non-empty");
    hmm.check_observations(obs);
    let h = hmm.num_states;
    let t_len = obs.len();
    let ln = |p: f64| if p > 0.0 { p.ln() } else { f64::NEG_INFINITY };

    let prev = &mut scratch.prev;
    let cur = &mut scratch.cur;
    prev.clear();
    prev.resize(h, f64::NEG_INFINITY);
    cur.clear();
    cur.resize(h, f64::NEG_INFINITY);

    for i in 0..h {
        prev[i] = ln(hmm.pi[i]) + ln(hmm.b[i][obs[0]]);
    }
    for t in 1..t_len {
        for j in 0..h {
            let mut best = f64::NEG_INFINITY;
            for i in 0..h {
                let cand = prev[i] + ln(hmm.a[i][j]);
                if cand > best {
                    best = cand;
                }
            }
            cur[j] = best + ln(hmm.b[j][obs[t]]);
        }
        std::mem::swap(prev, cur);
    }

    let (mut last, mut log_prob) = (0usize, f64::NEG_INFINITY);
    for (i, &d) in prev.iter().enumerate() {
        if d > log_prob {
            log_prob = d;
            last = i;
        }
    }
    (last, log_prob)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_model() -> Hmm {
        Hmm::new(
            vec![vec![0.7, 0.3], vec![0.4, 0.6]],
            vec![vec![0.9, 0.1], vec![0.2, 0.8]],
            vec![0.6, 0.4],
        )
    }

    /// Brute-force the best path by enumeration.
    fn best_path_brute(hmm: &Hmm, obs: &[usize]) -> (Vec<usize>, f64) {
        let h = hmm.num_states;
        let t_len = obs.len();
        let mut best_p = f64::NEG_INFINITY;
        let mut best_path = Vec::new();
        for code in 0..(h as u64).pow(t_len as u32) {
            let mut c = code;
            let mut path = Vec::with_capacity(t_len);
            for _ in 0..t_len {
                path.push((c % h as u64) as usize);
                c /= h as u64;
            }
            let mut p = (hmm.pi[path[0]] * hmm.b[path[0]][obs[0]]).ln();
            for t in 1..t_len {
                p += (hmm.a[path[t - 1]][path[t]] * hmm.b[path[t]][obs[t]]).ln();
            }
            if p > best_p {
                best_p = p;
                best_path = path;
            }
        }
        (best_path, best_p)
    }

    #[test]
    fn viterbi_matches_brute_force() {
        let hmm = test_model();
        for obs in [
            vec![0],
            vec![1, 0],
            vec![0, 1, 1],
            vec![1, 1, 0, 0, 1],
            vec![0, 0, 0, 1, 1, 1],
        ] {
            let v = viterbi(&hmm, &obs);
            let (path, p) = best_path_brute(&hmm, &obs);
            assert!((v.log_prob - p).abs() < 1e-9, "obs {obs:?}");
            assert_eq!(v.states, path, "obs {obs:?}");
        }
    }

    #[test]
    fn decodes_obvious_emissions() {
        // Symbol 0 is overwhelmingly from state 0, symbol 1 from state 1.
        let hmm = Hmm::new(
            vec![vec![0.5, 0.5], vec![0.5, 0.5]],
            vec![vec![0.99, 0.01], vec![0.01, 0.99]],
            vec![0.5, 0.5],
        );
        let v = viterbi(&hmm, &[0, 0, 1, 1, 0]);
        assert_eq!(v.states, vec![0, 0, 1, 1, 0]);
    }

    #[test]
    fn sticky_transitions_smooth_the_path() {
        // With extremely sticky states and mildly informative emissions, a
        // single discordant observation should not flip the state.
        let hmm = Hmm::new(
            vec![vec![0.99, 0.01], vec![0.01, 0.99]],
            vec![vec![0.6, 0.4], vec![0.4, 0.6]],
            vec![0.5, 0.5],
        );
        let v = viterbi(&hmm, &[0, 0, 1, 0, 0]);
        assert_eq!(v.states, vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn log_prob_is_nonpositive() {
        let v = viterbi(&test_model(), &[0, 1, 0, 1]);
        assert!(v.log_prob <= 0.0);
    }

    #[test]
    fn handles_long_sequences_without_underflow() {
        let obs: Vec<usize> = (0..10_000).map(|t| (t / 11) % 2).collect();
        let v = viterbi(&test_model(), &obs);
        assert_eq!(v.states.len(), obs.len());
        assert!(v.log_prob.is_finite());
    }

    #[test]
    fn impossible_observation_yields_neg_infinity() {
        // State emissions that cannot produce symbol 1 at all.
        let hmm = Hmm::new(vec![vec![1.0]], vec![vec![1.0, 0.0]], vec![1.0]);
        let v = viterbi(&hmm, &[0, 1]);
        assert_eq!(v.log_prob, f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_sequence() {
        viterbi(&test_model(), &[]);
    }

    #[test]
    fn last_state_in_is_bit_identical_to_full_decode() {
        let hmm = test_model();
        let mut scratch = ViterbiScratch::new();
        // Reusing one scratch across calls of different lengths must keep
        // every result bit-identical to the allocating path.
        for obs in [
            vec![0],
            vec![1, 0],
            vec![0, 1, 1],
            vec![1, 1, 0, 0, 1],
            vec![0, 0, 0, 1, 1, 1],
            (0..500).map(|t| (t / 7) % 2).collect::<Vec<_>>(),
        ] {
            let full = viterbi(&hmm, &obs);
            let (last, log_prob) = viterbi_last_in(&hmm, &obs, &mut scratch);
            assert_eq!(last, *full.states.last().unwrap(), "obs {obs:?}");
            assert_eq!(log_prob.to_bits(), full.log_prob.to_bits(), "obs {obs:?}");
        }
    }

    #[test]
    #[should_panic]
    fn last_state_in_rejects_empty_sequence() {
        viterbi_last_in(&test_model(), &[], &mut ViterbiScratch::new());
    }
}
