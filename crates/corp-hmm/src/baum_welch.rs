//! Baum-Welch re-estimation of `lambda = (A, B, pi)`.
//!
//! The paper "use\[s\] the method in \[30\] to re-estimate the parameters
//! A, B, pi" — Stamp's exposition of the classic EM recursion. Each
//! iteration computes `gamma`/`xi` from the scaled forward/backward
//! variables and re-estimates:
//!
//! * `pi_i = gamma_1(i)`
//! * `a_ij = sum_t xi_t(i,j) / sum_t gamma_t(i)`
//! * `b_j(k) = sum_{t: O_t = k} gamma_t(j) / sum_t gamma_t(j)`
//!
//! Iterations stop when the log-likelihood improvement drops below a
//! tolerance or the iteration cap is hit. The likelihood is guaranteed
//! non-decreasing by EM theory; the test suite asserts it.

use crate::forward_backward::{backward_scaled, forward_scaled, log_likelihood};
use crate::model::Hmm;

/// Outcome of Baum-Welch training.
#[derive(Debug, Clone)]
pub struct BaumWelchReport {
    /// Log-likelihood after each iteration.
    pub log_likelihoods: Vec<f64>,
    /// Number of iterations executed.
    pub iterations: usize,
    /// True if stopping was due to convergence rather than the cap.
    pub converged: bool,
}

/// Re-estimates `hmm` in place from one observation sequence.
///
/// Returns the per-iteration log-likelihood trace. A small floor keeps
/// every probability strictly positive so that states never die (standard
/// practice for short training sequences).
///
/// # Panics
///
/// Panics if `obs` is empty, contains out-of-range symbols, or
/// `max_iters == 0`.
pub fn baum_welch(hmm: &mut Hmm, obs: &[usize], max_iters: usize, tol: f64) -> BaumWelchReport {
    assert!(!obs.is_empty(), "observation sequence must be non-empty");
    assert!(max_iters > 0, "need at least one iteration");
    hmm.check_observations(obs);

    const FLOOR: f64 = 1e-6;
    let h = hmm.num_states;
    let m = hmm.num_symbols;
    let t_len = obs.len();
    let mut lls: Vec<f64> = Vec::with_capacity(max_iters);
    let mut converged = false;

    for _iter in 0..max_iters {
        let fwd = forward_scaled(hmm, obs);
        let beta = backward_scaled(hmm, obs, &fwd.scale);
        let ll = log_likelihood(&fwd.scale);

        // gamma_t(i) and xi_t(i,j) accumulators.
        let mut gamma = vec![vec![0.0; h]; t_len];
        for t in 0..t_len {
            let mut sum = 0.0;
            for i in 0..h {
                gamma[t][i] = fwd.alpha[t][i] * beta[t][i];
                sum += gamma[t][i];
            }
            if sum > 0.0 {
                gamma[t].iter_mut().for_each(|g| *g /= sum);
            }
        }

        // Re-estimate pi.
        hmm.pi.copy_from_slice(&gamma[0]);

        // Re-estimate A from xi sums.
        let mut a_num = vec![vec![0.0; h]; h];
        let mut a_den = vec![0.0; h];
        for t in 0..t_len - 1 {
            // xi_t(i,j) proportional to alpha_t(i) a_ij b_j(O_{t+1}) beta_{t+1}(j)
            let mut xi = vec![vec![0.0; h]; h];
            let mut sum = 0.0;
            for i in 0..h {
                for j in 0..h {
                    let v = fwd.alpha[t][i] * hmm.a[i][j] * hmm.b[j][obs[t + 1]] * beta[t + 1][j];
                    xi[i][j] = v;
                    sum += v;
                }
            }
            if sum > 0.0 {
                for i in 0..h {
                    for j in 0..h {
                        a_num[i][j] += xi[i][j] / sum;
                    }
                    a_den[i] += gamma[t][i];
                }
            }
        }
        for i in 0..h {
            if a_den[i] > 0.0 {
                for j in 0..h {
                    hmm.a[i][j] = (a_num[i][j] / a_den[i]).max(FLOOR);
                }
            }
            let s: f64 = hmm.a[i].iter().sum();
            hmm.a[i].iter_mut().for_each(|p| *p /= s);
        }

        // Re-estimate B.
        let mut b_num = vec![vec![0.0; m]; h];
        let mut b_den = vec![0.0; h];
        for t in 0..t_len {
            for j in 0..h {
                b_num[j][obs[t]] += gamma[t][j];
                b_den[j] += gamma[t][j];
            }
        }
        for j in 0..h {
            if b_den[j] > 0.0 {
                for k in 0..m {
                    hmm.b[j][k] = (b_num[j][k] / b_den[j]).max(FLOOR);
                }
            }
            let s: f64 = hmm.b[j].iter().sum();
            hmm.b[j].iter_mut().for_each(|p| *p /= s);
        }

        // pi floor + renormalize, same rationale.
        for p in hmm.pi.iter_mut() {
            *p = p.max(FLOOR);
        }
        let s: f64 = hmm.pi.iter().sum();
        hmm.pi.iter_mut().for_each(|p| *p /= s);

        if let Some(&prev) = lls.last() {
            if (ll - prev).abs() < tol {
                lls.push(ll);
                converged = true;
                break;
            }
        }
        lls.push(ll);
    }

    BaumWelchReport {
        iterations: lls.len(),
        log_likelihoods: lls,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward_backward::{forward_scaled, log_likelihood};

    fn rows_stochastic(hmm: &Hmm) {
        for row in hmm.a.iter().chain(hmm.b.iter()) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9, "row {row:?}");
            assert!(row.iter().all(|&p| p > 0.0));
        }
        assert!((hmm.pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn likelihood_is_monotone_nondecreasing() {
        let mut hmm = Hmm::near_uniform(3, 3, 7);
        let obs: Vec<usize> = (0..200).map(|t| ((t / 5) % 3) as usize).collect();
        let report = baum_welch(&mut hmm, &obs, 30, 1e-9);
        for w in report.log_likelihoods.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-7,
                "EM must not decrease likelihood: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn training_improves_over_initial_model() {
        let mut hmm = Hmm::near_uniform(2, 2, 3);
        let obs: Vec<usize> = (0..300).map(|t| ((t / 10) % 2) as usize).collect();
        let before = log_likelihood(&forward_scaled(&hmm, &obs).scale);
        baum_welch(&mut hmm, &obs, 50, 1e-9);
        let after = log_likelihood(&forward_scaled(&hmm, &obs).scale);
        assert!(after > before + 1.0, "LL {before} -> {after}");
    }

    #[test]
    fn parameters_stay_valid_distributions() {
        let mut hmm = Hmm::near_uniform(3, 3, 11);
        let obs: Vec<usize> = (0..150).map(|t| (t % 3) as usize).collect();
        baum_welch(&mut hmm, &obs, 25, 1e-9);
        rows_stochastic(&hmm);
    }

    #[test]
    fn recovers_deterministic_emission_structure() {
        // Data generated by: state 0 emits 0, state 1 emits 1, sticky
        // transitions. After training, each state should specialize.
        let mut hmm = Hmm::near_uniform(2, 2, 5);
        let mut obs = Vec::new();
        for block in 0..30 {
            let symbol = block % 2;
            obs.extend(std::iter::repeat_n(symbol, 10));
        }
        baum_welch(&mut hmm, &obs, 80, 1e-10);
        // One state must strongly prefer symbol 0 and the other symbol 1.
        let prefers_0 = hmm.b.iter().position(|r| r[0] > 0.9);
        let prefers_1 = hmm.b.iter().position(|r| r[1] > 0.9);
        assert!(
            prefers_0.is_some(),
            "no state specialized on symbol 0: {:?}",
            hmm.b
        );
        assert!(
            prefers_1.is_some(),
            "no state specialized on symbol 1: {:?}",
            hmm.b
        );
        assert_ne!(prefers_0, prefers_1);
        // And both learned transitions should be sticky.
        for i in 0..2 {
            assert!(hmm.a[i][i] > 0.7, "state {i} not sticky: {:?}", hmm.a);
        }
    }

    #[test]
    fn converges_and_reports_it() {
        let mut hmm = Hmm::near_uniform(2, 2, 9);
        let obs: Vec<usize> = (0..100).map(|t| (t % 2) as usize).collect();
        let report = baum_welch(&mut hmm, &obs, 500, 1e-8);
        assert!(report.converged, "periodic data should converge quickly");
        assert!(report.iterations < 500);
    }

    #[test]
    fn exact_uniform_start_does_not_crash() {
        // Uniform is a fixed point; BW should hit the tolerance immediately
        // and leave a valid model.
        let mut hmm = Hmm::uniform(3, 3);
        let obs = vec![0usize, 1, 2, 0, 1, 2];
        let report = baum_welch(&mut hmm, &obs, 10, 1e-9);
        assert!(report.iterations <= 10);
        rows_stochastic(&hmm);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_observations() {
        baum_welch(&mut Hmm::uniform(2, 2), &[], 5, 1e-6);
    }
}
