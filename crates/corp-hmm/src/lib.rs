//! Hidden Markov Model substrate for CORP's fluctuation prediction.
//!
//! Section III-A.1.b of the paper predicts whether the amount of unused
//! resource is about to hit a *peak* or a *valley* with a 3-state HMM:
//!
//! * hidden states `S = {OP, NP, UP}` (over-/normal-/under-provisioning);
//! * observation symbols `V = {peak, center, valley}`, derived by
//!   quantizing the window spread `Delta_j` of the unused-resource series
//!   against thresholds built from its historical min/mean/max;
//! * the standard machinery: forward/backward variables (Eqs. 12-15, with
//!   per-step scaling to avoid underflow on long sequences), Viterbi for
//!   the single best state path (Eq. 16), Baum-Welch re-estimation of
//!   `lambda = (A, B, pi)`, and the next-observation distribution
//!   `E_{P_{T+1}}(k) = sum_j P(q_{T+1} = S_j | q_T) b_j(k)` (Eq. 17).
//!
//! No HMM crate exists in the offline registry; everything here is
//! implemented from Rabiner's tutorial (the paper's own reference \[29\]) and
//! verified against brute-force enumeration in the test suite.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Numerical kernels index several same-length arrays in lockstep; the
// index-based loops are clearer than zipped iterator chains there.
#![allow(clippy::needless_range_loop)]

pub mod baum_welch;
pub mod fluctuation;
pub mod forward_backward;
pub mod model;
pub mod quantize;
pub mod viterbi;

pub use baum_welch::baum_welch;
pub use fluctuation::{FluctuationPredictor, HmmScratch, ProvisioningState};
pub use forward_backward::{backward_scaled, forward_scaled, log_likelihood, state_posteriors};
pub use model::Hmm;
pub use quantize::{FluctuationSymbol, SpreadQuantizer};
pub use viterbi::{viterbi, viterbi_last_in, ViterbiScratch};
