//! Scaled forward/backward recursions (paper Eqs. 12-15).
//!
//! The textbook `alpha`/`beta` variables underflow for observation
//! sequences beyond a few hundred steps, so we use the standard per-step
//! scaling from Rabiner's tutorial: each `alpha_t` row is normalized to sum
//! to 1 and the scale factor `c_t` is retained; `log P(O | lambda)` is then
//! `-sum_t log c_t`, and the same `c_t` scale the `beta` recursion so
//! `gamma_t(i) = alpha_t(i) * beta_t(i)` needs no further normalization
//! beyond a row sum.

use crate::model::Hmm;

/// Result of the scaled forward pass: `alpha[t][i]` (scaled) and the scale
/// factors `c[t]` with `c[t] = 1 / sum_i alpha_raw[t][i]`.
#[derive(Debug, Clone)]
pub struct ScaledForward {
    /// Scaled forward variables, `T x H`.
    pub alpha: Vec<Vec<f64>>,
    /// Per-step scale factors, length `T`.
    pub scale: Vec<f64>,
}

/// Scaled forward recursion (Eq. 14 with normalization).
///
/// # Panics
///
/// Panics if `obs` is empty or contains out-of-range symbols.
pub fn forward_scaled(hmm: &Hmm, obs: &[usize]) -> ScaledForward {
    assert!(!obs.is_empty(), "observation sequence must be non-empty");
    hmm.check_observations(obs);
    let h = hmm.num_states;
    let t_len = obs.len();
    let mut alpha = vec![vec![0.0; h]; t_len];
    let mut scale = vec![0.0; t_len];

    // Initialization: alpha_1(i) = pi_i * b_i(O_1).
    for i in 0..h {
        alpha[0][i] = hmm.pi[i] * hmm.b[i][obs[0]];
    }
    normalize_row(&mut alpha[0], &mut scale[0]);

    // Induction: alpha_{t+1}(j) = [sum_i alpha_t(i) a_ij] b_j(O_{t+1}).
    for t in 1..t_len {
        let (prev_rows, cur_rows) = alpha.split_at_mut(t);
        let prev = &prev_rows[t - 1];
        let cur = &mut cur_rows[0];
        for (j, c) in cur.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (i, &ap) in prev.iter().enumerate() {
                acc += ap * hmm.a[i][j];
            }
            *c = acc * hmm.b[j][obs[t]];
        }
        normalize_row(cur, &mut scale[t]);
    }
    ScaledForward { alpha, scale }
}

fn normalize_row(row: &mut [f64], scale_out: &mut f64) {
    let sum: f64 = row.iter().sum();
    // A zero row means the observation is impossible under the model;
    // fall back to uniform so downstream stays finite (the likelihood
    // correctly reflects the impossibility through the scale factor).
    if sum <= 0.0 {
        let u = 1.0 / row.len() as f64;
        row.iter_mut().for_each(|v| *v = u);
        *scale_out = 1e300; // log-likelihood sinks appropriately
    } else {
        row.iter_mut().for_each(|v| *v /= sum);
        *scale_out = 1.0 / sum;
    }
}

/// Scaled backward recursion (Eq. 15) using the forward pass's scale
/// factors, as required for Baum-Welch's `gamma`/`xi` to combine cleanly.
///
/// # Panics
///
/// Panics if shapes mismatch the forward result.
pub fn backward_scaled(hmm: &Hmm, obs: &[usize], scale: &[f64]) -> Vec<Vec<f64>> {
    assert_eq!(
        obs.len(),
        scale.len(),
        "scale factors must match sequence length"
    );
    hmm.check_observations(obs);
    let h = hmm.num_states;
    let t_len = obs.len();
    let mut beta = vec![vec![0.0; h]; t_len];

    // Initialization: beta_T(i) = 1, scaled by c_T.
    for v in &mut beta[t_len - 1] {
        *v = scale[t_len - 1].min(1e300);
    }

    // Induction: beta_t(i) = sum_j a_ij b_j(O_{t+1}) beta_{t+1}(j).
    for t in (0..t_len - 1).rev() {
        let (cur_rows, next_rows) = beta.split_at_mut(t + 1);
        let next = &next_rows[0];
        let cur = &mut cur_rows[t];
        for (i, c) in cur.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &bn) in next.iter().enumerate() {
                acc += hmm.a[i][j] * hmm.b[j][obs[t + 1]] * bn;
            }
            *c = (acc * scale[t]).min(1e300);
        }
    }
    beta
}

/// Log-likelihood `log P(O | lambda)` from the forward scale factors.
pub fn log_likelihood(scale: &[f64]) -> f64 {
    -scale.iter().map(|c| c.ln()).sum::<f64>()
}

/// State posteriors `gamma_t(i) = P(q_t = S_i | O, lambda)` (Eqs. 12-13).
/// Each row sums to 1.
pub fn state_posteriors(hmm: &Hmm, obs: &[usize]) -> Vec<Vec<f64>> {
    let fwd = forward_scaled(hmm, obs);
    let beta = backward_scaled(hmm, obs, &fwd.scale);
    let mut gamma = vec![vec![0.0; hmm.num_states]; obs.len()];
    for t in 0..obs.len() {
        let mut sum = 0.0;
        for i in 0..hmm.num_states {
            gamma[t][i] = fwd.alpha[t][i] * beta[t][i];
            sum += gamma[t][i];
        }
        if sum > 0.0 {
            for g in &mut gamma[t] {
                *g /= sum;
            }
        } else {
            let u = 1.0 / hmm.num_states as f64;
            gamma[t].iter_mut().for_each(|g| *g = u);
        }
    }
    gamma
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force P(O | lambda) by enumerating all state paths.
    fn likelihood_brute(hmm: &Hmm, obs: &[usize]) -> f64 {
        let h = hmm.num_states;
        let t_len = obs.len();
        let mut total = 0.0;
        let paths = (h as u64).pow(t_len as u32);
        for code in 0..paths {
            let mut c = code;
            let mut path = Vec::with_capacity(t_len);
            for _ in 0..t_len {
                path.push((c % h as u64) as usize);
                c /= h as u64;
            }
            let mut p = hmm.pi[path[0]] * hmm.b[path[0]][obs[0]];
            for t in 1..t_len {
                p *= hmm.a[path[t - 1]][path[t]] * hmm.b[path[t]][obs[t]];
            }
            total += p;
        }
        total
    }

    fn test_model() -> Hmm {
        Hmm::new(
            vec![vec![0.7, 0.3], vec![0.4, 0.6]],
            vec![vec![0.9, 0.1], vec![0.2, 0.8]],
            vec![0.6, 0.4],
        )
    }

    #[test]
    fn forward_likelihood_matches_brute_force() {
        let hmm = test_model();
        for obs in [vec![0], vec![0, 1], vec![1, 1, 0], vec![0, 0, 1, 1, 0]] {
            let fwd = forward_scaled(&hmm, &obs);
            let ll = log_likelihood(&fwd.scale);
            let brute = likelihood_brute(&hmm, &obs);
            assert!(
                (ll - brute.ln()).abs() < 1e-9,
                "obs {obs:?}: scaled {ll} vs brute {}",
                brute.ln()
            );
        }
    }

    #[test]
    fn alpha_rows_are_normalized() {
        let hmm = test_model();
        let fwd = forward_scaled(&hmm, &[0, 1, 0, 1, 1]);
        for row in &fwd.alpha {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn posteriors_are_distributions() {
        let hmm = test_model();
        let gamma = state_posteriors(&hmm, &[0, 1, 1, 0, 0, 1]);
        for row in &gamma {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&g| (0.0..=1.0).contains(&g)));
        }
    }

    #[test]
    fn posteriors_match_brute_force_on_small_case() {
        let hmm = test_model();
        let obs = [0usize, 1, 0];
        let gamma = state_posteriors(&hmm, &obs);
        // Brute force gamma_1(0): P(q_1 = 0 | O) = sum over paths with
        // q_1 = 0 of P(path, O) / P(O).
        let h = hmm.num_states;
        let mut num = 0.0;
        let mut den = 0.0;
        for s0 in 0..h {
            for s1 in 0..h {
                for s2 in 0..h {
                    let p = hmm.pi[s0]
                        * hmm.b[s0][obs[0]]
                        * hmm.a[s0][s1]
                        * hmm.b[s1][obs[1]]
                        * hmm.a[s1][s2]
                        * hmm.b[s2][obs[2]];
                    den += p;
                    if s1 == 0 {
                        num += p;
                    }
                }
            }
        }
        assert!((gamma[1][0] - num / den).abs() < 1e-9);
    }

    #[test]
    fn long_sequences_do_not_underflow() {
        let hmm = test_model();
        let obs: Vec<usize> = (0..5_000).map(|t| (t / 7) % 2).collect();
        let fwd = forward_scaled(&hmm, &obs);
        let ll = log_likelihood(&fwd.scale);
        assert!(ll.is_finite());
        assert!(ll < 0.0, "log-likelihood of long sequence must be negative");
        let gamma = state_posteriors(&hmm, &obs);
        assert!(gamma.iter().flatten().all(|g| g.is_finite()));
    }

    #[test]
    fn likelihood_decreases_with_surprising_observations() {
        // State 0 strongly emits symbol 0. A sequence of 0s should be more
        // likely than a sequence of alternating symbols.
        let hmm = test_model();
        let steady = forward_scaled(&hmm, &[0; 8]);
        let jumpy = forward_scaled(&hmm, &[0, 1, 0, 1, 0, 1, 0, 1]);
        assert!(log_likelihood(&steady.scale) > log_likelihood(&jumpy.scale));
    }

    #[test]
    #[should_panic]
    fn empty_observations_rejected() {
        forward_scaled(&test_model(), &[]);
    }
}
