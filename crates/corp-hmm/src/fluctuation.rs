//! End-to-end fluctuation prediction and error correction (Eqs. 16-17 and
//! the peak/valley adjustment of Section III-A.1.b).
//!
//! [`FluctuationPredictor`] ties the pieces together:
//!
//! 1. build a [`SpreadQuantizer`] from the unused-resource history and
//!    derive the observation sequence;
//! 2. re-estimate the 3-state OP/NP/UP model with Baum-Welch;
//! 3. Viterbi-decode the best state path `Q*` (Eq. 16);
//! 4. predict the next observation symbol via
//!    `E_{P_{T+1}}(k) = sum_j P(q_{T+1} = S_j | q_T = q_L*) b_j(k)`
//!    (Eq. 17), taking the arg-max symbol;
//! 5. expose the prediction-error correction: if the next symbol is a peak
//!    the DNN estimate is raised by `min(h - m, m - l)`, if a valley it is
//!    lowered by the same amount (`h`/`m`/`l` = highest/average/lowest
//!    unused resource within the recent period — `min` is chosen because
//!    "it is more conservative for ensuring sufficient resource being able
//!    to \[be\] allocated to jobs").

use crate::baum_welch::baum_welch;
use crate::model::Hmm;
use crate::quantize::{FluctuationSymbol, SpreadQuantizer};
use crate::viterbi::{viterbi, viterbi_last_in, ViterbiScratch};
use serde::{Deserialize, Serialize};

/// Reusable buffers for the scratch-variant prediction entry points
/// ([`FluctuationPredictor::adjust_with`] and friends): the observation
/// sequence and the Viterbi trellis rows, reset-not-reallocated per call.
/// Reuse never changes a result — every buffer is fully rewritten before
/// it is read.
#[derive(Debug, Clone, Default)]
pub struct HmmScratch {
    obs: Vec<usize>,
    viterbi: ViterbiScratch,
}

impl HmmScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        HmmScratch::default()
    }
}

/// Hidden provisioning states of the paper's HMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProvisioningState {
    /// Over-provisioning: much allocated resource is idle.
    Over,
    /// Normal provisioning.
    Normal,
    /// Under-provisioning: allocation is tight.
    Under,
}

impl ProvisioningState {
    /// State index in the 3-state model.
    pub fn index(self) -> usize {
        match self {
            ProvisioningState::Over => 0,
            ProvisioningState::Normal => 1,
            ProvisioningState::Under => 2,
        }
    }

    /// State for an index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    pub fn from_index(i: usize) -> Self {
        [
            ProvisioningState::Over,
            ProvisioningState::Normal,
            ProvisioningState::Under,
        ][i]
    }
}

/// Predicts the next fluctuation symbol of an unused-resource series and
/// corrects DNN predictions for imminent peaks/valleys.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FluctuationPredictor {
    hmm: Hmm,
    quantizer: Option<SpreadQuantizer>,
    /// Window length (slots) over which each observation's spread is taken;
    /// the paper divides the inter-observation window into `L - 1`
    /// subwindows.
    window_len: usize,
    fitted: bool,
}

impl FluctuationPredictor {
    /// Creates a predictor with the paper's 3-state/3-symbol model and the
    /// given spread-window length.
    ///
    /// # Panics
    ///
    /// Panics if `window_len < 2` (a spread needs two samples).
    pub fn new(window_len: usize) -> Self {
        assert!(window_len >= 2, "spread windows need at least two samples");
        FluctuationPredictor {
            hmm: Hmm::paper_default(),
            quantizer: None,
            window_len,
            fitted: false,
        }
    }

    /// Whether [`fit`](Self::fit) has succeeded.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// The underlying model (inspection/tests).
    pub fn hmm(&self) -> &Hmm {
        &self.hmm
    }

    /// Fits the quantizer thresholds and re-estimates the HMM from an
    /// unused-resource history. Returns the number of Baum-Welch iterations
    /// run, or `None` when the history is too short to produce at least two
    /// observations (the predictor then predicts `Center`, i.e. no
    /// correction — the conservative default).
    pub fn fit(&mut self, history: &[f64]) -> Option<usize> {
        if history.is_empty() {
            return None;
        }
        let quantizer = SpreadQuantizer::from_history(history);
        let obs = quantizer.observations(history, self.window_len);
        if obs.len() < 2 {
            self.quantizer = Some(quantizer);
            return None;
        }
        let report = baum_welch(&mut self.hmm, &obs, 40, 1e-6);
        self.quantizer = Some(quantizer);
        self.fitted = true;
        Some(report.iterations)
    }

    /// Predicts the next fluctuation symbol from the most recent
    /// unused-resource values (Eqs. 16-17). Falls back to `Center` when the
    /// predictor is unfitted or the recent series yields no observations.
    pub fn predict_next_symbol(&self, recent: &[f64]) -> FluctuationSymbol {
        let Some(quantizer) = &self.quantizer else {
            return FluctuationSymbol::Center;
        };
        if !self.fitted {
            return FluctuationSymbol::Center;
        }
        let obs = quantizer.observations(recent, self.window_len);
        if obs.is_empty() {
            return FluctuationSymbol::Center;
        }
        // Single best state path (Eq. 16 / Viterbi), last state q_L*.
        let path = viterbi(&self.hmm, &obs);
        let q_last = *path.states.last().expect("non-empty path");

        // Eq. 17: expected next-symbol distribution.
        let mut best_k = 0;
        let mut best_p = f64::NEG_INFINITY;
        for k in 0..self.hmm.num_symbols {
            let p: f64 = (0..self.hmm.num_states)
                .map(|j| self.hmm.a[q_last][j] * self.hmm.b[j][k])
                .sum();
            if p > best_p {
                best_p = p;
                best_k = k;
            }
        }
        FluctuationSymbol::from_index(best_k)
    }

    /// [`predict_next_symbol`](Self::predict_next_symbol) through
    /// caller-provided scratch: no allocation on the hot path, bit-identical
    /// symbol (same quantization, same Viterbi recurrence, same Eq. 17
    /// arg-max).
    pub fn predict_next_symbol_with(
        &self,
        recent: &[f64],
        scratch: &mut HmmScratch,
    ) -> FluctuationSymbol {
        let Some(quantizer) = &self.quantizer else {
            return FluctuationSymbol::Center;
        };
        if !self.fitted {
            return FluctuationSymbol::Center;
        }
        quantizer.observations_into(recent, self.window_len, &mut scratch.obs);
        if scratch.obs.is_empty() {
            return FluctuationSymbol::Center;
        }
        let (q_last, _) = viterbi_last_in(&self.hmm, &scratch.obs, &mut scratch.viterbi);

        let mut best_k = 0;
        let mut best_p = f64::NEG_INFINITY;
        for k in 0..self.hmm.num_symbols {
            let p: f64 = (0..self.hmm.num_states)
                .map(|j| self.hmm.a[q_last][j] * self.hmm.b[j][k])
                .sum();
            if p > best_p {
                best_p = p;
                best_k = k;
            }
        }
        FluctuationSymbol::from_index(best_k)
    }

    /// The most likely current provisioning state for a recent series,
    /// via Viterbi. `None` when unfitted or without observations.
    pub fn current_state(&self, recent: &[f64]) -> Option<ProvisioningState> {
        let quantizer = self.quantizer.as_ref()?;
        if !self.fitted {
            return None;
        }
        let obs = quantizer.observations(recent, self.window_len);
        if obs.is_empty() {
            return None;
        }
        let path = viterbi(&self.hmm, &obs);
        Some(ProvisioningState::from_index(
            *path.states.last().expect("non-empty"),
        ))
    }

    /// The conservative correction magnitude `min(h - m, m - l)` computed
    /// from the recent period's unused-resource values. Zero for fewer than
    /// two samples.
    pub fn correction_magnitude(recent: &[f64]) -> f64 {
        if recent.len() < 2 {
            return 0.0;
        }
        let h = corp_stats::max(recent);
        let l = corp_stats::min(recent);
        let m = corp_stats::mean(recent);
        (h - m).min(m - l).max(0.0)
    }

    /// Applies the paper's peak/valley correction to a DNN prediction
    /// `u_hat`: `+min(h-m, m-l)` for a predicted peak, `-...` for a valley,
    /// unchanged for center. The corrected value is clamped non-negative.
    pub fn adjust(&self, u_hat: f64, recent: &[f64]) -> f64 {
        let mag = Self::correction_magnitude(recent);
        let corrected = match self.predict_next_symbol(recent) {
            FluctuationSymbol::Peak => u_hat + mag,
            FluctuationSymbol::Valley => u_hat - mag,
            FluctuationSymbol::Center => u_hat,
        };
        corrected.max(0.0)
    }

    /// [`adjust`](Self::adjust) through caller-provided scratch — the
    /// allocation-free form the persistent prediction runtime calls once
    /// per (job, resource) per window. Bit-identical to `adjust`.
    pub fn adjust_with(&self, u_hat: f64, recent: &[f64], scratch: &mut HmmScratch) -> f64 {
        let mag = Self::correction_magnitude(recent);
        let corrected = match self.predict_next_symbol_with(recent, scratch) {
            FluctuationSymbol::Peak => u_hat + mag,
            FluctuationSymbol::Valley => u_hat - mag,
            FluctuationSymbol::Center => u_hat,
        };
        corrected.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A history that alternates calm stretches with violent swings, giving
    /// all three symbols decent support.
    fn mixed_history(len: usize) -> Vec<f64> {
        (0..len)
            .map(|t| {
                let phase = (t / 20) % 3;
                match phase {
                    0 => 5.0 + (t % 2) as f64 * 0.1,   // calm -> valley spreads
                    1 => 5.0 + ((t % 4) as f64) * 1.2, // moderate -> center
                    _ => {
                        if t % 2 == 0 {
                            0.5
                        } else {
                            11.0 // violent -> peak spreads
                        }
                    }
                }
            })
            .collect()
    }

    #[test]
    fn fit_succeeds_on_reasonable_history() {
        let mut p = FluctuationPredictor::new(4);
        assert!(p.fit(&mixed_history(240)).is_some());
        assert!(p.is_fitted());
    }

    #[test]
    fn fit_on_empty_history_returns_none() {
        let mut p = FluctuationPredictor::new(4);
        assert!(p.fit(&[]).is_none());
        assert!(!p.is_fitted());
    }

    #[test]
    fn unfitted_predictor_predicts_center() {
        let p = FluctuationPredictor::new(4);
        assert_eq!(
            p.predict_next_symbol(&[1.0, 2.0, 3.0, 4.0]),
            FluctuationSymbol::Center
        );
    }

    #[test]
    fn calm_recent_series_predicts_valley_side() {
        let mut p = FluctuationPredictor::new(4);
        p.fit(&mixed_history(240)).unwrap();
        // Long calm stretch: spreads near zero -> valley observations; the
        // sticky model should not predict a peak next.
        let calm = vec![5.0; 40];
        let sym = p.predict_next_symbol(&calm);
        assert_ne!(
            sym,
            FluctuationSymbol::Peak,
            "calm series must not forecast a peak"
        );
    }

    #[test]
    fn violent_recent_series_does_not_predict_valley() {
        let mut p = FluctuationPredictor::new(4);
        p.fit(&mixed_history(240)).unwrap();
        let violent: Vec<f64> = (0..40)
            .map(|t| if t % 2 == 0 { 0.5 } else { 11.0 })
            .collect();
        let sym = p.predict_next_symbol(&violent);
        assert_ne!(
            sym,
            FluctuationSymbol::Valley,
            "violent series must not forecast a valley"
        );
    }

    #[test]
    fn correction_magnitude_is_conservative_min() {
        // h = 10, l = 0, m = 2.5 -> min(7.5, 2.5) = 2.5.
        let recent = [0.0, 0.0, 0.0, 10.0];
        let mag = FluctuationPredictor::correction_magnitude(&recent);
        assert!((mag - 2.5).abs() < 1e-12);
    }

    #[test]
    fn correction_magnitude_zero_for_tiny_series() {
        assert_eq!(FluctuationPredictor::correction_magnitude(&[5.0]), 0.0);
        assert_eq!(FluctuationPredictor::correction_magnitude(&[]), 0.0);
    }

    #[test]
    fn adjust_clamps_at_zero() {
        let p = FluctuationPredictor::new(4);
        // Unfitted -> Center -> unchanged, but clamped if negative input.
        assert_eq!(p.adjust(-3.0, &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn adjust_without_fit_is_identity_for_positive_input() {
        let p = FluctuationPredictor::new(4);
        assert_eq!(p.adjust(7.0, &[1.0, 2.0, 3.0]), 7.0);
    }

    #[test]
    fn current_state_reports_some_after_fit() {
        let mut p = FluctuationPredictor::new(4);
        p.fit(&mixed_history(240)).unwrap();
        assert!(p.current_state(&mixed_history(60)).is_some());
    }

    #[test]
    fn provisioning_state_round_trip() {
        for s in [
            ProvisioningState::Over,
            ProvisioningState::Normal,
            ProvisioningState::Under,
        ] {
            assert_eq!(ProvisioningState::from_index(s.index()), s);
        }
    }

    #[test]
    #[should_panic]
    fn window_len_one_rejected() {
        FluctuationPredictor::new(1);
    }

    #[test]
    fn scratch_variants_are_bit_identical_to_allocating_ones() {
        let mut p = FluctuationPredictor::new(4);
        p.fit(&mixed_history(240)).unwrap();
        let mut scratch = HmmScratch::new();
        // One reused scratch across many series of different shapes and
        // lengths — including degenerate ones — must reproduce the
        // allocating path exactly.
        let serieses: Vec<Vec<f64>> = vec![
            vec![5.0; 40],
            (0..40)
                .map(|t| if t % 2 == 0 { 0.5 } else { 11.0 })
                .collect(),
            mixed_history(60),
            vec![1.0],
            vec![],
            vec![3.0, 3.1, 2.9, 10.0, 0.0, 5.0, 5.0, 5.0],
        ];
        for recent in &serieses {
            assert_eq!(
                p.predict_next_symbol_with(recent, &mut scratch),
                p.predict_next_symbol(recent),
                "series {recent:?}"
            );
            for u_hat in [0.0, 1.5, 7.0, 100.0] {
                assert_eq!(
                    p.adjust_with(u_hat, recent, &mut scratch).to_bits(),
                    p.adjust(u_hat, recent).to_bits(),
                    "series {recent:?}, u_hat {u_hat}"
                );
            }
        }
        // Unfitted predictors short-circuit identically too.
        let cold = FluctuationPredictor::new(4);
        assert_eq!(
            cold.predict_next_symbol_with(&[1.0, 2.0], &mut scratch),
            cold.predict_next_symbol(&[1.0, 2.0]),
        );
        assert_eq!(cold.adjust_with(7.0, &[1.0, 2.0], &mut scratch), 7.0);
    }
}
