//! Peak/center/valley observation-symbol quantizer.
//!
//! Section III-A.1.b builds the HMM observation sequence from the unused-
//! resource history: with `min`, `m` (mean), and `max` of the historical
//! unused resource, the range splits at `min + (m - min)/2` and
//! `m + (max - m)/2`; the spread `Delta_j` of each inter-observation window
//! is mapped to a symbol. The paper's operational rule is
//!
//! * `Delta_j` in the lowest band  -> **valley** (little fluctuation),
//! * middle band                    -> **center**,
//! * highest band                   -> **peak** (strong fluctuation).
//!
//! (The prose sentence naming the subintervals lists them in the opposite
//! order, but the per-`Delta_j` classification rule — which is what the
//! algorithm executes — is the one above, and we follow it.)

use corp_trace::fluctuation_spreads;
use serde::{Deserialize, Serialize};

/// HMM observation symbols for unused-resource fluctuations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FluctuationSymbol {
    /// Strong fluctuation: unused resource is spiking.
    Peak,
    /// Moderate fluctuation.
    Center,
    /// Weak fluctuation: unused resource is flat/dipping.
    Valley,
}

impl FluctuationSymbol {
    /// All symbols, in alphabet order.
    pub const ALL: [FluctuationSymbol; 3] = [
        FluctuationSymbol::Peak,
        FluctuationSymbol::Center,
        FluctuationSymbol::Valley,
    ];

    /// Alphabet index (`M = 3` in Table II).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FluctuationSymbol::Peak => 0,
            FluctuationSymbol::Center => 1,
            FluctuationSymbol::Valley => 2,
        }
    }

    /// Symbol for an alphabet index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }
}

/// Maps window spreads `Delta_j` to [`FluctuationSymbol`]s using thresholds
/// derived from a historical unused-resource series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpreadQuantizer {
    /// Lower threshold `min + (m - min)/2`.
    pub low: f64,
    /// Upper threshold `m + (max - m)/2`.
    pub high: f64,
    /// Historical minimum (`min_cpu` in the paper's CPU example).
    pub hist_min: f64,
    /// Historical mean (`m_cpu`).
    pub hist_mean: f64,
    /// Historical maximum (`max_cpu`).
    pub hist_max: f64,
}

impl SpreadQuantizer {
    /// Builds the quantizer from a historical unused-resource series.
    ///
    /// # Panics
    ///
    /// Panics if `history` is empty.
    pub fn from_history(history: &[f64]) -> Self {
        assert!(!history.is_empty(), "cannot quantize without history");
        let hist_min = corp_stats::min(history);
        let hist_max = corp_stats::max(history);
        let hist_mean = corp_stats::mean(history);
        SpreadQuantizer {
            low: hist_min + 0.5 * (hist_mean - hist_min),
            high: hist_mean + 0.5 * (hist_max - hist_mean),
            hist_min,
            hist_mean,
            hist_max,
        }
    }

    /// Classifies one window spread.
    pub fn classify(&self, delta: f64) -> FluctuationSymbol {
        if delta <= self.low {
            FluctuationSymbol::Valley
        } else if delta < self.high {
            FluctuationSymbol::Center
        } else {
            FluctuationSymbol::Peak
        }
    }

    /// Builds the full observation sequence from a series: splits it into
    /// windows of `window_len` slots (the paper's `L - 1` subwindow
    /// construction between consecutive observation times), computes each
    /// window's spread, and classifies it.
    pub fn observations(&self, series: &[f64], window_len: usize) -> Vec<usize> {
        fluctuation_spreads(series, window_len)
            .into_iter()
            .map(|d| self.classify(d).index())
            .collect()
    }

    /// [`observations`](Self::observations) into a caller-provided buffer:
    /// the spreads are classified straight off the chunk iterator, so the
    /// hot prediction path allocates nothing. Identical symbols to the
    /// allocating form.
    ///
    /// # Panics
    ///
    /// Panics if `window_len == 0`.
    pub fn observations_into(&self, series: &[f64], window_len: usize, out: &mut Vec<usize>) {
        assert!(window_len > 0, "window length must be positive");
        out.clear();
        out.extend(
            series
                .chunks(window_len)
                .filter(|c| c.len() >= 2)
                .map(|c| self.classify(corp_trace::window_spread(c)).index()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_index_round_trip() {
        for s in FluctuationSymbol::ALL {
            assert_eq!(FluctuationSymbol::from_index(s.index()), s);
        }
    }

    #[test]
    fn thresholds_follow_paper_formulas() {
        // history: min=0, mean=4, max=10 -> low = 2, high = 7.
        let q = SpreadQuantizer::from_history(&[0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 4.0, 0.0, 6.0, 0.0]);
        // mean of that series is 4.0
        assert!((q.hist_mean - 4.0).abs() < 1e-12);
        assert!((q.low - 2.0).abs() < 1e-12);
        assert!((q.high - 7.0).abs() < 1e-12);
    }

    #[test]
    fn classification_bands() {
        let q = SpreadQuantizer {
            low: 2.0,
            high: 7.0,
            hist_min: 0.0,
            hist_mean: 4.0,
            hist_max: 10.0,
        };
        assert_eq!(q.classify(0.0), FluctuationSymbol::Valley);
        assert_eq!(
            q.classify(2.0),
            FluctuationSymbol::Valley,
            "low edge inclusive"
        );
        assert_eq!(q.classify(3.0), FluctuationSymbol::Center);
        assert_eq!(
            q.classify(7.0),
            FluctuationSymbol::Peak,
            "high edge is peak"
        );
        assert_eq!(q.classify(100.0), FluctuationSymbol::Peak);
    }

    #[test]
    fn observations_reflect_local_spreads() {
        let q = SpreadQuantizer {
            low: 1.0,
            high: 5.0,
            hist_min: 0.0,
            hist_mean: 2.0,
            hist_max: 8.0,
        };
        // Windows of 2: spreads are |a-b|.
        let series = [0.0, 0.5, 0.0, 3.0, 0.0, 8.0];
        let obs = q.observations(&series, 2);
        assert_eq!(
            obs,
            vec![
                FluctuationSymbol::Valley.index(),
                FluctuationSymbol::Center.index(),
                FluctuationSymbol::Peak.index(),
            ]
        );
    }

    #[test]
    fn constant_history_classifies_everything_as_valley() {
        let q = SpreadQuantizer::from_history(&[5.0; 10]);
        assert_eq!(q.classify(0.0), FluctuationSymbol::Valley);
    }

    #[test]
    #[should_panic]
    fn empty_history_rejected() {
        SpreadQuantizer::from_history(&[]);
    }
}
