//! Property-based tests for the HMM substrate.

use corp_hmm::{
    baum_welch, forward_scaled, log_likelihood, state_posteriors, viterbi, FluctuationPredictor,
    FluctuationSymbol, Hmm, HmmScratch, SpreadQuantizer,
};
use proptest::prelude::*;

/// Strategy: a random valid HMM with `h` states and `m` symbols.
fn arb_hmm(h: usize, m: usize) -> impl Strategy<Value = Hmm> {
    let row = |n: usize| {
        prop::collection::vec(0.05f64..1.0, n).prop_map(|mut r| {
            let s: f64 = r.iter().sum();
            r.iter_mut().for_each(|p| *p /= s);
            r
        })
    };
    (
        prop::collection::vec(row(h), h),
        prop::collection::vec(row(m), h),
        row(h),
    )
        .prop_map(|(a, b, pi)| Hmm::new(a, b, pi))
}

fn arb_obs(m: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..m, 1..64)
}

proptest! {
    #[test]
    fn alpha_rows_normalized((hmm, obs) in (arb_hmm(3, 3), arb_obs(3))) {
        let fwd = forward_scaled(&hmm, &obs);
        for row in &fwd.alpha {
            prop_assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn log_likelihood_is_nonpositive((hmm, obs) in (arb_hmm(3, 3), arb_obs(3))) {
        let fwd = forward_scaled(&hmm, &obs);
        prop_assert!(log_likelihood(&fwd.scale) <= 1e-9);
    }

    #[test]
    fn posteriors_rows_are_distributions((hmm, obs) in (arb_hmm(2, 4), arb_obs(4))) {
        for row in state_posteriors(&hmm, &obs) {
            prop_assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn viterbi_path_probability_at_most_total((hmm, obs) in (arb_hmm(3, 3), arb_obs(3))) {
        // P(Q*, O) <= P(O) always.
        let v = viterbi(&hmm, &obs);
        let fwd = forward_scaled(&hmm, &obs);
        prop_assert!(v.log_prob <= log_likelihood(&fwd.scale) + 1e-9);
        prop_assert_eq!(v.states.len(), obs.len());
    }

    #[test]
    fn viterbi_states_in_range((hmm, obs) in (arb_hmm(3, 3), arb_obs(3))) {
        let v = viterbi(&hmm, &obs);
        prop_assert!(v.states.iter().all(|&s| s < 3));
    }

    #[test]
    fn baum_welch_monotone_and_valid(
        (mut hmm, obs) in (arb_hmm(3, 3), prop::collection::vec(0usize..3, 16..128)),
    ) {
        let report = baum_welch(&mut hmm, &obs, 15, 1e-12);
        for w in report.log_likelihoods.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-6, "EM decreased: {} -> {}", w[0], w[1]);
        }
        for row in hmm.a.iter().chain(hmm.b.iter()) {
            prop_assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            prop_assert!(row.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn quantizer_total_over_bands(history in prop::collection::vec(0.0f64..100.0, 2..64), d in 0.0f64..200.0) {
        let q = SpreadQuantizer::from_history(&history);
        // Classification is total and consistent with thresholds.
        let s = q.classify(d);
        match s {
            FluctuationSymbol::Valley => prop_assert!(d <= q.low + 1e-12),
            FluctuationSymbol::Center => prop_assert!(d > q.low && d < q.high),
            FluctuationSymbol::Peak => prop_assert!(d >= q.high - 1e-12),
        }
    }

    #[test]
    fn quantizer_thresholds_ordered(history in prop::collection::vec(0.0f64..100.0, 2..64)) {
        let q = SpreadQuantizer::from_history(&history);
        prop_assert!(q.hist_min <= q.hist_mean + 1e-12);
        prop_assert!(q.hist_mean <= q.hist_max + 1e-12);
        prop_assert!(q.low <= q.high + 1e-12);
    }

    #[test]
    fn correction_magnitude_bounded_by_half_range(recent in prop::collection::vec(0.0f64..100.0, 2..64)) {
        let mag = FluctuationPredictor::correction_magnitude(&recent);
        let range = corp_stats::max(&recent) - corp_stats::min(&recent);
        prop_assert!(mag >= 0.0);
        prop_assert!(mag <= range / 2.0 + 1e-9, "min(h-m, m-l) <= range/2");
    }

    #[test]
    fn adjust_never_negative(
        u_hat in -10.0f64..100.0,
        recent in prop::collection::vec(0.0f64..50.0, 2..40),
    ) {
        let mut p = FluctuationPredictor::new(4);
        let _ = p.fit(&recent);
        prop_assert!(p.adjust(u_hat, &recent) >= 0.0);
    }

    #[test]
    fn hmm_scratch_reuse_matches_fresh_init(
        u_hats in prop::collection::vec(-5.0f64..60.0, 1..8),
        recent in prop::collection::vec(0.0f64..50.0, 2..40),
    ) {
        // The pool runtime reuses one HmmScratch across every window a
        // worker serves; corrections through a long-lived scratch must be
        // bit-identical both to a fresh scratch and to the allocating
        // `adjust` path.
        let mut p = FluctuationPredictor::new(4);
        let _ = p.fit(&recent);
        let mut reused = HmmScratch::new();
        for &u in &u_hats {
            let with_reused = p.adjust_with(u, &recent, &mut reused);
            let fresh = p.adjust_with(u, &recent, &mut HmmScratch::new());
            let allocating = p.adjust(u, &recent);
            prop_assert_eq!(with_reused.to_bits(), fresh.to_bits());
            prop_assert_eq!(with_reused.to_bits(), allocating.to_bits());
        }
    }
}
