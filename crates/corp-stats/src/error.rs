//! Prediction-error bookkeeping (paper Eqs. 20-21).
//!
//! CORP computes, for each prediction window, the per-slot error
//! `delta_{t+tau} = u_{t+tau} - u_hat_{t+L}` (Eq. 20) and keeps a sliding
//! window of recent errors. Two quantities are derived from that window:
//!
//! * the estimated standard deviation `sigma_hat` of prediction errors,
//!   which scales the confidence interval of Eq. 18; and
//! * the empirical probability `Pr(0 <= delta < eps)` that the prediction
//!   under-estimates by less than the tolerance `eps`, which gates
//!   *probabilistic resource preemption*: the unused resource is "unlocked"
//!   for reallocation only when that probability reaches `P_th` (Eq. 21).

use crate::descriptive::Summary;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Fixed-capacity sliding window of prediction errors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorWindow {
    capacity: usize,
    errors: VecDeque<f64>,
}

impl ErrorWindow {
    /// Creates a window holding at most `capacity` recent errors.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "error window needs capacity >= 1");
        ErrorWindow {
            capacity,
            errors: VecDeque::with_capacity(capacity),
        }
    }

    /// Records one error sample, evicting the oldest if full.
    pub fn push(&mut self, delta: f64) {
        if self.errors.len() == self.capacity {
            self.errors.pop_front();
        }
        self.errors.push_back(delta);
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// Whether the window holds no samples yet.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// Estimated standard deviation `sigma_hat` of the stored errors
    /// (0.0 with fewer than two samples, i.e. maximally optimistic until
    /// evidence of error accumulates).
    pub fn sigma_hat(&self) -> f64 {
        let (a, b) = self.errors.as_slices();
        let mut s = Summary::of(a);
        s.extend(b);
        s.stddev()
    }

    /// Mean error (bias) of the stored samples.
    pub fn bias(&self) -> f64 {
        let (a, b) = self.errors.as_slices();
        let mut s = Summary::of(a);
        s.extend(b);
        s.mean
    }

    /// Empirical `Pr(0 <= delta < eps)` over the stored samples — the
    /// left-hand side of the preemption condition, paper Eq. 21.
    ///
    /// Returns 0.0 when no samples exist: with zero evidence the gate stays
    /// closed, matching the paper's conservative posture.
    pub fn prob_within(&self, eps: f64) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        let hits = self.errors.iter().filter(|&&d| d >= 0.0 && d < eps).count();
        hits as f64 / self.errors.len() as f64
    }

    /// Empirical `Pr(|delta| < eps)` — the symmetric variant of the Eq. 21
    /// band. The literal `[0, eps)` band cannot reach high thresholds once
    /// Eq. 19's confidence-interval subtraction deliberately biases errors
    /// positive (the bias shifts `delta`'s mean to `sigma_hat * z`, placing
    /// a `1 - eta` tail below zero *by design*), so reproductions gate on
    /// the symmetric band instead; see DESIGN.md.
    pub fn prob_abs_within(&self, eps: f64) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        let hits = self.errors.iter().filter(|&&d| d.abs() < eps).count();
        hits as f64 / self.errors.len() as f64
    }

    /// Iterates over stored errors from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.errors.iter().copied()
    }
}

/// Tracks prediction errors for one (job, resource-type) stream and answers
/// the two questions CORP asks of it: "how wide should the confidence
/// interval be" and "may this prediction's unused resource be unlocked".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictionErrorTracker {
    window: ErrorWindow,
    /// Pre-specified prediction-error tolerance `eps` of Eq. 21.
    pub tolerance: f64,
    /// Probability threshold `P_th` of Eq. 21 (Table II default: 0.95).
    pub threshold: f64,
}

impl PredictionErrorTracker {
    /// Creates a tracker with an error window of `capacity` samples, error
    /// tolerance `eps`, and unlock threshold `p_th`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`, `eps <= 0`, or `p_th` is outside `[0, 1]`.
    pub fn new(capacity: usize, eps: f64, p_th: f64) -> Self {
        assert!(eps > 0.0, "tolerance must be positive, got {eps}");
        assert!(
            (0.0..=1.0).contains(&p_th),
            "P_th must be in [0,1], got {p_th}"
        );
        PredictionErrorTracker {
            window: ErrorWindow::new(capacity),
            tolerance: eps,
            threshold: p_th,
        }
    }

    /// Replaces the tolerance `eps` without discarding accumulated error
    /// samples (used when the tolerance becomes known only after warm-up,
    /// e.g. capacity-relative tolerances resolved on first cluster
    /// contact).
    pub fn set_tolerance(&mut self, eps: f64) {
        assert!(eps > 0.0, "tolerance must be positive, got {eps}");
        self.tolerance = eps;
    }

    /// Records the errors for one prediction window: `actuals` holds the
    /// observed unused resource at each slot `tau` in `(t, t+L]` and
    /// `predicted` is the (single) window forecast, per paper Eq. 20.
    pub fn record_window(&mut self, actuals: &[f64], predicted: f64) {
        for &u in actuals {
            self.window.push(u - predicted);
        }
    }

    /// Records a single slot's error directly.
    pub fn record(&mut self, actual: f64, predicted: f64) {
        self.window.push(actual - predicted);
    }

    /// Estimated standard deviation of recent errors (`sigma_hat`, Eq. 18).
    pub fn sigma_hat(&self) -> f64 {
        self.window.sigma_hat()
    }

    /// The preemption gate of paper Eq. 21: true iff
    /// `Pr(0 <= delta < eps) >= P_th` over the recent error window.
    pub fn unlocked(&self) -> bool {
        self.window.prob_within(self.tolerance) >= self.threshold
    }

    /// The symmetric-band preemption gate: true iff
    /// `Pr(|delta| < eps) >= P_th`. Use this when predictions carry the
    /// Eq. 19 conservatism bias (see [`ErrorWindow::prob_abs_within`]).
    pub fn unlocked_symmetric(&self) -> bool {
        self.window.prob_abs_within(self.tolerance) >= self.threshold
    }

    /// Empirical probability that `|delta| < eps`.
    pub fn prob_abs_within_tolerance(&self) -> f64 {
        self.window.prob_abs_within(self.tolerance)
    }

    /// Empirical probability that errors fall in `[0, eps)`.
    pub fn prob_within_tolerance(&self) -> f64 {
        self.window.prob_within(self.tolerance)
    }

    /// Number of error samples currently in the window.
    pub fn samples(&self) -> usize {
        self.window.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_evicts_oldest() {
        let mut w = ErrorWindow::new(3);
        for d in [1.0, 2.0, 3.0, 4.0] {
            w.push(d);
        }
        assert_eq!(w.len(), 3);
        let collected: Vec<f64> = w.iter().collect();
        assert_eq!(collected, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn sigma_hat_zero_until_two_samples() {
        let mut w = ErrorWindow::new(8);
        assert_eq!(w.sigma_hat(), 0.0);
        w.push(5.0);
        assert_eq!(w.sigma_hat(), 0.0);
        w.push(7.0);
        assert!(w.sigma_hat() > 0.0);
    }

    #[test]
    fn sigma_hat_matches_population_stddev() {
        let mut w = ErrorWindow::new(8);
        for d in [1.0, 2.0, 3.0, 4.0] {
            w.push(d);
        }
        assert!((w.sigma_hat() - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn prob_within_counts_half_open_interval() {
        let mut w = ErrorWindow::new(8);
        for d in [-0.5, 0.0, 0.4, 0.5, 1.0] {
            w.push(d);
        }
        // eps = 0.5: qualifying errors are 0.0 and 0.4 -> 2/5.
        assert!((w.prob_within(0.5) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn prob_within_empty_window_is_zero() {
        let w = ErrorWindow::new(4);
        assert_eq!(w.prob_within(1.0), 0.0);
    }

    #[test]
    fn tracker_unlocks_when_errors_are_small_nonnegative() {
        let mut t = PredictionErrorTracker::new(16, 0.5, 0.95);
        assert!(!t.unlocked(), "no evidence -> locked");
        for _ in 0..16 {
            t.record(10.0, 9.9); // delta = +0.1, inside [0, 0.5)
        }
        assert!(t.unlocked());
    }

    #[test]
    fn tracker_stays_locked_on_overestimation() {
        // Over-estimation (delta < 0) means the predictor promised more
        // unused resource than existed: dangerous to unlock.
        let mut t = PredictionErrorTracker::new(16, 0.5, 0.95);
        for _ in 0..16 {
            t.record(9.0, 10.0); // delta = -1.0
        }
        assert!(!t.unlocked());
        assert_eq!(t.prob_within_tolerance(), 0.0);
    }

    #[test]
    fn tracker_threshold_is_inclusive() {
        let mut t = PredictionErrorTracker::new(4, 1.0, 0.75);
        t.record(1.1, 1.0); // +0.1 inside
        t.record(1.2, 1.0); // +0.2 inside
        t.record(1.3, 1.0); // +0.3 inside
        t.record(0.0, 1.0); // -1.0 outside
        assert_eq!(t.prob_within_tolerance(), 0.75);
        assert!(t.unlocked(), "Eq. 21 uses >=, so exactly P_th unlocks");
    }

    #[test]
    fn record_window_applies_eq20_per_slot() {
        let mut t = PredictionErrorTracker::new(8, 0.5, 0.9);
        t.record_window(&[5.0, 5.2, 5.4], 5.0);
        assert_eq!(t.samples(), 3);
        // deltas: 0.0, 0.2, 0.4 — all within [0, 0.5).
        assert_eq!(t.prob_within_tolerance(), 1.0);
    }

    #[test]
    #[should_panic]
    fn tracker_rejects_nonpositive_tolerance() {
        PredictionErrorTracker::new(8, 0.0, 0.9);
    }
}
