//! Exponential-smoothing (ETS) forecasters.
//!
//! The RCCR baseline in the paper "used a time series forecasting technique,
//! i.e., Exponential Smoothing (ETS), to predict the amount of unused
//! resource of VMs" and then took the lower bound of a confidence interval.
//! We provide the three classic members of the family:
//!
//! * [`SimpleExp`] — simple exponential smoothing (level only), the default
//!   RCCR forecaster for patternless series.
//! * [`DoubleExp`] — Holt's linear method (level + trend).
//! * [`HoltWinters`] — additive seasonal Holt-Winters, which is the variant
//!   that *does* exploit patterns; experiments use it to show why
//!   pattern-based forecasting fails on short-lived jobs.
//!
//! All smoothers are incremental: `observe` folds one sample in O(1) and
//! `forecast(h)` extrapolates `h` steps ahead without touching history.

use serde::{Deserialize, Serialize};

/// Simple exponential smoothing: `level <- alpha * x + (1 - alpha) * level`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimpleExp {
    alpha: f64,
    level: Option<f64>,
}

impl SimpleExp {
    /// Creates a smoother with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0,1], got {alpha}"
        );
        SimpleExp { alpha, level: None }
    }

    /// Folds one observation into the level.
    pub fn observe(&mut self, x: f64) {
        self.level = Some(match self.level {
            None => x,
            Some(l) => self.alpha * x + (1.0 - self.alpha) * l,
        });
    }

    /// Folds a whole slice of observations.
    pub fn observe_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.observe(x);
        }
    }

    /// Flat forecast `h >= 1` steps ahead (SES forecasts are constant in the
    /// horizon). Returns `None` before the first observation.
    pub fn forecast(&self, _h: usize) -> Option<f64> {
        self.level
    }

    /// Current smoothed level, if any observation has been seen.
    pub fn level(&self) -> Option<f64> {
        self.level
    }
}

/// Holt's linear (double exponential) smoothing with level and trend.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DoubleExp {
    alpha: f64,
    beta: f64,
    state: Option<(f64, f64)>, // (level, trend)
    prev: Option<f64>,
}

impl DoubleExp {
    /// Creates a Holt smoother with level factor `alpha` and trend factor
    /// `beta`, both in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if either factor is outside `(0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0,1], got {alpha}"
        );
        assert!(
            beta > 0.0 && beta <= 1.0,
            "beta must be in (0,1], got {beta}"
        );
        DoubleExp {
            alpha,
            beta,
            state: None,
            prev: None,
        }
    }

    /// Folds one observation into level and trend.
    pub fn observe(&mut self, x: f64) {
        match (self.state, self.prev) {
            (None, None) => self.prev = Some(x),
            (None, Some(p)) => self.state = Some((x, x - p)),
            (Some((level, trend)), _) => {
                let new_level = self.alpha * x + (1.0 - self.alpha) * (level + trend);
                let new_trend = self.beta * (new_level - level) + (1.0 - self.beta) * trend;
                self.state = Some((new_level, new_trend));
            }
        }
    }

    /// Folds a whole slice of observations.
    pub fn observe_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.observe(x);
        }
    }

    /// Forecast `h >= 1` steps ahead: `level + h * trend`. Returns `None`
    /// until two observations have initialized the trend.
    pub fn forecast(&self, h: usize) -> Option<f64> {
        self.state.map(|(level, trend)| level + h as f64 * trend)
    }
}

/// Additive Holt-Winters smoothing with level, trend, and a seasonal cycle
/// of `period` slots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HoltWinters {
    alpha: f64,
    beta: f64,
    gamma: f64,
    period: usize,
    level: f64,
    trend: f64,
    seasonal: Vec<f64>,
    warmup: Vec<f64>,
    initialized: bool,
    t: usize,
}

impl HoltWinters {
    /// Creates an additive Holt-Winters smoother.
    ///
    /// # Panics
    ///
    /// Panics if any factor is outside `(0, 1]` or `period < 2`.
    pub fn new(alpha: f64, beta: f64, gamma: f64, period: usize) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0,1]");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0,1]");
        assert!(
            period >= 2,
            "seasonal period must be at least 2, got {period}"
        );
        HoltWinters {
            alpha,
            beta,
            gamma,
            period,
            level: 0.0,
            trend: 0.0,
            seasonal: Vec::new(),
            warmup: Vec::new(),
            initialized: false,
            t: 0,
        }
    }

    /// Folds one observation. The first two full periods are buffered to
    /// initialize the level/trend/seasonal components.
    pub fn observe(&mut self, x: f64) {
        if !self.initialized {
            self.warmup.push(x);
            if self.warmup.len() == 2 * self.period {
                self.initialize();
            }
            return;
        }
        let p = self.period;
        let season = self.seasonal[self.t % p];
        let new_level = self.alpha * (x - season) + (1.0 - self.alpha) * (self.level + self.trend);
        let new_trend = self.beta * (new_level - self.level) + (1.0 - self.beta) * self.trend;
        self.seasonal[self.t % p] = self.gamma * (x - new_level) + (1.0 - self.gamma) * season;
        self.level = new_level;
        self.trend = new_trend;
        self.t += 1;
    }

    fn initialize(&mut self) {
        let p = self.period;
        let first: f64 = self.warmup[..p].iter().sum::<f64>() / p as f64;
        let second: f64 = self.warmup[p..2 * p].iter().sum::<f64>() / p as f64;
        self.level = second;
        self.trend = (second - first) / p as f64;
        self.seasonal = (0..p)
            .map(|i| (self.warmup[i] - first + self.warmup[p + i] - second) / 2.0)
            .collect();
        self.warmup.clear();
        self.initialized = true;
        self.t = 0;
    }

    /// Forecast `h >= 1` steps ahead with the seasonal component folded in.
    /// Returns `None` until two full periods have been observed.
    pub fn forecast(&self, h: usize) -> Option<f64> {
        if !self.initialized {
            return None;
        }
        let p = self.period;
        let season = self.seasonal[(self.t + h - 1) % p];
        Some(self.level + h as f64 * self.trend + season)
    }

    /// Folds a whole slice of observations.
    pub fn observe_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.observe(x);
        }
    }

    /// Whether the initial two warm-up periods have completed.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ses_first_observation_sets_level() {
        let mut s = SimpleExp::new(0.3);
        assert_eq!(s.forecast(1), None);
        s.observe(10.0);
        assert_eq!(s.forecast(1), Some(10.0));
        assert_eq!(s.forecast(50), Some(10.0), "SES forecast is horizon-flat");
    }

    #[test]
    fn ses_converges_to_constant_series() {
        let mut s = SimpleExp::new(0.5);
        for _ in 0..64 {
            s.observe(7.0);
        }
        assert!((s.forecast(1).unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn ses_recursion_matches_definition() {
        let mut s = SimpleExp::new(0.25);
        s.observe(4.0);
        s.observe(8.0);
        // level = 0.25*8 + 0.75*4 = 5.0
        assert!((s.level().unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn ses_rejects_zero_alpha() {
        SimpleExp::new(0.0);
    }

    #[test]
    fn holt_tracks_linear_trend() {
        let mut s = DoubleExp::new(0.8, 0.8);
        for t in 0..100 {
            s.observe(2.0 * t as f64 + 1.0);
        }
        // A linear series should be extrapolated almost exactly.
        let f = s.forecast(5).unwrap();
        let expected = 2.0 * 104.0 + 1.0;
        assert!(
            (f - expected).abs() < 0.5,
            "forecast {f} vs expected {expected}"
        );
    }

    #[test]
    fn holt_needs_two_observations() {
        let mut s = DoubleExp::new(0.5, 0.5);
        assert_eq!(s.forecast(1), None);
        s.observe(1.0);
        assert_eq!(s.forecast(1), None);
        s.observe(2.0);
        assert!(s.forecast(1).is_some());
    }

    #[test]
    fn holt_winters_learns_seasonality() {
        // Period-4 sawtooth on a flat base.
        let pattern = [0.0, 5.0, 10.0, 5.0];
        let mut hw = HoltWinters::new(0.3, 0.1, 0.3, 4);
        for cycle in 0..32 {
            for &v in &pattern {
                let _ = cycle;
                hw.observe(v);
            }
        }
        assert!(hw.is_initialized());
        // Next step is the start of a new cycle -> ~0.0; two steps -> ~5.0.
        let f1 = hw.forecast(1).unwrap();
        let f2 = hw.forecast(2).unwrap();
        let f3 = hw.forecast(3).unwrap();
        assert!((f1 - 0.0).abs() < 1.0, "f1 = {f1}");
        assert!((f2 - 5.0).abs() < 1.0, "f2 = {f2}");
        assert!((f3 - 10.0).abs() < 1.0, "f3 = {f3}");
    }

    #[test]
    fn holt_winters_uninitialized_returns_none() {
        let mut hw = HoltWinters::new(0.3, 0.1, 0.3, 4);
        for v in [1.0, 2.0, 3.0] {
            hw.observe(v);
        }
        assert_eq!(hw.forecast(1), None);
    }

    #[test]
    #[should_panic]
    fn holt_winters_rejects_period_one() {
        HoltWinters::new(0.3, 0.1, 0.3, 1);
    }
}
