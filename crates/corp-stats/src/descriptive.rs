//! Descriptive statistics over resource-usage series.
//!
//! The CORP prediction pipeline repeatedly needs the maximum, mean, and
//! minimum of the unused-resource history (`max_cpu`, `m_cpu`, `min_cpu` in
//! the paper's HMM quantizer), as well as standard deviations of prediction
//! errors for the confidence interval of Eq. 18. These helpers are written
//! against `&[f64]` so callers can pass windows of larger buffers without
//! copying.

use serde::{Deserialize, Serialize};

/// Arithmetic mean of `xs`. Returns 0.0 for an empty slice (the CORP
/// pipeline treats "no history" as "no unused resource observed").
#[inline]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance of `xs` (divides by `n`, not `n-1`): prediction-error
/// windows are treated as the full population of observed errors.
#[inline]
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of `xs`.
#[inline]
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum of `xs`; 0.0 when empty. NaNs are skipped.
#[inline]
pub fn min(xs: &[f64]) -> f64 {
    let v = xs
        .iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(f64::INFINITY, f64::min);
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Maximum of `xs`; 0.0 when empty. NaNs are skipped.
#[inline]
pub fn max(xs: &[f64]) -> f64 {
    let v = xs
        .iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(f64::NEG_INFINITY, f64::max);
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Linear-interpolated percentile (`p` in `[0, 100]`) of `xs`.
///
/// Sorts a scratch copy; intended for reporting paths, not per-slot hot
/// loops. Returns 0.0 for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// One-pass summary of a series: count, mean, min, max, and standard
/// deviation (Welford's algorithm, numerically stable for long traces).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of accumulated samples.
    pub count: usize,
    /// Running mean.
    pub mean: f64,
    /// Smallest sample seen (`0.0` if none).
    pub min: f64,
    /// Largest sample seen (`0.0` if none).
    pub max: f64,
    m2: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            min: 0.0,
            max: 0.0,
            m2: 0.0,
        }
    }

    /// Accumulates one sample.
    pub fn push(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            if x < self.min {
                self.min = x;
            }
            if x > self.max {
                self.max = x;
            }
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Accumulates every sample in `xs`.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Builds a summary from a slice.
    pub fn of(xs: &[f64]) -> Self {
        let mut s = Self::new();
        s.extend(xs);
        s
    }

    /// Population variance of the accumulated samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation of the accumulated samples.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another summary into this one (parallel reduction support:
    /// Chan et al.'s pairwise update, so sweep workers can each keep a local
    /// `Summary` and combine at the end).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_of_constants() {
        assert!((mean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn variance_matches_hand_computation() {
        // xs = [1,2,3,4]; mean = 2.5; var = (2.25+0.25+0.25+2.25)/4 = 1.25
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((stddev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn variance_of_singleton_is_zero() {
        assert_eq!(variance(&[42.0]), 0.0);
    }

    #[test]
    fn min_max_basic() {
        let xs = [2.0, -1.0, 7.0, 3.0];
        assert_eq!(min(&xs), -1.0);
        assert_eq!(max(&xs), 7.0);
    }

    #[test]
    fn min_max_empty_default_to_zero() {
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
    }

    #[test]
    fn min_max_skip_nan() {
        let xs = [f64::NAN, 2.0, 5.0];
        assert_eq!(min(&xs), 2.0);
        assert_eq!(max(&xs), 5.0);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((percentile(&xs, 25.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 50.0), 3.0);
    }

    #[test]
    fn summary_matches_batch_functions() {
        let xs = [0.3, 1.7, -2.0, 5.5, 4.4, 0.0];
        let s = Summary::of(&xs);
        assert_eq!(s.count, xs.len());
        assert!((s.mean - mean(&xs)).abs() < 1e-12);
        assert!((s.variance() - variance(&xs)).abs() < 1e-12);
        assert_eq!(s.min, min(&xs));
        assert_eq!(s.max, max(&xs));
    }

    #[test]
    fn summary_merge_equals_concatenation() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let mut sa = Summary::of(&a);
        let sb = Summary::of(&b);
        sa.merge(&sb);
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let sc = Summary::of(&all);
        assert_eq!(sa.count, sc.count);
        assert!((sa.mean - sc.mean).abs() < 1e-12);
        assert!((sa.variance() - sc.variance()).abs() < 1e-9);
        assert_eq!(sa.min, sc.min);
        assert_eq!(sa.max, sc.max);
    }

    #[test]
    fn summary_merge_with_empty_is_identity() {
        let xs = [1.0, 2.0];
        let mut s = Summary::of(&xs);
        s.merge(&Summary::new());
        assert_eq!(s.count, 2);
        let mut e = Summary::new();
        e.merge(&Summary::of(&xs));
        assert_eq!(e.count, 2);
        assert!((e.mean - 1.5).abs() < 1e-12);
    }
}
