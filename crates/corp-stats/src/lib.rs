//! Statistical substrate for the CORP reproduction.
//!
//! This crate collects the numerical building blocks that the CORP scheduler
//! and its baselines (RCCR, CloudScale, DRA) rely on:
//!
//! * [`descriptive`] — means, variances, percentiles, min/max summaries of
//!   resource-usage series.
//! * [`quantile`] — the standard-normal inverse CDF used for the
//!   `z_{theta/2}` term of CORP's confidence intervals (paper Eq. 18).
//! * [`ets`] — the exponential-smoothing family (simple/Holt/Holt-Winters)
//!   used by the RCCR baseline's time-series forecaster.
//! * [`markov`] — a discrete-time Markov-chain predictor, the multi-step
//!   fallback predictor of the CloudScale baseline.
//! * [`fft`] — a radix-2 FFT used for CloudScale/PRESS-style signature
//!   (dominant-period) detection in resource-usage histories.
//! * [`error`] — prediction-error bookkeeping: the sliding error windows of
//!   paper Eq. 20 and the empirical `Pr(0 <= delta < eps)` estimate that
//!   feeds the probabilistic preemption gate of Eq. 21.
//! * [`sketch`] — a deterministic Greenwald–Khanna streaming quantile
//!   sketch, used by the `corp-serve` daemon for placement-latency
//!   percentiles over unbounded request streams.
//!
//! Everything here is deterministic and allocation-conscious; the hot paths
//! (forward smoothing passes, FFT butterflies) operate on slices in place.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Numerical kernels index several same-length arrays in lockstep; the
// index-based loops are clearer than zipped iterator chains there.
#![allow(clippy::needless_range_loop)]

pub mod descriptive;
pub mod error;
pub mod ets;
pub mod fft;
pub mod markov;
pub mod quantile;
pub mod sketch;

pub use descriptive::{max, mean, min, percentile, stddev, variance, Summary};
pub use error::{ErrorWindow, PredictionErrorTracker};
pub use ets::{DoubleExp, HoltWinters, SimpleExp};
pub use fft::{dominant_period, fft_magnitudes};
pub use markov::MarkovChain;
pub use quantile::{normal_cdf, normal_quantile, z_for_confidence};
pub use sketch::QuantileSketch;
