//! Radix-2 FFT for PRESS/CloudScale signature detection.
//!
//! CloudScale's underlying predictor (PRESS, Gong et al.) first looks for a
//! repeating *signature* in the resource-usage history by examining the
//! dominant frequency of the signal; only when no strong periodic component
//! exists does it fall back to the Markov-chain predictor in
//! [`crate::markov`]. We implement an in-place iterative Cooley-Tukey FFT
//! over `f64` pairs — no external numerics crates are available offline.

/// A complex number represented as `(re, im)`; kept as a plain tuple struct
/// to stay `Copy` and friendly to auto-vectorization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Squared magnitude `re^2 + im^2`.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    #[inline]
    fn mul(self, other: Complex) -> Complex {
        Complex::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }

    #[inline]
    fn add(self, other: Complex) -> Complex {
        Complex::new(self.re + other.re, self.im + other.im)
    }

    #[inline]
    fn sub(self, other: Complex) -> Complex {
        Complex::new(self.re - other.re, self.im - other.im)
    }
}

/// In-place iterative radix-2 Cooley-Tukey FFT.
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
pub fn fft_in_place(buf: &mut [Complex]) {
    let n = buf.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            buf.swap(i, j);
        }
    }

    // Butterfly passes.
    let mut len = 2;
    while len <= n {
        let angle = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(angle.cos(), angle.sin());
        for chunk in buf.chunks_exact_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let (lo, hi) = chunk.split_at_mut(len / 2);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let u = *a;
                let v = b.mul(w);
                *a = u.add(v);
                *b = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// Returns the magnitude spectrum of `signal`, zero-padded to the next power
/// of two and mean-centred (the DC component is removed so bin 0 does not
/// drown genuine periodicities).
pub fn fft_magnitudes(signal: &[f64]) -> Vec<f64> {
    if signal.is_empty() {
        return Vec::new();
    }
    let n = signal.len().next_power_of_two();
    let mean = signal.iter().sum::<f64>() / signal.len() as f64;
    let mut buf: Vec<Complex> = signal
        .iter()
        .map(|&x| Complex::new(x - mean, 0.0))
        .chain(std::iter::repeat(Complex::new(0.0, 0.0)))
        .take(n)
        .collect();
    fft_in_place(&mut buf);
    buf.iter().map(|c| c.norm_sq().sqrt()).collect()
}

/// Detects the dominant period (in samples) of `signal`, if one exists.
///
/// Scans the first half of the mean-centred magnitude spectrum and accepts
/// the strongest bin only if it concentrates at least `strength_threshold`
/// of the non-DC spectral energy (PRESS uses a similar dominance test to
/// decide between signature-driven and Markov prediction). Returns `None`
/// for flat, too-short, or aperiodic signals.
pub fn dominant_period(signal: &[f64], strength_threshold: f64) -> Option<usize> {
    if signal.len() < 8 {
        return None;
    }
    let mags = fft_magnitudes(signal);
    let n = mags.len();
    let half = &mags[1..n / 2];
    let total_energy: f64 = half.iter().map(|m| m * m).sum();
    if total_energy <= f64::EPSILON {
        return None;
    }
    let (best_idx, best_mag) = half
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))?;
    let freq_bin = best_idx + 1;
    let energy_share = best_mag * best_mag / total_energy;
    if energy_share < strength_threshold {
        return None;
    }
    let period = (n as f64 / freq_bin as f64).round() as usize;
    // Periods longer than the observed window are extrapolation, not
    // signature detection.
    if period >= signal.len() {
        None
    } else {
        Some(period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dft_naive(signal: &[Complex]) -> Vec<Complex> {
        let n = signal.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::new(0.0, 0.0);
                for (t, &x) in signal.iter().enumerate() {
                    let angle = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                    acc = acc.add(x.mul(Complex::new(angle.cos(), angle.sin())));
                }
                acc
            })
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        let signal: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64 * 0.7).sin() + 0.3 * i as f64, 0.0))
            .collect();
        let mut fast = signal.clone();
        fft_in_place(&mut fast);
        let slow = dft_naive(&signal);
        for (f, s) in fast.iter().zip(slow.iter()) {
            assert!(
                (f.re - s.re).abs() < 1e-9,
                "re mismatch: {} vs {}",
                f.re,
                s.re
            );
            assert!(
                (f.im - s.im).abs() < 1e-9,
                "im mismatch: {} vs {}",
                f.im,
                s.im
            );
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::new(0.0, 0.0); 8];
        buf[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut buf);
        for c in &buf {
            assert!((c.norm_sq().sqrt() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn fft_rejects_non_power_of_two() {
        let mut buf = vec![Complex::new(0.0, 0.0); 6];
        fft_in_place(&mut buf);
    }

    #[test]
    fn dominant_period_of_pure_sine() {
        // Period-16 sine sampled for 128 points.
        let signal: Vec<f64> = (0..128)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 16.0).sin())
            .collect();
        let period = dominant_period(&signal, 0.5).expect("sine must have a signature");
        assert_eq!(period, 16);
    }

    #[test]
    fn dominant_period_of_square_wave() {
        let signal: Vec<f64> = (0..128)
            .map(|t| if (t / 8) % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        let period = dominant_period(&signal, 0.3).expect("square wave is periodic");
        assert_eq!(period, 16);
    }

    #[test]
    fn no_period_in_flat_signal() {
        let signal = vec![5.0; 64];
        assert_eq!(dominant_period(&signal, 0.3), None);
    }

    #[test]
    fn no_period_in_white_noise() {
        // Deterministic pseudo-noise via a simple LCG: energy is spread, so
        // no bin should dominate at a 50% threshold.
        let mut x: u64 = 0x2545F4914F6CDD1D;
        let signal: Vec<f64> = (0..256)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        assert_eq!(dominant_period(&signal, 0.5), None);
    }

    #[test]
    fn short_signals_have_no_period() {
        assert_eq!(dominant_period(&[1.0, 2.0, 1.0], 0.1), None);
    }

    #[test]
    fn magnitudes_zero_pad_to_power_of_two() {
        let mags = fft_magnitudes(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(mags.len(), 8);
    }
}
