//! Streaming quantile sketch (Greenwald–Khanna).
//!
//! The serve daemon needs per-request placement-latency percentiles
//! (p50/p95/p99) over streams whose length is unknown up front, without
//! retaining every sample. The GK01 sketch maintains a sorted summary of
//! `O((1/eps) log(eps n))` tuples guaranteeing every rank query is within
//! `eps * n` of exact; it is fully deterministic (no sampling), so two runs
//! that feed the same values in the same order hold byte-identical
//! summaries — the property the serve determinism tests pin.
//!
//! For small streams (up to one compaction threshold) the summary simply
//! holds every sample and queries are exact, which keeps short smoke runs
//! honest.

/// One summary tuple: a value, the gap `g` to the previous tuple's minimum
/// rank, and the rank slack `delta`.
#[derive(Debug, Clone, Copy)]
struct Tuple {
    value: f64,
    g: u64,
    delta: u64,
}

/// A deterministic streaming quantile sketch (Greenwald–Khanna, SIGMOD'01)
/// with `eps`-approximate rank guarantees.
///
/// ```
/// use corp_stats::QuantileSketch;
/// let mut q = QuantileSketch::new(0.01);
/// for i in 0..1000 {
///     q.insert(i as f64);
/// }
/// let p50 = q.query(0.50).unwrap();
/// assert!((p50 - 500.0).abs() <= 20.0);
/// ```
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    eps: f64,
    tuples: Vec<Tuple>,
    count: u64,
    /// Compress every `1/(2 eps)` inserts (the GK batch-compress cadence).
    compress_period: u64,
}

impl QuantileSketch {
    /// Creates a sketch answering rank queries within `eps * n` of exact.
    /// `eps` is clamped to `[1e-4, 0.5]`; `0.005` is a good serving-latency
    /// default (p99 of a 10k-request run is exact to ±50 ranks).
    pub fn new(eps: f64) -> Self {
        let eps = eps.clamp(1e-4, 0.5);
        QuantileSketch {
            eps,
            tuples: Vec::new(),
            count: 0,
            compress_period: (1.0 / (2.0 * eps)).ceil() as u64,
        }
    }

    /// Number of values inserted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no values have been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Current summary size in tuples (diagnostics; bounded by
    /// `O((1/eps) log(eps n))`).
    pub fn summary_len(&self) -> usize {
        self.tuples.len()
    }

    /// Inserts one observation. Non-finite values are ignored — latency
    /// streams must never poison the summary.
    pub fn insert(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        // Find the insertion point keeping tuples sorted by value; ties
        // insert after existing equals (stable for repeated values).
        let pos = self.tuples.partition_point(|t| t.value <= value);
        let delta = if pos == 0 || pos == self.tuples.len() {
            // New minimum or maximum: its rank is known exactly.
            0
        } else {
            // Interior insert may sit anywhere within the neighbor's band;
            // `2 eps n - 1` keeps the g + delta <= 2 eps n invariant that
            // the query guarantee is proved from.
            ((2.0 * self.eps * self.count as f64).floor() as u64).saturating_sub(1)
        };
        self.tuples.insert(pos, Tuple { value, g: 1, delta });
        self.count += 1;
        if self.count % self.compress_period == 0 {
            self.compress();
        }
    }

    /// Merges adjacent tuples whose combined rank band still fits within
    /// `2 eps n`, keeping the summary logarithmic.
    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let threshold = (2.0 * self.eps * self.count as f64).floor() as u64;
        // Sweep right-to-left, folding tuple i into its right neighbor when
        // the merged band stays within the threshold. The first and last
        // tuples (exact min/max) are never folded away.
        let mut i = self.tuples.len() - 2;
        while i >= 1 {
            let merged_g = self.tuples[i].g + self.tuples[i + 1].g;
            if merged_g + self.tuples[i + 1].delta <= threshold {
                self.tuples[i + 1].g = merged_g;
                self.tuples.remove(i);
            }
            i -= 1;
        }
    }

    /// The value at quantile `q` in `[0, 1]`, or `None` on an empty
    /// sketch. Monotone in `q`; exact for streams that never compressed.
    pub fn query(&self, q: f64) -> Option<f64> {
        if self.tuples.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Target rank, 1-based. The GK rule: return the tuple preceding
        // the first whose max rank exceeds `rank + eps n` — the summary
        // invariant `g + delta <= 2 eps n` then bounds the returned
        // value's true rank within `eps n` of the target.
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let slack = (self.eps * self.count as f64).floor() as u64;
        let mut min_rank = 0u64;
        let mut prev = self.tuples[0].value;
        for t in &self.tuples {
            min_rank += t.g;
            if min_rank + t.delta > rank + slack {
                return Some(prev);
            }
            prev = t.value;
        }
        self.tuples.last().map(|t| t.value)
    }

    /// Smallest value inserted (exact).
    pub fn min(&self) -> Option<f64> {
        self.tuples.first().map(|t| t.value)
    }

    /// Largest value inserted (exact).
    pub fn max(&self) -> Option<f64> {
        self.tuples.last().map(|t| t.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_answers_none() {
        let q = QuantileSketch::new(0.01);
        assert!(q.is_empty());
        assert_eq!(q.query(0.5), None);
        assert_eq!(q.min(), None);
        assert_eq!(q.max(), None);
    }

    #[test]
    fn small_streams_are_exact() {
        let mut q = QuantileSketch::new(0.01);
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            q.insert(v);
        }
        assert_eq!(q.count(), 5);
        assert_eq!(q.min(), Some(1.0));
        assert_eq!(q.max(), Some(5.0));
        assert_eq!(q.query(0.0), Some(1.0));
        assert_eq!(q.query(1.0), Some(5.0));
        assert_eq!(q.query(0.5), Some(3.0));
    }

    #[test]
    fn large_uniform_stream_within_eps() {
        let eps = 0.01;
        let mut q = QuantileSketch::new(eps);
        let n = 10_000u64;
        // Deterministic shuffle-ish order: stride through the range with a
        // step coprime to n so inserts are far from sorted.
        let stride = 7919u64; // prime, gcd(7919, 10000) = 1
        for i in 0..n {
            q.insert(((i * stride) % n) as f64);
        }
        assert_eq!(q.count(), n);
        for &p in &[0.01, 0.25, 0.5, 0.75, 0.95, 0.99] {
            let got = q.query(p).unwrap();
            let want = p * n as f64;
            assert!(
                (got - want).abs() <= 2.0 * eps * n as f64,
                "p{p}: got {got}, want ~{want}"
            );
        }
        // Summary stays far below the stream length.
        assert!(
            q.summary_len() < n as usize / 4,
            "summary must compress: {} tuples",
            q.summary_len()
        );
    }

    #[test]
    fn queries_are_monotone_in_q() {
        let mut q = QuantileSketch::new(0.005);
        for i in 0..5000 {
            q.insert(((i * 31) % 5000) as f64);
        }
        let mut last = f64::NEG_INFINITY;
        for i in 0..=100 {
            let v = q.query(i as f64 / 100.0).unwrap();
            assert!(v >= last, "quantiles must be nondecreasing");
            last = v;
        }
    }

    #[test]
    fn nonfinite_inserts_are_ignored() {
        let mut q = QuantileSketch::new(0.01);
        q.insert(f64::NAN);
        q.insert(f64::INFINITY);
        assert!(q.is_empty());
        q.insert(2.0);
        assert_eq!(q.count(), 1);
        assert_eq!(q.query(0.99), Some(2.0));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut q = QuantileSketch::new(0.005);
            for i in 0..20_000u64 {
                q.insert(((i * 104_729) % 20_000) as f64);
            }
            (
                q.summary_len(),
                q.query(0.5).unwrap().to_bits(),
                q.query(0.95).unwrap().to_bits(),
                q.query(0.99).unwrap().to_bits(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn constant_stream_collapses() {
        let mut q = QuantileSketch::new(0.01);
        for _ in 0..10_000 {
            q.insert(42.0);
        }
        assert_eq!(q.query(0.5), Some(42.0));
        assert_eq!(q.query(0.99), Some(42.0));
        assert!(q.summary_len() < 200);
    }
}
