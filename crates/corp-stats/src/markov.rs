//! Discrete-time Markov-chain predictor.
//!
//! CloudScale (the PRESS-based baseline in the paper) falls back to a
//! "multi-step Markov prediction" when no periodic signature is found in the
//! resource-usage history. The chain discretizes the value range into `k`
//! equal-width bins, learns a transition matrix from the observed bin
//! sequence, and forecasts by pushing the current state distribution through
//! the matrix `h` times, returning the expected bin midpoint.

use serde::{Deserialize, Serialize};

/// A first-order discrete-time Markov chain over `k` equal-width value bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarkovChain {
    bins: usize,
    lo: f64,
    hi: f64,
    /// Row-major transition counts; row = from-bin, col = to-bin.
    counts: Vec<f64>,
    last_bin: Option<usize>,
}

impl MarkovChain {
    /// Creates a chain over the value range `[lo, hi]` split into `bins`
    /// equal-width states.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(bins: usize, lo: f64, hi: f64) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "range must be non-empty: [{lo}, {hi}]");
        MarkovChain {
            bins,
            lo,
            hi,
            counts: vec![0.0; bins * bins],
            last_bin: None,
        }
    }

    /// Number of states (bins).
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Maps a value to its bin, clamping out-of-range values to the edges.
    pub fn bin_of(&self, x: f64) -> usize {
        let width = (self.hi - self.lo) / self.bins as f64;
        let idx = ((x - self.lo) / width).floor();
        (idx.max(0.0) as usize).min(self.bins - 1)
    }

    /// Midpoint value represented by bin `b`.
    pub fn midpoint(&self, b: usize) -> f64 {
        let width = (self.hi - self.lo) / self.bins as f64;
        self.lo + (b as f64 + 0.5) * width
    }

    /// Folds one observation, updating the transition count from the
    /// previously observed bin.
    pub fn observe(&mut self, x: f64) {
        let b = self.bin_of(x);
        if let Some(prev) = self.last_bin {
            self.counts[prev * self.bins + b] += 1.0;
        }
        self.last_bin = Some(b);
    }

    /// Folds a whole slice of observations.
    pub fn observe_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.observe(x);
        }
    }

    /// Transition probability from bin `i` to bin `j` (Laplace-smoothed so
    /// unseen rows are uniform rather than degenerate).
    pub fn transition_prob(&self, i: usize, j: usize) -> f64 {
        let row = &self.counts[i * self.bins..(i + 1) * self.bins];
        let total: f64 = row.iter().sum();
        (row[j] + 1.0) / (total + self.bins as f64)
    }

    /// Predicts the expected value `h >= 1` steps ahead by evolving the
    /// current state distribution through the transition matrix.
    ///
    /// Returns `None` before any observation.
    pub fn forecast(&self, h: usize) -> Option<f64> {
        let start = self.last_bin?;
        let k = self.bins;
        let mut dist = vec![0.0; k];
        dist[start] = 1.0;
        let mut next = vec![0.0; k];
        for _ in 0..h.max(1) {
            next.iter_mut().for_each(|v| *v = 0.0);
            for (i, &p) in dist.iter().enumerate() {
                if p == 0.0 {
                    continue;
                }
                for j in 0..k {
                    next[j] += p * self.transition_prob(i, j);
                }
            }
            std::mem::swap(&mut dist, &mut next);
        }
        Some(
            dist.iter()
                .enumerate()
                .map(|(b, &p)| p * self.midpoint(b))
                .sum(),
        )
    }

    /// The most likely next bin from the current state, if any observation
    /// has been made.
    pub fn most_likely_next_bin(&self) -> Option<usize> {
        let start = self.last_bin?;
        (0..self.bins).max_by(|&a, &b| {
            self.transition_prob(start, a)
                .partial_cmp(&self.transition_prob(start, b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_mapping_covers_range() {
        let mc = MarkovChain::new(4, 0.0, 8.0);
        assert_eq!(mc.bin_of(0.0), 0);
        assert_eq!(mc.bin_of(1.9), 0);
        assert_eq!(mc.bin_of(2.0), 1);
        assert_eq!(mc.bin_of(7.9), 3);
        assert_eq!(mc.bin_of(8.0), 3, "upper edge clamps into last bin");
        assert_eq!(mc.bin_of(-5.0), 0, "below range clamps to first bin");
        assert_eq!(mc.bin_of(99.0), 3, "above range clamps to last bin");
    }

    #[test]
    fn midpoints_are_centered() {
        let mc = MarkovChain::new(4, 0.0, 8.0);
        assert_eq!(mc.midpoint(0), 1.0);
        assert_eq!(mc.midpoint(3), 7.0);
    }

    #[test]
    fn rows_are_stochastic_after_smoothing() {
        let mut mc = MarkovChain::new(3, 0.0, 3.0);
        mc.observe_all(&[0.5, 1.5, 2.5, 0.5, 1.5]);
        for i in 0..3 {
            let sum: f64 = (0..3).map(|j| mc.transition_prob(i, j)).sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn learns_deterministic_cycle() {
        // 0 -> 1 -> 2 -> 0 -> ... observed many times.
        let mut mc = MarkovChain::new(3, 0.0, 3.0);
        for _ in 0..50 {
            mc.observe_all(&[0.5, 1.5, 2.5]);
        }
        // Last observation was bin 2, so the next most-likely bin is 0.
        assert_eq!(mc.most_likely_next_bin(), Some(0));
        let f = mc.forecast(1).unwrap();
        assert!(
            (f - 0.5).abs() < 0.5,
            "forecast {f} should be near bin-0 midpoint"
        );
    }

    #[test]
    fn multistep_forecast_follows_cycle() {
        let mut mc = MarkovChain::new(3, 0.0, 3.0);
        for _ in 0..100 {
            mc.observe_all(&[0.5, 1.5, 2.5]);
        }
        // From bin 2: one step -> bin 0 (mid 0.5), two steps -> bin 1 (1.5).
        let f2 = mc.forecast(2).unwrap();
        assert!((f2 - 1.5).abs() < 0.6, "two-step forecast {f2}");
    }

    #[test]
    fn forecast_none_without_observations() {
        let mc = MarkovChain::new(3, 0.0, 1.0);
        assert_eq!(mc.forecast(1), None);
        assert_eq!(mc.most_likely_next_bin(), None);
    }

    #[test]
    fn stationary_forecast_for_constant_series() {
        let mut mc = MarkovChain::new(5, 0.0, 10.0);
        for _ in 0..100 {
            mc.observe(5.0);
        }
        let f = mc.forecast(3).unwrap();
        // Bin of 5.0 in [0,10) with 5 bins is bin 2, midpoint 5.0. Smoothing
        // pulls slightly toward the global mean but should stay close.
        assert!((f - 5.0).abs() < 1.0, "forecast {f}");
    }

    #[test]
    #[should_panic]
    fn rejects_empty_range() {
        MarkovChain::new(3, 1.0, 1.0);
    }
}
