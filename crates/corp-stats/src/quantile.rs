//! Standard-normal quantiles for CORP's confidence intervals.
//!
//! Paper Eq. 18 widens the predicted unused resource by `sigma_hat *
//! z_{theta/2}` where `z_{theta/2}` is the `100 * theta/2` percentile of the
//! standard normal distribution and `theta = 1 - eta` is the significance
//! level. We implement the inverse CDF with Acklam's rational approximation
//! (relative error < 1.15e-9 over the full open interval), which is more
//! than enough precision for resource provisioning.

/// Standard normal cumulative distribution function `Phi(x)`.
///
/// Uses the complementary-error-function identity with an Abramowitz &
/// Stegun 7.1.26-style polynomial; absolute error below `7.5e-8`.
pub fn normal_cdf(x: f64) -> f64 {
    // Phi(x) = 0.5 * erfc(-x / sqrt(2))
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function, Numerical Recipes' Chebyshev fit
/// (fractional error everywhere below `1.2e-7`).
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Inverse of the standard normal CDF: returns `z` such that `Phi(z) = p`.
///
/// Implements Peter Acklam's algorithm with one Halley refinement step.
///
/// # Panics
///
/// Panics if `p` is not in the open interval `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile requires p in (0,1), got {p}"
    );

    // Coefficients for the rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        // Rational approximation for the lower tail.
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        // Rational approximation for the central region.
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        // Upper tail, by symmetry.
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One step of Halley's method against the high-precision CDF sharpens
    // the estimate to near machine precision.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// The `z_{theta/2}` multiplier of paper Eq. 18 for a confidence level
/// `eta` in `(0, 1)`: the positive half-width of a symmetric
/// `eta`-confidence interval in standard-normal units.
///
/// For example `z_for_confidence(0.95) ~= 1.96`.
///
/// # Panics
///
/// Panics if `eta` is not in `(0, 1)`.
pub fn z_for_confidence(eta: f64) -> f64 {
    assert!(
        eta > 0.0 && eta < 1.0,
        "confidence level must lie in (0,1), got {eta}"
    );
    let theta = 1.0 - eta;
    // z_{theta/2} is the (1 - theta/2) quantile.
    normal_quantile(1.0 - theta / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_symmetry() {
        for &x in &[0.0, 0.5, 1.0, 2.0, 3.5] {
            let lhs = normal_cdf(x) + normal_cdf(-x);
            assert!((lhs - 1.0).abs() < 1e-7, "Phi({x}) + Phi(-{x}) = {lhs}");
        }
    }

    #[test]
    fn cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.0) - 0.841344746).abs() < 1e-6);
        assert!((normal_cdf(1.959963985) - 0.975).abs() < 1e-6);
        assert!((normal_cdf(-2.326347874) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn quantile_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-6);
        assert!((normal_quantile(0.975) - 1.959963985).abs() < 1e-6);
        assert!((normal_quantile(0.841344746) - 1.0).abs() < 1e-6);
        assert!((normal_quantile(0.01) + 2.326347874).abs() < 1e-6);
    }

    #[test]
    fn quantile_is_inverse_of_cdf() {
        for i in 1..100 {
            let p = i as f64 / 100.0;
            let z = normal_quantile(p);
            assert!(
                (normal_cdf(z) - p).abs() < 1e-7,
                "round trip failed at p={p}"
            );
        }
    }

    #[test]
    fn quantile_extreme_tails_are_finite_and_ordered() {
        let lo = normal_quantile(1e-10);
        let hi = normal_quantile(1.0 - 1e-10);
        assert!(lo.is_finite() && hi.is_finite());
        assert!(lo < -6.0 && hi > 6.0);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_zero() {
        normal_quantile(0.0);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_one() {
        normal_quantile(1.0);
    }

    #[test]
    fn z_for_common_confidence_levels() {
        assert!((z_for_confidence(0.95) - 1.959963985).abs() < 1e-6);
        assert!((z_for_confidence(0.90) - 1.644853627).abs() < 1e-6);
        assert!((z_for_confidence(0.50) - 0.674489750).abs() < 1e-6);
        assert!((z_for_confidence(0.99) - 2.575829304).abs() < 1e-6);
    }

    #[test]
    fn z_is_monotone_in_confidence() {
        // Paper Fig. 9: higher confidence -> wider interval -> more
        // conservative predictions. Monotonicity is the load-bearing fact.
        let mut prev = 0.0;
        for eta in [0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99] {
            let z = z_for_confidence(eta);
            assert!(z > prev, "z must increase with confidence level");
            prev = z;
        }
    }
}
