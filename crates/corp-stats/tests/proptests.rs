//! Property-based tests for the statistical substrate.

use corp_stats::{
    dominant_period, fft_magnitudes, mean, normal_cdf, normal_quantile, percentile, stddev,
    z_for_confidence, ErrorWindow, MarkovChain, QuantileSketch, SimpleExp, Summary,
};
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..max_len)
}

proptest! {
    #[test]
    fn mean_is_bounded_by_min_max(xs in finite_vec(64)) {
        let m = mean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn stddev_is_nonnegative(xs in finite_vec(64)) {
        prop_assert!(stddev(&xs) >= 0.0);
    }

    #[test]
    fn stddev_shift_invariant(xs in finite_vec(32), shift in -1e3f64..1e3) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        prop_assert!((stddev(&xs) - stddev(&shifted)).abs() < 1e-6);
    }

    #[test]
    fn percentile_monotone_in_p(xs in finite_vec(32), p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi) + 1e-9);
    }

    #[test]
    fn summary_merge_is_order_independent(a in finite_vec(32), b in finite_vec(32)) {
        let mut ab = Summary::of(&a);
        ab.merge(&Summary::of(&b));
        let mut ba = Summary::of(&b);
        ba.merge(&Summary::of(&a));
        prop_assert_eq!(ab.count, ba.count);
        prop_assert!((ab.mean - ba.mean).abs() < 1e-9 * (1.0 + ab.mean.abs()));
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-9 * (1.0 + ab.variance().abs()));
    }

    #[test]
    fn quantile_cdf_round_trip(p in 0.001f64..0.999) {
        let z = normal_quantile(p);
        prop_assert!((normal_cdf(z) - p).abs() < 1e-6);
    }

    #[test]
    fn quantile_is_monotone(p1 in 0.001f64..0.999, p2 in 0.001f64..0.999) {
        prop_assume!(p1 < p2);
        prop_assert!(normal_quantile(p1) < normal_quantile(p2));
    }

    #[test]
    fn z_for_confidence_positive(eta in 0.01f64..0.99) {
        prop_assert!(z_for_confidence(eta) > 0.0);
    }

    #[test]
    fn ses_forecast_within_observed_hull(xs in finite_vec(64), alpha in 0.01f64..1.0) {
        // SES is a convex combination of observations, so the forecast must
        // stay inside the observed min/max hull.
        let mut s = SimpleExp::new(alpha);
        s.observe_all(&xs);
        let f = s.forecast(1).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(f >= lo - 1e-9 && f <= hi + 1e-9);
    }

    #[test]
    fn markov_rows_always_stochastic(xs in finite_vec(64), bins in 2usize..8) {
        let mut mc = MarkovChain::new(bins, -1e6, 1e6);
        mc.observe_all(&xs);
        for i in 0..bins {
            let sum: f64 = (0..bins).map(|j| mc.transition_prob(i, j)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn markov_forecast_within_range(xs in finite_vec(64), h in 1usize..5) {
        let mut mc = MarkovChain::new(5, -1e6, 1e6);
        mc.observe_all(&xs);
        let f = mc.forecast(h).unwrap();
        prop_assert!((-1e6..=1e6).contains(&f));
    }

    #[test]
    fn fft_preserves_parseval(xs in prop::collection::vec(-100.0f64..100.0, 8usize..64)) {
        // Parseval: sum |X_k|^2 = N * sum |x_t|^2 for the padded,
        // mean-centred signal.
        let n = xs.len().next_power_of_two();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let time_energy: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
        let mags = fft_magnitudes(&xs);
        let freq_energy: f64 = mags.iter().map(|v| v * v).sum();
        prop_assert!((freq_energy - n as f64 * time_energy).abs() <= 1e-6 * (1.0 + freq_energy));
    }

    #[test]
    fn dominant_period_divides_reasonably(period in 4usize..32) {
        let signal: Vec<f64> = (0..256)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / period as f64).sin())
            .collect();
        if let Some(p) = dominant_period(&signal, 0.2) {
            // FFT bin quantization can be off by one sample for non-dyadic
            // periods; never wildly wrong.
            prop_assert!((p as i64 - period as i64).abs() <= 2, "detected {p}, true {period}");
        } else {
            prop_assert!(false, "pure sine must yield a signature");
        }
    }

    #[test]
    fn error_window_prob_in_unit_interval(ds in finite_vec(64), eps in 0.001f64..10.0) {
        let mut w = ErrorWindow::new(32);
        for d in ds {
            w.push(d);
        }
        let p = w.prob_within(eps);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn sketch_quantiles_within_eps_of_exact(
        xs in prop::collection::vec(-1e6f64..1e6, 1..512),
        q in 0.0f64..1.0,
    ) {
        let eps = 0.05;
        let mut sk = QuantileSketch::new(eps);
        for &x in &xs {
            sk.insert(x);
        }
        let got = sk.query(q).unwrap();
        // The GK guarantee: the returned value's true rank is within
        // eps * n of the requested rank.
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as f64;
        let target = (q * n).ceil().max(1.0);
        let lo = sorted.partition_point(|&v| v < got) as f64 + 1.0; // min rank of got
        let hi = sorted.partition_point(|&v| v <= got) as f64;      // max rank of got
        prop_assert!(
            hi >= target - eps * n - 1.0 && lo <= target + eps * n + 1.0,
            "rank band [{lo}, {hi}] vs target {target} (n={n})"
        );
        // And the summary never forgets the extremes.
        prop_assert_eq!(sk.min().unwrap(), sorted[0]);
        prop_assert_eq!(sk.max().unwrap(), sorted[sorted.len() - 1]);
    }
}
