//! Property-based tests for the DNN substrate.

use corp_dnn::{
    Activation, Matrix, Network, PredictScratch, TrainConfig, UnusedResourcePredictor,
    WindowPredictorConfig,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn matrix_mul_vec_is_linear(
        rows in 1usize..6, cols in 1usize..6,
        seed in 0u64..1000, a in -3.0f64..3.0, b in -3.0f64..3.0,
    ) {
        // M(a*x + b*y) == a*Mx + b*My
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let m = Matrix::from_fn(rows, cols, |_, _| next());
        let x: Vec<f64> = (0..cols).map(|_| next()).collect();
        let y: Vec<f64> = (0..cols).map(|_| next()).collect();
        let combo: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| a * xi + b * yi).collect();
        let mut out_combo = vec![0.0; rows];
        m.mul_vec_into(&combo, &mut out_combo);
        let mut out_x = vec![0.0; rows];
        m.mul_vec_into(&x, &mut out_x);
        let mut out_y = vec![0.0; rows];
        m.mul_vec_into(&y, &mut out_y);
        for i in 0..rows {
            let expect = a * out_x[i] + b * out_y[i];
            prop_assert!((out_combo[i] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn sigmoid_output_in_unit_interval(x in -50.0f64..50.0) {
        // At |x| >= ~37 the sigmoid saturates to exactly 0.0/1.0 in f64,
        // so the bound is closed.
        let y = Activation::Sigmoid.apply(x);
        prop_assert!((0.0..=1.0).contains(&y));
    }

    #[test]
    fn sigmoid_is_monotone(x1 in -20.0f64..20.0, x2 in -20.0f64..20.0) {
        prop_assume!(x1 < x2);
        prop_assert!(Activation::Sigmoid.apply(x1) < Activation::Sigmoid.apply(x2));
    }

    #[test]
    fn forward_is_deterministic(seed in 0u64..500, input in prop::collection::vec(-2.0f64..2.0, 3)) {
        let mut n1 = Network::new(&[3, 5, 2], Activation::Sigmoid, Activation::Identity, seed);
        let mut n2 = Network::new(&[3, 5, 2], Activation::Sigmoid, Activation::Identity, seed);
        prop_assert_eq!(n1.forward(&input).to_vec(), n2.forward(&input).to_vec());
    }

    #[test]
    fn forward_outputs_finite(seed in 0u64..500, input in prop::collection::vec(-10.0f64..10.0, 4)) {
        let mut n = Network::new(&[4, 8, 8, 1], Activation::Sigmoid, Activation::Identity, seed);
        let out = n.forward(&input);
        prop_assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn single_sgd_step_reduces_example_error(
        seed in 0u64..200,
        input in prop::collection::vec(-1.0f64..1.0, 3),
        target in -1.0f64..1.0,
    ) {
        // For a small learning rate, one gradient step must not increase
        // the error on the very example it was computed from.
        let mut n = Network::new(&[3, 6, 1], Activation::Sigmoid, Activation::Identity, seed);
        let before = {
            let y = n.forward(&input)[0];
            (y - target) * (y - target)
        };
        n.train_on(&input, &[target], 0.01, 0.0);
        let after = {
            let y = n.forward(&input)[0];
            (y - target) * (y - target)
        };
        prop_assert!(after <= before + 1e-9, "error rose: {before} -> {after}");
    }

    #[test]
    fn predictor_never_negative(
        recent in prop::collection::vec(0.0f64..100.0, 1..12),
    ) {
        let mut p = UnusedResourcePredictor::new(WindowPredictorConfig {
            window: 4,
            horizon: 1,
            units: 6,
            hidden_layers: 1,
            ..WindowPredictorConfig::default()
        });
        prop_assert!(p.predict(&recent) >= 0.0);
    }

    #[test]
    fn predict_scratch_reuse_matches_fresh_init(
        serieses in prop::collection::vec(
            prop::collection::vec(0.0f64..100.0, 1..14),
            1..6,
        ),
        level in 1.0f64..50.0,
    ) {
        // The pool runtime reuses one PredictScratch across every window a
        // worker serves; predictions through a long-lived scratch must be
        // bit-identical to predictions through a fresh one. Train so the
        // DNN path (and its activation buffers) is actually exercised.
        let mut p = UnusedResourcePredictor::new(WindowPredictorConfig {
            window: 4,
            horizon: 1,
            units: 5,
            hidden_layers: 1,
            train: TrainConfig { max_epochs: 3, ..TrainConfig::default() },
            ..WindowPredictorConfig::default()
        });
        let histories: Vec<Vec<f64>> = (0..4)
            .map(|j| (0..12).map(|t| level + ((t + j) % 3) as f64).collect())
            .collect();
        p.fit(&histories);
        let mut reused = PredictScratch::new();
        for s in &serieses {
            let with_reused = p.predict_with(s, &mut reused);
            let fresh = p.predict_with(s, &mut PredictScratch::new());
            prop_assert_eq!(with_reused.to_bits(), fresh.to_bits());
        }
    }
}
