//! Data-parallel training — the paper's future-work item: "we will further
//! consider designing a distributed deep learning training system to reduce
//! the computation overhead caused by DNN".
//!
//! [`ParallelTrainer`] implements synchronous data-parallel SGD (the
//! classic parameter-server/all-reduce scheme, single-machine edition):
//! each epoch the shuffled training set is split into `workers` shards,
//! every worker runs minibatch SGD over its shard on a *replica* of the
//! network (through the blocked batch kernels of
//! [`crate::network::BatchScratch`]), and
//! the replicas' weights are averaged back into the master — equivalent in
//! expectation to large-batch SGD with `workers`-fold less wall-clock per
//! epoch. Scoped threads keep the code data-race-free without `unsafe` or
//! reference counting; determinism is preserved because sharding and seeds
//! derive from the configured RNG, not thread scheduling.

use crate::network::Network;
use crate::train::{TrainConfig, TrainReport};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Synchronous data-parallel trainer.
#[derive(Debug, Clone)]
pub struct ParallelTrainer {
    config: TrainConfig,
    workers: usize,
}

impl ParallelTrainer {
    /// Creates a trainer fanning each epoch over `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`, the validation fraction is outside
    /// `(0, 1)`, the learning rate is not positive, or patience is zero.
    pub fn new(config: TrainConfig, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(
            config.validation_fraction > 0.0 && config.validation_fraction < 1.0,
            "validation fraction must be in (0,1)"
        );
        assert!(config.learning_rate > 0.0, "learning rate must be positive");
        assert!(config.patience > 0, "patience must be at least 1");
        ParallelTrainer { config, workers }
    }

    /// Number of worker threads per epoch.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Trains `net` on `(inputs, targets)` with data-parallel epochs and
    /// the same validation-convergence stopping rule as the sequential
    /// [`Trainer`](crate::train::Trainer).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or lengths mismatch.
    pub fn train(
        &self,
        net: &mut Network,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
    ) -> TrainReport {
        assert_eq!(inputs.len(), targets.len(), "dataset length mismatch");
        assert!(!inputs.is_empty(), "cannot train on an empty dataset");

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        order.shuffle(&mut rng);

        let val_len = ((inputs.len() as f64) * self.config.validation_fraction).round() as usize;
        let val_len = val_len.clamp(1, inputs.len().saturating_sub(1).max(1));
        let (train_idx, val_idx) = order.split_at(inputs.len() - val_len);
        assert!(
            !train_idx.is_empty(),
            "dataset too small for the validation split"
        );

        let val_inputs: Vec<Vec<f64>> = val_idx.iter().map(|&i| inputs[i].clone()).collect();
        let val_targets: Vec<Vec<f64>> = val_idx.iter().map(|&i| targets[i].clone()).collect();

        let mut train_order: Vec<usize> = train_idx.to_vec();
        // Per-worker batch scratch, handed out to the epoch's threads and
        // collected back at the join: the blocked-kernel buffers are sized
        // on the first epoch and reused for the rest of training instead
        // of reallocated every epoch. Scratch contents are fully rewritten
        // before every read, so reuse cannot change a gradient.
        let mut scratches: Vec<crate::network::BatchScratch> = Vec::new();
        let mut history = Vec::new();
        let mut best = f64::INFINITY;
        let mut calm_epochs = 0;
        let mut converged = false;
        let workers = self.workers.min(train_order.len());

        for _epoch in 0..self.config.max_epochs {
            train_order.shuffle(&mut rng);

            // Fan the epoch out: one replica per shard, trained in
            // parallel through the blocked minibatch kernel (each worker
            // owns its batch scratch), then weight-averaged back into the
            // master. The minibatch uses the mean gradient, so the
            // learning rate is scaled by the batch width (the classic
            // linear-scaling rule) to keep per-epoch movement comparable
            // to per-sample SGD.
            let shards: Vec<&[usize]> = chunks(&train_order, workers);
            let batch = self.config.batch_size.max(1);
            let mut replicas: Vec<Network> = Vec::with_capacity(shards.len());
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(shards.len());
                for shard in &shards {
                    let mut replica = net.clone();
                    let mut scratch: crate::network::BatchScratch =
                        scratches.pop().unwrap_or_default();
                    let lr = self.config.learning_rate * batch as f64;
                    let momentum = self.config.momentum;
                    handles.push(scope.spawn(move || {
                        replica.train_minibatches(
                            inputs,
                            targets,
                            shard,
                            batch,
                            lr,
                            momentum,
                            &mut scratch,
                        );
                        (replica, scratch)
                    }));
                }
                for h in handles {
                    let (replica, scratch) = h.join().expect("training worker panicked");
                    replicas.push(replica);
                    scratches.push(scratch);
                }
            });
            average_into(net, &replicas);

            let val_mse = net.mse(&val_inputs, &val_targets);
            history.push(val_mse);
            let improvement = if best.is_infinite() {
                1.0
            } else if best > 0.0 {
                (best - val_mse) / best
            } else {
                0.0
            };
            if val_mse < best {
                best = val_mse;
            }
            if improvement < self.config.tolerance {
                calm_epochs += 1;
                if calm_epochs >= self.config.patience {
                    converged = true;
                    break;
                }
            } else {
                calm_epochs = 0;
            }
        }

        TrainReport {
            epochs_run: history.len(),
            final_validation_mse: *history.last().expect("at least one epoch runs"),
            validation_history: history,
            converged,
        }
    }
}

/// Splits `items` into `n` nearly-equal contiguous shards (the final shard
/// absorbs the remainder). Never returns empty shards.
fn chunks(items: &[usize], n: usize) -> Vec<&[usize]> {
    let n = n.min(items.len()).max(1);
    let base = items.len() / n;
    let extra = items.len() % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for w in 0..n {
        let len = base + usize::from(w < extra);
        out.push(&items[start..start + len]);
        start += len;
    }
    out
}

/// Averages replica weights element-wise into the master network. Runs on
/// the flat weight slices (replicas are joined in shard order, so the
/// reduction order — and hence the result — is deterministic).
fn average_into(master: &mut Network, replicas: &[Network]) {
    if replicas.is_empty() {
        return;
    }
    let scale = 1.0 / replicas.len() as f64;
    for d in 0..master.depth() {
        let weight_srcs: Vec<&[f64]> = replicas
            .iter()
            .map(|n| n.layer_weights(d).as_slice())
            .collect();
        for (k, w) in master
            .layer_weights_mut(d)
            .as_mut_slice()
            .iter_mut()
            .enumerate()
        {
            *w = weight_srcs.iter().map(|s| s[k]).sum::<f64>() * scale;
        }
        let bias_srcs: Vec<&[f64]> = replicas.iter().map(|n| n.layer_biases(d)).collect();
        for (k, b) in master.layer_biases_mut(d).iter_mut().enumerate() {
            *b = bias_srcs.iter().map(|s| s[k]).sum::<f64>() * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;

    fn toy_dataset(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let inputs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i as f64 / n as f64), ((i * 3 % n) as f64 / n as f64)])
            .collect();
        let targets: Vec<Vec<f64>> = inputs
            .iter()
            .map(|x| vec![0.6 * x[0] - 0.3 * x[1]])
            .collect();
        (inputs, targets)
    }

    #[test]
    fn parallel_training_converges() {
        let (inputs, targets) = toy_dataset(120);
        let mut net = Network::new(&[2, 10, 1], Activation::Sigmoid, Activation::Identity, 2);
        let trainer = ParallelTrainer::new(
            TrainConfig {
                max_epochs: 200,
                ..TrainConfig::default()
            },
            4,
        );
        let report = trainer.train(&mut net, &inputs, &targets);
        assert!(
            report.final_validation_mse < 0.01,
            "validation MSE too high: {}",
            report.final_validation_mse
        );
    }

    #[test]
    fn single_worker_behaves_like_a_trainer() {
        let (inputs, targets) = toy_dataset(60);
        let mut net = Network::new(&[2, 6, 1], Activation::Sigmoid, Activation::Identity, 3);
        let trainer = ParallelTrainer::new(
            TrainConfig {
                max_epochs: 300,
                patience: 50,
                ..TrainConfig::default()
            },
            1,
        );
        let report = trainer.train(&mut net, &inputs, &targets);
        assert!(
            report.final_validation_mse < 0.03,
            "MSE {}",
            report.final_validation_mse
        );
    }

    #[test]
    fn parallel_training_is_deterministic() {
        // Worker shards and seeds derive from the config RNG, so two runs
        // must produce bit-identical networks despite the thread fan-out.
        let (inputs, targets) = toy_dataset(80);
        let run = || {
            let mut net = Network::new(&[2, 8, 1], Activation::Sigmoid, Activation::Identity, 5);
            let trainer = ParallelTrainer::new(
                TrainConfig {
                    max_epochs: 12,
                    patience: 100,
                    ..TrainConfig::default()
                },
                4,
            );
            trainer.train(&mut net, &inputs, &targets);
            net.forward(&[0.3, 0.7])[0]
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }

    #[test]
    fn more_workers_than_examples_is_fine() {
        let (inputs, targets) = toy_dataset(6);
        let mut net = Network::new(&[2, 4, 1], Activation::Sigmoid, Activation::Identity, 7);
        let trainer = ParallelTrainer::new(
            TrainConfig {
                max_epochs: 5,
                ..TrainConfig::default()
            },
            64,
        );
        let report = trainer.train(&mut net, &inputs, &targets);
        assert_eq!(report.epochs_run, report.validation_history.len());
    }

    #[test]
    fn chunks_cover_everything_without_overlap() {
        let items: Vec<usize> = (0..17).collect();
        let shards = chunks(&items, 4);
        assert_eq!(shards.len(), 4);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, 17);
        let flat: Vec<usize> = shards.iter().flat_map(|s| s.iter().copied()).collect();
        assert_eq!(flat, items);
    }

    #[test]
    #[should_panic]
    fn zero_workers_rejected() {
        ParallelTrainer::new(TrainConfig::default(), 0);
    }
}
