//! The multi-layer network: feed-forward (Eq. 5), back-propagation
//! (Eqs. 6-7), and weight updates (Eq. 8).
//!
//! The network owns per-layer weight matrices and bias vectors plus scratch
//! buffers for activations and error terms, so a forward/backward pass
//! allocates nothing. SGD with optional momentum is implemented directly in
//! [`Network::train_on`]; epoch orchestration and validation-convergence
//! stopping live in [`crate::train`].

use crate::activation::Activation;
use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One fully-connected layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Layer {
    /// `weights[i][j]` = `w_ij(d-1, d)`: connection from neuron `j` in the
    /// lower layer to neuron `i` in this layer.
    weights: Matrix,
    /// Bias term `e_i` per neuron.
    biases: Vec<f64>,
    activation: Activation,
    /// Momentum buffers (same shapes as weights/biases).
    weight_velocity: Matrix,
    bias_velocity: Vec<f64>,
}

/// A feed-forward neural network with dense layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Layer>,
    /// Activations per layer, `activations[0]` is the input copy.
    #[serde(skip)]
    activations: Vec<Vec<f64>>,
    /// Error terms `E_i(d)` per non-input layer.
    #[serde(skip)]
    errors: Vec<Vec<f64>>,
}

impl Network {
    /// Builds a network with the given layer sizes, e.g. `[12, 50, 50, 50,
    /// 50, 1]` for the paper's 4 hidden layers of 50 units. Hidden layers
    /// use `hidden`, the output layer uses `output`.
    ///
    /// Weights are initialized uniformly in `±1/sqrt(fan_in)` (the classic
    /// recipe for sigmoid nets) from a seeded RNG, so construction is
    /// deterministic.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new(sizes: &[usize], hidden: Activation, output: Activation, seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for w in sizes.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let bound = 1.0 / (fan_in as f64).sqrt();
            let weights = Matrix::from_fn(fan_out, fan_in, |_, _| rng.gen_range(-bound..bound));
            let is_output = layers.len() == sizes.len() - 2;
            layers.push(Layer {
                weights,
                biases: vec![0.0; fan_out],
                activation: if is_output { output } else { hidden },
                weight_velocity: Matrix::zeros(fan_out, fan_in),
                bias_velocity: vec![0.0; fan_out],
            });
        }
        let activations = sizes.iter().map(|&s| vec![0.0; s]).collect();
        let errors = sizes[1..].iter().map(|&s| vec![0.0; s]).collect();
        Network {
            layers,
            activations,
            errors,
        }
    }

    /// Convenience constructor for the paper's Table II architecture:
    /// `h = 4` sigmoid layers of `units` neurons between `inputs` and
    /// `outputs` (identity output for regression).
    pub fn paper_architecture(inputs: usize, units: usize, outputs: usize, seed: u64) -> Self {
        Self::new(
            &[inputs, units, units, units, units, outputs],
            Activation::Sigmoid,
            Activation::Identity,
            seed,
        )
    }

    /// Input dimension.
    pub fn input_len(&self) -> usize {
        self.activations[0].len()
    }

    /// Output dimension.
    pub fn output_len(&self) -> usize {
        self.activations.last().expect("networks have layers").len()
    }

    /// Number of weight layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Re-creates the scratch buffers after deserialization (serde skips
    /// them). Called lazily by the passes; public for completeness.
    pub fn ensure_scratch(&mut self) {
        if self.activations.len() == self.layers.len() + 1 {
            return;
        }
        let mut sizes = Vec::with_capacity(self.layers.len() + 1);
        sizes.push(self.layers[0].weights.cols());
        for l in &self.layers {
            sizes.push(l.weights.rows());
        }
        self.activations = sizes.iter().map(|&s| vec![0.0; s]).collect();
        self.errors = sizes[1..].iter().map(|&s| vec![0.0; s]).collect();
    }

    /// Feed-forward evaluation (paper Eq. 5). Returns the output slice.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the input layer.
    pub fn forward(&mut self, input: &[f64]) -> &[f64] {
        self.ensure_scratch();
        assert_eq!(input.len(), self.input_len(), "input length mismatch");
        self.activations[0].copy_from_slice(input);
        for (d, layer) in self.layers.iter().enumerate() {
            let (lower, upper) = self.activations.split_at_mut(d + 1);
            let g_prev = &lower[d];
            let g_cur = &mut upper[0];
            layer.weights.mul_vec_into(g_prev, g_cur);
            for (g, b) in g_cur.iter_mut().zip(&layer.biases) {
                *g = layer.activation.apply(*g + b);
            }
        }
        self.activations.last().expect("networks have layers")
    }

    /// One stochastic training step on a single example: forward pass,
    /// back-propagation of error terms (Eqs. 6-7), and weight update
    /// (Eq. 8) with learning rate `mu` and momentum factor `momentum`
    /// (0.0 recovers the paper's plain update).
    ///
    /// Returns the example's squared error before the update.
    ///
    /// # Panics
    ///
    /// Panics if input/target lengths mismatch the architecture.
    pub fn train_on(&mut self, input: &[f64], target: &[f64], mu: f64, momentum: f64) -> f64 {
        assert_eq!(target.len(), self.output_len(), "target length mismatch");
        self.forward(input);

        // Output-layer error terms: E_i = (t_i - g_i) * F'(g_i)  (Eq. 6).
        let out_idx = self.layers.len() - 1;
        let mut sq_err = 0.0;
        {
            let g_out = self.activations.last().expect("layers exist");
            let act = self.layers[out_idx].activation;
            for ((e, &g), &t) in self.errors[out_idx].iter_mut().zip(g_out).zip(target) {
                let diff = t - g;
                sq_err += diff * diff;
                *e = diff * act.derivative_from_output(g);
            }
        }

        // Hidden-layer error terms: E_i(d) = (sum_j E_j(d+1) w_ji) F'(g_i)
        // (Eq. 7), computed top-down.
        for d in (0..out_idx).rev() {
            let (lower_errs, upper_errs) = self.errors.split_at_mut(d + 1);
            let e_cur = &mut lower_errs[d];
            let e_up = &upper_errs[0];
            self.layers[d + 1]
                .weights
                .mul_vec_transposed_into(e_up, e_cur);
            let act = self.layers[d].activation;
            for (e, &g) in e_cur.iter_mut().zip(&self.activations[d + 1]) {
                *e *= act.derivative_from_output(g);
            }
        }

        // Weight updates: dw_ij = mu * E_i(d) * g_j(d-1)  (Eq. 8), with an
        // optional classical-momentum velocity term.
        for (d, layer) in self.layers.iter_mut().enumerate() {
            let errs = &self.errors[d];
            let g_prev = &self.activations[d];
            if momentum > 0.0 {
                layer.weight_velocity.scale(momentum);
                layer.weight_velocity.add_outer_scaled(errs, g_prev, mu);
                layer.weights.add_assign(&layer.weight_velocity);
                for ((b, v), e) in layer
                    .biases
                    .iter_mut()
                    .zip(&mut layer.bias_velocity)
                    .zip(errs)
                {
                    *v = momentum * *v + mu * e;
                    *b += *v;
                }
            } else {
                layer.weights.add_outer_scaled(errs, g_prev, mu);
                for (b, e) in layer.biases.iter_mut().zip(errs) {
                    *b += mu * e;
                }
            }
        }
        sq_err
    }

    /// Mean squared error of the network over a dataset, without updating
    /// weights.
    pub fn mse(&mut self, inputs: &[Vec<f64>], targets: &[Vec<f64>]) -> f64 {
        assert_eq!(inputs.len(), targets.len(), "dataset length mismatch");
        if inputs.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for (x, t) in inputs.iter().zip(targets) {
            let y = self.forward(x);
            total += y.iter().zip(t).map(|(a, b)| (a - b) * (a - b)).sum::<f64>();
        }
        total / inputs.len() as f64
    }

    /// Access to a layer's weight matrix (tests, gradient checks).
    pub fn layer_weights(&self, d: usize) -> &Matrix {
        &self.layers[d].weights
    }

    /// Mutable access to a layer's weight matrix (gradient checks perturb
    /// single weights).
    pub fn layer_weights_mut(&mut self, d: usize) -> &mut Matrix {
        &mut self.layers[d].weights
    }

    /// Access to a layer's bias vector (replica averaging).
    pub fn layer_biases(&self, d: usize) -> &[f64] {
        &self.layers[d].biases
    }

    /// Mutable access to a layer's bias vector (replica averaging).
    pub fn layer_biases_mut(&mut self, d: usize) -> &mut [f64] {
        &mut self.layers[d].biases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_output_has_right_shape() {
        let mut net = Network::new(&[3, 5, 2], Activation::Sigmoid, Activation::Identity, 1);
        let out = net.forward(&[0.1, 0.2, 0.3]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn construction_is_deterministic_per_seed() {
        let a = Network::new(&[3, 4, 1], Activation::Sigmoid, Activation::Identity, 7);
        let b = Network::new(&[3, 4, 1], Activation::Sigmoid, Activation::Identity, 7);
        assert_eq!(a.layer_weights(0).as_slice(), b.layer_weights(0).as_slice());
    }

    #[test]
    fn sigmoid_hidden_activations_bounded() {
        let mut net = Network::new(&[2, 8, 1], Activation::Sigmoid, Activation::Sigmoid, 3);
        let out = net.forward(&[100.0, -100.0]);
        assert!(out[0] > 0.0 && out[0] < 1.0);
    }

    #[test]
    fn paper_architecture_has_four_hidden_layers() {
        let net = Network::paper_architecture(12, 50, 3, 1);
        assert_eq!(net.depth(), 5, "4 hidden + 1 output weight layers");
        assert_eq!(net.input_len(), 12);
        assert_eq!(net.output_len(), 3);
    }

    #[test]
    fn training_reduces_error_on_linear_task() {
        // y = 0.5*x0 - 0.25*x1 is learnable by a tiny net.
        let mut net = Network::new(&[2, 8, 1], Activation::Sigmoid, Activation::Identity, 5);
        let data: Vec<(Vec<f64>, Vec<f64>)> = (0..50)
            .map(|i| {
                let x0 = (i % 10) as f64 / 10.0;
                let x1 = (i / 10) as f64 / 5.0;
                (vec![x0, x1], vec![0.5 * x0 - 0.25 * x1])
            })
            .collect();
        let inputs: Vec<Vec<f64>> = data.iter().map(|d| d.0.clone()).collect();
        let targets: Vec<Vec<f64>> = data.iter().map(|d| d.1.clone()).collect();
        let before = net.mse(&inputs, &targets);
        for _ in 0..200 {
            for (x, t) in inputs.iter().zip(&targets) {
                net.train_on(x, t, 0.1, 0.0);
            }
        }
        let after = net.mse(&inputs, &targets);
        assert!(after < before * 0.2, "MSE {before} -> {after} insufficient");
    }

    #[test]
    fn momentum_training_also_converges() {
        let mut net = Network::new(&[1, 6, 1], Activation::Tanh, Activation::Identity, 9);
        let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0]).collect();
        let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![x[0] * x[0]]).collect();
        for _ in 0..300 {
            for (x, t) in inputs.iter().zip(&targets) {
                net.train_on(x, t, 0.05, 0.9);
            }
        }
        assert!(net.mse(&inputs, &targets) < 0.01);
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        // The definitive Eq. 6-8 correctness test: analytic gradient (via a
        // mu=1 update direction) must match numeric d(loss)/d(w).
        let net = Network::new(&[3, 4, 2], Activation::Sigmoid, Activation::Identity, 11);
        let x = [0.3, -0.6, 0.9];
        let t = [0.2, -0.1];
        let loss = |n: &mut Network| {
            let y = n.forward(&x);
            y.iter()
                .zip(&t)
                .map(|(a, b)| 0.5 * (a - b) * (a - b))
                .sum::<f64>()
        };
        // Analytic gradient: train_on applies dw = mu * E * g with
        // E = (t-y)F', which is exactly -d(loss)/dw, so compare the weight
        // delta (at mu=1) to the negative numeric gradient.
        for layer in 0..2 {
            for r in 0..net.layer_weights(layer).rows() {
                for c in 0..net.layer_weights(layer).cols() {
                    let eps = 1e-6;
                    let mut probe = net.clone();
                    *probe.layer_weights_mut(layer).get_mut(r, c) += eps;
                    let lp = loss(&mut probe);
                    let mut probe2 = net.clone();
                    *probe2.layer_weights_mut(layer).get_mut(r, c) -= eps;
                    let lm = loss(&mut probe2);
                    let numeric = (lp - lm) / (2.0 * eps);

                    let mut trained = net.clone();
                    let w_before = trained.layer_weights(layer).get(r, c);
                    trained.train_on(&x, &t, 1.0, 0.0);
                    let analytic = trained.layer_weights(layer).get(r, c) - w_before;

                    assert!(
                        (analytic + numeric).abs() < 1e-4,
                        "layer {layer} w[{r}][{c}]: update {analytic} vs -grad {}",
                        -numeric
                    );
                }
            }
        }
    }

    #[test]
    fn mse_of_empty_dataset_is_zero() {
        let mut net = Network::new(&[2, 3, 1], Activation::Sigmoid, Activation::Identity, 1);
        assert_eq!(net.mse(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn forward_rejects_wrong_input_len() {
        let mut net = Network::new(&[3, 2, 1], Activation::Sigmoid, Activation::Identity, 1);
        net.forward(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn new_rejects_single_layer() {
        Network::new(&[3], Activation::Sigmoid, Activation::Identity, 1);
    }
}
