//! The multi-layer network: feed-forward (Eq. 5), back-propagation
//! (Eqs. 6-7), and weight updates (Eq. 8).
//!
//! The network owns per-layer weight matrices and bias vectors plus scratch
//! buffers for activations and error terms, so a forward/backward pass
//! allocates nothing. SGD with optional momentum is implemented directly in
//! [`Network::train_on`]; epoch orchestration and validation-convergence
//! stopping live in [`crate::train`].

use crate::activation::Activation;
use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One fully-connected layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Layer {
    /// `weights[i][j]` = `w_ij(d-1, d)`: connection from neuron `j` in the
    /// lower layer to neuron `i` in this layer.
    weights: Matrix,
    /// Bias term `e_i` per neuron.
    biases: Vec<f64>,
    activation: Activation,
    /// Momentum buffers (same shapes as weights/biases).
    weight_velocity: Matrix,
    bias_velocity: Vec<f64>,
}

/// A feed-forward neural network with dense layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Layer>,
    /// Activations per layer, `activations[0]` is the input copy.
    #[serde(skip)]
    activations: Vec<Vec<f64>>,
    /// Error terms `E_i(d)` per non-input layer.
    #[serde(skip)]
    errors: Vec<Vec<f64>>,
}

/// External activation scratch for [`Network::forward_with`], letting many
/// threads evaluate one shared `&Network` concurrently without the network's
/// own internal buffers. Reused across calls, so steady-state inference
/// allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    activations: Vec<Vec<f64>>,
}

impl Scratch {
    /// An empty scratch; sized lazily on first use.
    pub fn new() -> Self {
        Scratch::default()
    }

    fn ensure(&mut self, net: &Network) {
        let fits = self.activations.len() == net.layers.len() + 1
            && self
                .activations
                .iter()
                .zip(
                    std::iter::once(net.input_len())
                        .chain(net.layers.iter().map(|l| l.weights.rows())),
                )
                .all(|(buf, want)| buf.len() == want);
        if fits {
            return;
        }
        self.activations = std::iter::once(net.input_len())
            .chain(net.layers.iter().map(|l| l.weights.rows()))
            .map(|s| vec![0.0; s])
            .collect();
    }
}

/// Preallocated feature-major buffers for the minibatch kernels
/// ([`Network::train_minibatches`], [`Network::mse_batched`]). Column `b` of
/// every matrix holds sample `b` of the current batch. Reused across
/// batches and epochs, so steady-state training allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    /// Activations per layer; `acts[0]` is the gathered input batch.
    acts: Vec<Matrix>,
    /// Error terms per non-input layer.
    errs: Vec<Matrix>,
    /// Gathered target batch.
    targets: Option<Matrix>,
    /// Transposed activation batch, rebuilt per layer inside the gradient
    /// step (see [`Matrix::add_batch_outer_pretransposed`]).
    acts_t: Option<Matrix>,
    /// Accumulated minibatch weight gradients per layer.
    grad_w: Vec<Matrix>,
    /// Accumulated minibatch bias gradients per layer.
    grad_b: Vec<Vec<f64>>,
    /// Batch width the buffers are currently sized for.
    cols: usize,
}

impl BatchScratch {
    /// An empty scratch; sized lazily on first use.
    pub fn new() -> Self {
        BatchScratch::default()
    }

    fn ensure(&mut self, net: &Network, cols: usize) {
        debug_assert!(cols > 0, "batch width must be positive");
        if self.cols == cols && self.acts.len() == net.layers.len() + 1 {
            return;
        }
        let sizes: Vec<usize> = std::iter::once(net.input_len())
            .chain(net.layers.iter().map(|l| l.weights.rows()))
            .collect();
        // Same architecture, different batch width: reshape in place so
        // alternating widths (full chunks vs. the epoch's tail chunk)
        // never reallocate.
        if self.acts.len() == sizes.len()
            && self.acts.iter().zip(&sizes).all(|(m, &s)| m.rows() == s)
        {
            for m in self.acts.iter_mut().chain(&mut self.errs) {
                m.reshape_cols(cols);
            }
            if let Some(t) = self.targets.as_mut() {
                t.reshape_cols(cols);
            }
            self.cols = cols;
            return;
        }
        self.acts = sizes.iter().map(|&s| Matrix::zeros(s, cols)).collect();
        self.errs = sizes[1..].iter().map(|&s| Matrix::zeros(s, cols)).collect();
        self.targets = Some(Matrix::zeros(net.output_len(), cols));
        let widest = sizes.iter().copied().max().expect("layers exist");
        self.acts_t = Some(Matrix::zeros(cols, widest));
        self.grad_w = net
            .layers
            .iter()
            .map(|l| Matrix::zeros(l.weights.rows(), l.weights.cols()))
            .collect();
        self.grad_b = net
            .layers
            .iter()
            .map(|l| vec![0.0; l.biases.len()])
            .collect();
        self.cols = cols;
    }
}

impl Network {
    /// Builds a network with the given layer sizes, e.g. `[12, 50, 50, 50,
    /// 50, 1]` for the paper's 4 hidden layers of 50 units. Hidden layers
    /// use `hidden`, the output layer uses `output`.
    ///
    /// Weights are initialized uniformly in `±1/sqrt(fan_in)` (the classic
    /// recipe for sigmoid nets) from a seeded RNG, so construction is
    /// deterministic.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new(sizes: &[usize], hidden: Activation, output: Activation, seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for w in sizes.windows(2) {
            let (fan_in, fan_out) = (w[0], w[1]);
            let bound = 1.0 / (fan_in as f64).sqrt();
            let weights = Matrix::from_fn(fan_out, fan_in, |_, _| rng.gen_range(-bound..bound));
            let is_output = layers.len() == sizes.len() - 2;
            layers.push(Layer {
                weights,
                biases: vec![0.0; fan_out],
                activation: if is_output { output } else { hidden },
                weight_velocity: Matrix::zeros(fan_out, fan_in),
                bias_velocity: vec![0.0; fan_out],
            });
        }
        let activations = sizes.iter().map(|&s| vec![0.0; s]).collect();
        let errors = sizes[1..].iter().map(|&s| vec![0.0; s]).collect();
        Network {
            layers,
            activations,
            errors,
        }
    }

    /// Convenience constructor for the paper's Table II architecture:
    /// `h = 4` sigmoid layers of `units` neurons between `inputs` and
    /// `outputs` (identity output for regression).
    pub fn paper_architecture(inputs: usize, units: usize, outputs: usize, seed: u64) -> Self {
        Self::new(
            &[inputs, units, units, units, units, outputs],
            Activation::Sigmoid,
            Activation::Identity,
            seed,
        )
    }

    /// Input dimension.
    pub fn input_len(&self) -> usize {
        self.activations[0].len()
    }

    /// Output dimension.
    pub fn output_len(&self) -> usize {
        self.activations.last().expect("networks have layers").len()
    }

    /// Number of weight layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Re-creates the scratch buffers after deserialization (serde skips
    /// them). Called lazily by the passes; public for completeness.
    pub fn ensure_scratch(&mut self) {
        if self.activations.len() == self.layers.len() + 1 {
            return;
        }
        let mut sizes = Vec::with_capacity(self.layers.len() + 1);
        sizes.push(self.layers[0].weights.cols());
        for l in &self.layers {
            sizes.push(l.weights.rows());
        }
        self.activations = sizes.iter().map(|&s| vec![0.0; s]).collect();
        self.errors = sizes[1..].iter().map(|&s| vec![0.0; s]).collect();
    }

    /// Feed-forward evaluation (paper Eq. 5). Returns the output slice.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the input layer.
    pub fn forward(&mut self, input: &[f64]) -> &[f64] {
        self.ensure_scratch();
        assert_eq!(input.len(), self.input_len(), "input length mismatch");
        self.activations[0].copy_from_slice(input);
        for (d, layer) in self.layers.iter().enumerate() {
            let (lower, upper) = self.activations.split_at_mut(d + 1);
            layer
                .weights
                .mul_vec_fused_into(&lower[d], &mut upper[0], |i, acc| {
                    layer.activation.apply(acc + layer.biases[i])
                });
        }
        self.activations.last().expect("networks have layers")
    }

    /// Feed-forward evaluation through caller-provided scratch, leaving the
    /// network immutable so many threads can share one `&Network`.
    /// Bit-identical to [`forward`](Self::forward): both run the same fused
    /// kernel in the same accumulation order.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the input layer.
    pub fn forward_with<'s>(&self, input: &[f64], scratch: &'s mut Scratch) -> &'s [f64] {
        scratch.ensure(self);
        assert_eq!(input.len(), self.input_len(), "input length mismatch");
        scratch.activations[0].copy_from_slice(input);
        for (d, layer) in self.layers.iter().enumerate() {
            let (lower, upper) = scratch.activations.split_at_mut(d + 1);
            layer
                .weights
                .mul_vec_fused_into(&lower[d], &mut upper[0], |i, acc| {
                    layer.activation.apply(acc + layer.biases[i])
                });
        }
        scratch.activations.last().expect("networks have layers")
    }

    /// One stochastic training step on a single example: forward pass,
    /// back-propagation of error terms (Eqs. 6-7), and weight update
    /// (Eq. 8) with learning rate `mu` and momentum factor `momentum`
    /// (0.0 recovers the paper's plain update).
    ///
    /// Returns the example's squared error before the update.
    ///
    /// # Panics
    ///
    /// Panics if input/target lengths mismatch the architecture.
    pub fn train_on(&mut self, input: &[f64], target: &[f64], mu: f64, momentum: f64) -> f64 {
        assert_eq!(target.len(), self.output_len(), "target length mismatch");
        self.forward(input);

        // Output-layer error terms: E_i = (t_i - g_i) * F'(g_i)  (Eq. 6).
        let out_idx = self.layers.len() - 1;
        let mut sq_err = 0.0;
        {
            let g_out = self.activations.last().expect("layers exist");
            let act = self.layers[out_idx].activation;
            for ((e, &g), &t) in self.errors[out_idx].iter_mut().zip(g_out).zip(target) {
                let diff = t - g;
                sq_err += diff * diff;
                *e = diff * act.derivative_from_output(g);
            }
        }

        // Hidden-layer error terms: E_i(d) = (sum_j E_j(d+1) w_ji) F'(g_i)
        // (Eq. 7), computed top-down.
        for d in (0..out_idx).rev() {
            let (lower_errs, upper_errs) = self.errors.split_at_mut(d + 1);
            let e_cur = &mut lower_errs[d];
            let e_up = &upper_errs[0];
            self.layers[d + 1]
                .weights
                .mul_vec_transposed_into(e_up, e_cur);
            let act = self.layers[d].activation;
            for (e, &g) in e_cur.iter_mut().zip(&self.activations[d + 1]) {
                *e *= act.derivative_from_output(g);
            }
        }

        // Weight updates: dw_ij = mu * E_i(d) * g_j(d-1)  (Eq. 8), with an
        // optional classical-momentum velocity term. The fused step is
        // bit-identical to the scale/add_outer/add_assign sequence it
        // replaces (see `Matrix::momentum_step`).
        for (d, layer) in self.layers.iter_mut().enumerate() {
            let errs = &self.errors[d];
            let g_prev = &self.activations[d];
            if momentum > 0.0 {
                layer
                    .weights
                    .momentum_step(&mut layer.weight_velocity, errs, g_prev, momentum, mu);
                for ((b, v), e) in layer
                    .biases
                    .iter_mut()
                    .zip(&mut layer.bias_velocity)
                    .zip(errs)
                {
                    *v = momentum * *v + mu * e;
                    *b += *v;
                }
            } else {
                layer.weights.add_outer_scaled(errs, g_prev, mu);
                for (b, e) in layer.biases.iter_mut().zip(errs) {
                    *b += mu * e;
                }
            }
        }
        sq_err
    }

    /// The pre-optimization per-sample training step, kept verbatim
    /// (unfused forward, three-pass momentum update) as the reference
    /// implementation the determinism suite A/Bs the fused kernels
    /// against. Selected via `TrainConfig::reference_kernels`.
    pub fn train_on_reference(
        &mut self,
        input: &[f64],
        target: &[f64],
        mu: f64,
        momentum: f64,
    ) -> f64 {
        assert_eq!(target.len(), self.output_len(), "target length mismatch");
        self.ensure_scratch();
        assert_eq!(input.len(), self.input_len(), "input length mismatch");
        self.activations[0].copy_from_slice(input);
        for (d, layer) in self.layers.iter().enumerate() {
            let (lower, upper) = self.activations.split_at_mut(d + 1);
            let g_cur = &mut upper[0];
            layer.weights.mul_vec_into(&lower[d], g_cur);
            for (g, b) in g_cur.iter_mut().zip(&layer.biases) {
                *g = layer.activation.apply(*g + b);
            }
        }

        let out_idx = self.layers.len() - 1;
        let mut sq_err = 0.0;
        {
            let g_out = self.activations.last().expect("layers exist");
            let act = self.layers[out_idx].activation;
            for ((e, &g), &t) in self.errors[out_idx].iter_mut().zip(g_out).zip(target) {
                let diff = t - g;
                sq_err += diff * diff;
                *e = diff * act.derivative_from_output(g);
            }
        }

        for d in (0..out_idx).rev() {
            let (lower_errs, upper_errs) = self.errors.split_at_mut(d + 1);
            let e_cur = &mut lower_errs[d];
            let e_up = &upper_errs[0];
            self.layers[d + 1]
                .weights
                .mul_vec_transposed_into(e_up, e_cur);
            let act = self.layers[d].activation;
            for (e, &g) in e_cur.iter_mut().zip(&self.activations[d + 1]) {
                *e *= act.derivative_from_output(g);
            }
        }

        for (d, layer) in self.layers.iter_mut().enumerate() {
            let errs = &self.errors[d];
            let g_prev = &self.activations[d];
            if momentum > 0.0 {
                layer.weight_velocity.scale(momentum);
                layer.weight_velocity.add_outer_scaled(errs, g_prev, mu);
                layer.weights.add_assign(&layer.weight_velocity);
                for ((b, v), e) in layer
                    .biases
                    .iter_mut()
                    .zip(&mut layer.bias_velocity)
                    .zip(errs)
                {
                    *v = momentum * *v + mu * e;
                    *b += *v;
                }
            } else {
                layer.weights.add_outer_scaled(errs, g_prev, mu);
                for (b, e) in layer.biases.iter_mut().zip(errs) {
                    *b += mu * e;
                }
            }
        }
        sq_err
    }

    /// One minibatch gradient step over the examples selected by `idx`:
    /// batched forward (blocked matrix-matrix kernel with the activation
    /// fused into the epilogue), batched back-propagation, then a single
    /// momentum update using the *mean* gradient (`mu / batch` scaling), so
    /// the effective step size is comparable to `batch` per-sample steps.
    ///
    /// Returns the sum of squared errors over the batch (before the
    /// update).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is empty, any index is out of range, or any
    /// example's shape mismatches the architecture.
    pub fn train_batch(
        &mut self,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
        idx: &[usize],
        mu: f64,
        momentum: f64,
        scratch: &mut BatchScratch,
    ) -> f64 {
        assert!(!idx.is_empty(), "empty minibatch");
        let n = idx.len();
        scratch.ensure(self, n);

        // Gather the batch feature-major: column b = example idx[b].
        {
            let x = &mut scratch.acts[0];
            let t = scratch.targets.as_mut().expect("sized by ensure");
            for (b, &i) in idx.iter().enumerate() {
                assert_eq!(inputs[i].len(), x.rows(), "input length mismatch");
                assert_eq!(targets[i].len(), t.rows(), "target length mismatch");
                for (k, &v) in inputs[i].iter().enumerate() {
                    x.as_mut_slice()[k * n + b] = v;
                }
                for (k, &v) in targets[i].iter().enumerate() {
                    t.as_mut_slice()[k * n + b] = v;
                }
            }
        }

        // Batched forward (Eq. 5 over the whole batch).
        for (d, layer) in self.layers.iter().enumerate() {
            let (lower, upper) = scratch.acts.split_at_mut(d + 1);
            layer
                .weights
                .matmul_fused_into(&lower[d], &mut upper[0], |i, acc| {
                    layer.activation.apply(acc + layer.biases[i])
                });
        }

        // Output-layer error terms (Eq. 6) for every sample at once,
        // row-sliced so the inner loops skip per-element bounds checks.
        let out_idx = self.layers.len() - 1;
        let mut sq_err = 0.0;
        {
            let g_out = scratch.acts.last().expect("layers exist");
            let t = scratch.targets.as_ref().expect("sized by ensure");
            let act = self.layers[out_idx].activation;
            let e_out = &mut scratch.errs[out_idx];
            for ((e_row, g_row), t_row) in e_out
                .as_mut_slice()
                .chunks_exact_mut(n)
                .zip(g_out.as_slice().chunks_exact(n))
                .zip(t.as_slice().chunks_exact(n))
            {
                for ((e, &g), &tv) in e_row.iter_mut().zip(g_row).zip(t_row) {
                    let diff = tv - g;
                    sq_err += diff * diff;
                    *e = diff * act.derivative_from_output(g);
                }
            }
        }

        // Hidden-layer error terms (Eq. 7), batched top-down.
        for d in (0..out_idx).rev() {
            let (lower_errs, upper_errs) = scratch.errs.split_at_mut(d + 1);
            let e_cur = &mut lower_errs[d];
            self.layers[d + 1]
                .weights
                .matmul_transposed_into(&upper_errs[0], e_cur);
            let act = self.layers[d].activation;
            let g = &scratch.acts[d + 1];
            for (e_row, g_row) in e_cur
                .as_mut_slice()
                .chunks_exact_mut(n)
                .zip(g.as_slice().chunks_exact(n))
            {
                for (e, &gv) in e_row.iter_mut().zip(g_row) {
                    *e *= act.derivative_from_output(gv);
                }
            }
        }

        // Mean-gradient momentum update (Eq. 8 summed over the batch,
        // scaled by mu / n).
        let step = mu / n as f64;
        for (d, layer) in self.layers.iter_mut().enumerate() {
            let errs = &scratch.errs[d];
            let grad = &mut scratch.grad_w[d];
            grad.fill(0.0);
            let acts = &scratch.acts[d];
            let gt = scratch.acts_t.as_mut().expect("sized by ensure");
            gt.reshape(acts.cols(), acts.rows());
            acts.transpose_into(gt);
            grad.add_batch_outer_pretransposed(errs, gt);
            layer
                .weights
                .momentum_step_from(&mut layer.weight_velocity, grad, momentum, step);
            let gb = &mut scratch.grad_b[d];
            for (g, e_row) in gb.iter_mut().zip(errs.as_slice().chunks_exact(n)) {
                *g = e_row.iter().sum();
            }
            for ((b, v), g) in layer
                .biases
                .iter_mut()
                .zip(&mut layer.bias_velocity)
                .zip(gb.iter())
            {
                *v = momentum * *v + step * g;
                *b += *v;
            }
        }
        sq_err
    }

    /// Runs one epoch of minibatch SGD over `order`, chunking it into
    /// batches of at most `batch_size` and calling
    /// [`train_batch`](Self::train_batch) on each. Returns the summed
    /// squared error across the epoch.
    #[allow(clippy::too_many_arguments)]
    pub fn train_minibatches(
        &mut self,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
        order: &[usize],
        batch_size: usize,
        mu: f64,
        momentum: f64,
        scratch: &mut BatchScratch,
    ) -> f64 {
        assert!(batch_size > 0, "batch size must be positive");
        let mut total = 0.0;
        for chunk in order.chunks(batch_size) {
            total += self.train_batch(inputs, targets, chunk, mu, momentum, scratch);
        }
        total
    }

    /// Batched counterpart of [`mse`](Self::mse): evaluates the dataset
    /// through the blocked forward kernel. Bit-identical to `mse` — the
    /// batched forward matches the per-sample forward lane for lane, and
    /// per-sample squared errors are reduced in the same order.
    pub fn mse_batched(
        &mut self,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
        batch_size: usize,
        scratch: &mut BatchScratch,
    ) -> f64 {
        assert_eq!(inputs.len(), targets.len(), "dataset length mismatch");
        assert!(batch_size > 0, "batch size must be positive");
        if inputs.is_empty() {
            return 0.0;
        }
        let idx: Vec<usize> = (0..inputs.len()).collect();
        let mut total = 0.0;
        for chunk in idx.chunks(batch_size) {
            let n = chunk.len();
            scratch.ensure(self, n);
            {
                let x = &mut scratch.acts[0];
                for (b, &i) in chunk.iter().enumerate() {
                    assert_eq!(inputs[i].len(), x.rows(), "input length mismatch");
                    for (k, &v) in inputs[i].iter().enumerate() {
                        *x.get_mut(k, b) = v;
                    }
                }
            }
            for (d, layer) in self.layers.iter().enumerate() {
                let (lower, upper) = scratch.acts.split_at_mut(d + 1);
                layer
                    .weights
                    .matmul_fused_into(&lower[d], &mut upper[0], |i, acc| {
                        layer.activation.apply(acc + layer.biases[i])
                    });
            }
            let y = scratch.acts.last().expect("layers exist");
            for (b, &i) in chunk.iter().enumerate() {
                let t = &targets[i];
                assert_eq!(t.len(), y.rows(), "target length mismatch");
                let sample: f64 = t
                    .iter()
                    .enumerate()
                    .map(|(r, &tv)| {
                        let d = y.get(r, b) - tv;
                        d * d
                    })
                    .sum();
                total += sample;
            }
        }
        total / inputs.len() as f64
    }

    /// Mean squared error of the network over a dataset, without updating
    /// weights.
    pub fn mse(&mut self, inputs: &[Vec<f64>], targets: &[Vec<f64>]) -> f64 {
        assert_eq!(inputs.len(), targets.len(), "dataset length mismatch");
        if inputs.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for (x, t) in inputs.iter().zip(targets) {
            let y = self.forward(x);
            total += y.iter().zip(t).map(|(a, b)| (a - b) * (a - b)).sum::<f64>();
        }
        total / inputs.len() as f64
    }

    /// Access to a layer's weight matrix (tests, gradient checks).
    pub fn layer_weights(&self, d: usize) -> &Matrix {
        &self.layers[d].weights
    }

    /// Mutable access to a layer's weight matrix (gradient checks perturb
    /// single weights).
    pub fn layer_weights_mut(&mut self, d: usize) -> &mut Matrix {
        &mut self.layers[d].weights
    }

    /// Access to a layer's bias vector (replica averaging).
    pub fn layer_biases(&self, d: usize) -> &[f64] {
        &self.layers[d].biases
    }

    /// Mutable access to a layer's bias vector (replica averaging).
    pub fn layer_biases_mut(&mut self, d: usize) -> &mut [f64] {
        &mut self.layers[d].biases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_output_has_right_shape() {
        let mut net = Network::new(&[3, 5, 2], Activation::Sigmoid, Activation::Identity, 1);
        let out = net.forward(&[0.1, 0.2, 0.3]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn construction_is_deterministic_per_seed() {
        let a = Network::new(&[3, 4, 1], Activation::Sigmoid, Activation::Identity, 7);
        let b = Network::new(&[3, 4, 1], Activation::Sigmoid, Activation::Identity, 7);
        assert_eq!(a.layer_weights(0).as_slice(), b.layer_weights(0).as_slice());
    }

    #[test]
    fn sigmoid_hidden_activations_bounded() {
        let mut net = Network::new(&[2, 8, 1], Activation::Sigmoid, Activation::Sigmoid, 3);
        let out = net.forward(&[100.0, -100.0]);
        assert!(out[0] > 0.0 && out[0] < 1.0);
    }

    #[test]
    fn paper_architecture_has_four_hidden_layers() {
        let net = Network::paper_architecture(12, 50, 3, 1);
        assert_eq!(net.depth(), 5, "4 hidden + 1 output weight layers");
        assert_eq!(net.input_len(), 12);
        assert_eq!(net.output_len(), 3);
    }

    #[test]
    fn training_reduces_error_on_linear_task() {
        // y = 0.5*x0 - 0.25*x1 is learnable by a tiny net.
        let mut net = Network::new(&[2, 8, 1], Activation::Sigmoid, Activation::Identity, 5);
        let data: Vec<(Vec<f64>, Vec<f64>)> = (0..50)
            .map(|i| {
                let x0 = (i % 10) as f64 / 10.0;
                let x1 = (i / 10) as f64 / 5.0;
                (vec![x0, x1], vec![0.5 * x0 - 0.25 * x1])
            })
            .collect();
        let inputs: Vec<Vec<f64>> = data.iter().map(|d| d.0.clone()).collect();
        let targets: Vec<Vec<f64>> = data.iter().map(|d| d.1.clone()).collect();
        let before = net.mse(&inputs, &targets);
        for _ in 0..200 {
            for (x, t) in inputs.iter().zip(&targets) {
                net.train_on(x, t, 0.1, 0.0);
            }
        }
        let after = net.mse(&inputs, &targets);
        assert!(after < before * 0.2, "MSE {before} -> {after} insufficient");
    }

    #[test]
    fn momentum_training_also_converges() {
        let mut net = Network::new(&[1, 6, 1], Activation::Tanh, Activation::Identity, 9);
        let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0]).collect();
        let targets: Vec<Vec<f64>> = inputs.iter().map(|x| vec![x[0] * x[0]]).collect();
        for _ in 0..300 {
            for (x, t) in inputs.iter().zip(&targets) {
                net.train_on(x, t, 0.05, 0.9);
            }
        }
        assert!(net.mse(&inputs, &targets) < 0.01);
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        // The definitive Eq. 6-8 correctness test: analytic gradient (via a
        // mu=1 update direction) must match numeric d(loss)/d(w).
        let net = Network::new(&[3, 4, 2], Activation::Sigmoid, Activation::Identity, 11);
        let x = [0.3, -0.6, 0.9];
        let t = [0.2, -0.1];
        let loss = |n: &mut Network| {
            let y = n.forward(&x);
            y.iter()
                .zip(&t)
                .map(|(a, b)| 0.5 * (a - b) * (a - b))
                .sum::<f64>()
        };
        // Analytic gradient: train_on applies dw = mu * E * g with
        // E = (t-y)F', which is exactly -d(loss)/dw, so compare the weight
        // delta (at mu=1) to the negative numeric gradient.
        for layer in 0..2 {
            for r in 0..net.layer_weights(layer).rows() {
                for c in 0..net.layer_weights(layer).cols() {
                    let eps = 1e-6;
                    let mut probe = net.clone();
                    *probe.layer_weights_mut(layer).get_mut(r, c) += eps;
                    let lp = loss(&mut probe);
                    let mut probe2 = net.clone();
                    *probe2.layer_weights_mut(layer).get_mut(r, c) -= eps;
                    let lm = loss(&mut probe2);
                    let numeric = (lp - lm) / (2.0 * eps);

                    let mut trained = net.clone();
                    let w_before = trained.layer_weights(layer).get(r, c);
                    trained.train_on(&x, &t, 1.0, 0.0);
                    let analytic = trained.layer_weights(layer).get(r, c) - w_before;

                    assert!(
                        (analytic + numeric).abs() < 1e-4,
                        "layer {layer} w[{r}][{c}]: update {analytic} vs -grad {}",
                        -numeric
                    );
                }
            }
        }
    }

    fn toy_dataset(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let inputs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 10) as f64 / 10.0, (i / 10) as f64 / 5.0])
            .collect();
        let targets: Vec<Vec<f64>> = inputs
            .iter()
            .map(|x| vec![0.5 * x[0] - 0.25 * x[1]])
            .collect();
        (inputs, targets)
    }

    #[test]
    fn fused_train_on_is_bit_identical_to_reference_kernels() {
        let mut fused = Network::new(&[2, 8, 4, 1], Activation::Sigmoid, Activation::Identity, 13);
        let mut reference = fused.clone();
        let (inputs, targets) = toy_dataset(30);
        for _ in 0..5 {
            for (x, t) in inputs.iter().zip(&targets) {
                let a = fused.train_on(x, t, 0.1, 0.5);
                let b = reference.train_on_reference(x, t, 0.1, 0.5);
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        for d in 0..fused.depth() {
            let fw = fused.layer_weights(d).as_slice();
            let rw = reference.layer_weights(d).as_slice();
            assert_eq!(
                fw.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                rw.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "layer {d} weights diverged"
            );
            assert_eq!(fused.layer_biases(d), reference.layer_biases(d));
        }
    }

    #[test]
    fn fused_train_on_matches_reference_without_momentum() {
        let mut fused = Network::new(&[2, 6, 1], Activation::Sigmoid, Activation::Identity, 21);
        let mut reference = fused.clone();
        let (inputs, targets) = toy_dataset(20);
        for (x, t) in inputs.iter().zip(&targets) {
            let a = fused.train_on(x, t, 0.1, 0.0);
            let b = reference.train_on_reference(x, t, 0.1, 0.0);
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            fused.layer_weights(0).as_slice(),
            reference.layer_weights(0).as_slice()
        );
    }

    #[test]
    fn forward_with_external_scratch_is_bit_identical_to_forward() {
        let mut net = Network::new(&[3, 7, 5, 2], Activation::Sigmoid, Activation::Identity, 17);
        let mut scratch = Scratch::new();
        for i in 0..10 {
            let x = [i as f64 * 0.1, -(i as f64) * 0.05, 0.3];
            let shared = {
                let y = net.forward_with(&x, &mut scratch);
                y.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            };
            let owned: Vec<u64> = net.forward(&x).iter().map(|v| v.to_bits()).collect();
            assert_eq!(shared, owned);
        }
    }

    #[test]
    fn minibatch_training_converges_on_linear_task() {
        let mut net = Network::new(&[2, 8, 1], Activation::Sigmoid, Activation::Identity, 5);
        let (inputs, targets) = toy_dataset(50);
        let order: Vec<usize> = (0..inputs.len()).collect();
        let mut scratch = BatchScratch::new();
        let before = net.mse(&inputs, &targets);
        for _ in 0..400 {
            net.train_minibatches(&inputs, &targets, &order, 8, 0.5, 0.5, &mut scratch);
        }
        let after = net.mse(&inputs, &targets);
        assert!(after < before * 0.2, "MSE {before} -> {after} insufficient");
    }

    #[test]
    fn batch_of_one_matches_per_sample_gradient_direction() {
        // A 1-wide minibatch at momentum 0 is exactly one per-sample step
        // (mean over one sample), so weights must land bit-identically.
        let mut batched = Network::new(&[2, 5, 1], Activation::Sigmoid, Activation::Identity, 8);
        let mut single = batched.clone();
        let (inputs, targets) = toy_dataset(12);
        let mut scratch = BatchScratch::new();
        for i in 0..inputs.len() {
            batched.train_batch(&inputs, &targets, &[i], 0.1, 0.5, &mut scratch);
            single.train_on(&inputs[i], &targets[i], 0.1, 0.5);
        }
        for d in 0..batched.depth() {
            let bw = batched.layer_weights(d).as_slice();
            let sw = single.layer_weights(d).as_slice();
            for (a, b) in bw.iter().zip(sw) {
                // `mu * (e*g)` vs `(mu*e) * g` round differently by design,
                // so allow ulp-level drift.
                assert!((a - b).abs() < 1e-9, "layer {d}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn mse_batched_is_bit_identical_to_mse() {
        let mut net = Network::new(&[2, 9, 1], Activation::Sigmoid, Activation::Identity, 31);
        let (inputs, targets) = toy_dataset(23);
        let mut scratch = BatchScratch::new();
        let plain = net.mse(&inputs, &targets);
        let batched = net.mse_batched(&inputs, &targets, 8, &mut scratch);
        assert_eq!(plain.to_bits(), batched.to_bits());
    }

    #[test]
    fn mse_of_empty_dataset_is_zero() {
        let mut net = Network::new(&[2, 3, 1], Activation::Sigmoid, Activation::Identity, 1);
        assert_eq!(net.mse(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn forward_rejects_wrong_input_len() {
        let mut net = Network::new(&[3, 2, 1], Activation::Sigmoid, Activation::Identity, 1);
        net.forward(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn new_rejects_single_layer() {
        Network::new(&[3], Activation::Sigmoid, Activation::Identity, 1);
    }
}
