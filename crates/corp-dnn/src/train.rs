//! Epoch-based training with held-out validation convergence.
//!
//! Section III-A: "the training continues for multiple training epochs,
//! processing the training data set each time, until the validation set
//! error converges to a low value." [`Trainer`] implements exactly that
//! protocol: shuffle, run SGD over the training split each epoch, evaluate
//! on the validation split, and stop when the relative improvement stays
//! below a tolerance for `patience` consecutive epochs (or a hard epoch cap
//! is reached).

use crate::network::Network;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Learning rate `mu` of paper Eq. 8.
    pub learning_rate: f64,
    /// Classical momentum factor (0.0 = paper's plain SGD).
    pub momentum: f64,
    /// Maximum number of epochs.
    pub max_epochs: usize,
    /// Fraction of the dataset held out for validation, in `(0, 1)`.
    pub validation_fraction: f64,
    /// Relative validation-MSE improvement below which an epoch counts as
    /// "converged".
    pub tolerance: f64,
    /// Number of consecutive converged epochs required to stop.
    pub patience: usize,
    /// Shuffle seed (training is deterministic per seed).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 0.05,
            momentum: 0.5,
            max_epochs: 200,
            validation_fraction: 0.2,
            tolerance: 1e-4,
            patience: 5,
            seed: 0x5EED,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Number of epochs actually executed.
    pub epochs_run: usize,
    /// Validation MSE after the final epoch.
    pub final_validation_mse: f64,
    /// Validation MSE after each epoch (for convergence plots/tests).
    pub validation_history: Vec<f64>,
    /// True if stopping was triggered by convergence rather than the epoch
    /// cap.
    pub converged: bool,
}

/// Orchestrates epochs of SGD with validation-based early stopping.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if the validation fraction is outside `(0, 1)`, the learning
    /// rate is not positive, or patience is zero.
    pub fn new(config: TrainConfig) -> Self {
        assert!(
            config.validation_fraction > 0.0 && config.validation_fraction < 1.0,
            "validation fraction must be in (0,1)"
        );
        assert!(config.learning_rate > 0.0, "learning rate must be positive");
        assert!(config.patience > 0, "patience must be at least 1");
        Trainer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `net` on `(inputs, targets)` and returns a report.
    ///
    /// The last `validation_fraction` of the (shuffled once) dataset forms
    /// the held-out split; the rest is visited in a fresh shuffled order
    /// every epoch.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty, lengths mismatch, or the dataset is
    /// too small to produce both splits.
    pub fn train(
        &self,
        net: &mut Network,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
    ) -> TrainReport {
        assert_eq!(inputs.len(), targets.len(), "dataset length mismatch");
        assert!(!inputs.is_empty(), "cannot train on an empty dataset");

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        order.shuffle(&mut rng);

        let val_len = ((inputs.len() as f64) * self.config.validation_fraction).round() as usize;
        let val_len = val_len.clamp(1, inputs.len().saturating_sub(1).max(1));
        let (train_idx, val_idx) = order.split_at(inputs.len() - val_len);
        assert!(
            !train_idx.is_empty(),
            "dataset too small for the validation split"
        );

        let val_inputs: Vec<Vec<f64>> = val_idx.iter().map(|&i| inputs[i].clone()).collect();
        let val_targets: Vec<Vec<f64>> = val_idx.iter().map(|&i| targets[i].clone()).collect();

        let mut train_order: Vec<usize> = train_idx.to_vec();
        let mut history = Vec::new();
        let mut best = f64::INFINITY;
        let mut calm_epochs = 0;
        let mut converged = false;

        for _epoch in 0..self.config.max_epochs {
            train_order.shuffle(&mut rng);
            for &i in &train_order {
                net.train_on(
                    &inputs[i],
                    &targets[i],
                    self.config.learning_rate,
                    self.config.momentum,
                );
            }
            let val_mse = net.mse(&val_inputs, &val_targets);
            history.push(val_mse);

            let improvement = if best.is_finite() && best > 0.0 {
                (best - val_mse) / best
            } else if best.is_infinite() {
                1.0
            } else {
                0.0
            };
            if val_mse < best {
                best = val_mse;
            }
            if improvement < self.config.tolerance {
                calm_epochs += 1;
                if calm_epochs >= self.config.patience {
                    converged = true;
                    break;
                }
            } else {
                calm_epochs = 0;
            }
        }

        TrainReport {
            epochs_run: history.len(),
            final_validation_mse: *history.last().expect("at least one epoch runs"),
            validation_history: history,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;

    fn toy_dataset(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let inputs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i as f64 / n as f64), ((i * 7 % n) as f64 / n as f64)])
            .collect();
        let targets: Vec<Vec<f64>> = inputs
            .iter()
            .map(|x| vec![0.7 * x[0] + 0.2 * x[1]])
            .collect();
        (inputs, targets)
    }

    #[test]
    fn training_converges_on_learnable_task() {
        let (inputs, targets) = toy_dataset(80);
        let mut net = Network::new(&[2, 10, 1], Activation::Sigmoid, Activation::Identity, 2);
        let trainer = Trainer::new(TrainConfig {
            max_epochs: 300,
            ..TrainConfig::default()
        });
        let report = trainer.train(&mut net, &inputs, &targets);
        assert!(
            report.final_validation_mse < 0.01,
            "validation MSE too high: {}",
            report.final_validation_mse
        );
    }

    #[test]
    fn early_stopping_halts_before_cap_on_trivial_task() {
        // A constant-target task converges almost immediately.
        let inputs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let targets: Vec<Vec<f64>> = vec![vec![0.0]; 40];
        let mut net = Network::new(&[1, 4, 1], Activation::Sigmoid, Activation::Identity, 3);
        let trainer = Trainer::new(TrainConfig {
            max_epochs: 500,
            patience: 3,
            tolerance: 1e-3,
            ..TrainConfig::default()
        });
        let report = trainer.train(&mut net, &inputs, &targets);
        assert!(report.converged);
        assert!(report.epochs_run < 500);
    }

    #[test]
    fn report_history_matches_epochs() {
        let (inputs, targets) = toy_dataset(30);
        let mut net = Network::new(&[2, 4, 1], Activation::Sigmoid, Activation::Identity, 4);
        let trainer = Trainer::new(TrainConfig {
            max_epochs: 10,
            patience: 100,
            ..TrainConfig::default()
        });
        let report = trainer.train(&mut net, &inputs, &targets);
        assert_eq!(report.epochs_run, report.validation_history.len());
        assert_eq!(
            report.epochs_run, 10,
            "patience 100 cannot trigger in 10 epochs"
        );
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (inputs, targets) = toy_dataset(40);
        let run = |seed| {
            let mut net = Network::new(&[2, 6, 1], Activation::Sigmoid, Activation::Identity, 5);
            let trainer = Trainer::new(TrainConfig {
                seed,
                max_epochs: 20,
                patience: 50,
                ..TrainConfig::default()
            });
            trainer
                .train(&mut net, &inputs, &targets)
                .final_validation_mse
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    #[should_panic]
    fn empty_dataset_rejected() {
        let mut net = Network::new(&[2, 3, 1], Activation::Sigmoid, Activation::Identity, 1);
        Trainer::new(TrainConfig::default()).train(&mut net, &[], &[]);
    }

    #[test]
    #[should_panic]
    fn bad_validation_fraction_rejected() {
        Trainer::new(TrainConfig {
            validation_fraction: 1.5,
            ..TrainConfig::default()
        });
    }
}
