//! Epoch-based training with held-out validation convergence.
//!
//! Section III-A: "the training continues for multiple training epochs,
//! processing the training data set each time, until the validation set
//! error converges to a low value." [`Trainer`] implements exactly that
//! protocol: shuffle, run SGD over the training split each epoch, evaluate
//! on the validation split, and stop when the relative improvement stays
//! below a tolerance for `patience` consecutive epochs (or a hard epoch cap
//! is reached).

use crate::network::Network;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Learning rate `mu` of paper Eq. 8.
    pub learning_rate: f64,
    /// Classical momentum factor (0.0 = paper's plain SGD).
    pub momentum: f64,
    /// Maximum number of epochs.
    pub max_epochs: usize,
    /// Fraction of the dataset held out for validation, in `(0, 1)`.
    pub validation_fraction: f64,
    /// Relative validation-MSE improvement below which an epoch counts as
    /// "converged".
    pub tolerance: f64,
    /// Number of consecutive converged epochs required to stop.
    pub patience: usize,
    /// Shuffle seed (training is deterministic per seed).
    pub seed: u64,
    /// Run the pre-optimization per-sample kernels
    /// ([`Network::train_on_reference`]) instead of the fused ones. The two
    /// are bit-identical; this switch exists so the determinism suite can
    /// A/B them end-to-end.
    pub reference_kernels: bool,
    /// Minibatch width for [`Trainer::train_minibatched`] and the parallel
    /// trainer's shards.
    pub batch_size: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 0.05,
            momentum: 0.5,
            max_epochs: 200,
            validation_fraction: 0.2,
            tolerance: 1e-4,
            patience: 5,
            seed: 0x5EED,
            reference_kernels: false,
            batch_size: 4,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Number of epochs actually executed.
    pub epochs_run: usize,
    /// Validation MSE after the final epoch.
    pub final_validation_mse: f64,
    /// Validation MSE after each epoch (for convergence plots/tests).
    pub validation_history: Vec<f64>,
    /// True if stopping was triggered by convergence rather than the epoch
    /// cap.
    pub converged: bool,
}

/// Orchestrates epochs of SGD with validation-based early stopping.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

/// What [`Trainer::split`] hands back: the RNG mid-stream (so per-epoch
/// shuffles continue the same sequence), the training-set order, and the
/// held-out validation inputs and targets.
type Split = (StdRng, Vec<usize>, Vec<Vec<f64>>, Vec<Vec<f64>>);

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if the validation fraction is outside `(0, 1)`, the learning
    /// rate is not positive, or patience is zero.
    pub fn new(config: TrainConfig) -> Self {
        assert!(
            config.validation_fraction > 0.0 && config.validation_fraction < 1.0,
            "validation fraction must be in (0,1)"
        );
        assert!(config.learning_rate > 0.0, "learning rate must be positive");
        assert!(config.patience > 0, "patience must be at least 1");
        Trainer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `net` on `(inputs, targets)` and returns a report.
    ///
    /// The last `validation_fraction` of the (shuffled once) dataset forms
    /// the held-out split; the rest is visited in a fresh shuffled order
    /// every epoch.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty, lengths mismatch, or the dataset is
    /// too small to produce both splits.
    pub fn train(
        &self,
        net: &mut Network,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
    ) -> TrainReport {
        let (mut rng, mut train_order, val_inputs, val_targets) = self.split(inputs, targets);
        let mut stop = Convergence::new(self.config.tolerance, self.config.patience);

        for _epoch in 0..self.config.max_epochs {
            train_order.shuffle(&mut rng);
            for &i in &train_order {
                if self.config.reference_kernels {
                    net.train_on_reference(
                        &inputs[i],
                        &targets[i],
                        self.config.learning_rate,
                        self.config.momentum,
                    );
                } else {
                    net.train_on(
                        &inputs[i],
                        &targets[i],
                        self.config.learning_rate,
                        self.config.momentum,
                    );
                }
            }
            let val_mse = net.mse(&val_inputs, &val_targets);
            if stop.record(val_mse) {
                break;
            }
        }
        stop.into_report()
    }

    /// Minibatch variant of [`train`](Self::train): identical shuffle,
    /// split, and early-stopping protocol, but each epoch applies one
    /// mean-gradient update per `batch_size` examples through the blocked
    /// kernels ([`Network::train_minibatches`]). This is the throughput
    /// path — fewer, wider updates — and is *not* numerically interchangeable
    /// with per-sample SGD, so callers pick explicitly.
    ///
    /// # Panics
    ///
    /// Same conditions as [`train`](Self::train).
    pub fn train_minibatched(
        &self,
        net: &mut Network,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
        scratch: &mut crate::network::BatchScratch,
    ) -> TrainReport {
        let (mut rng, mut train_order, val_inputs, val_targets) = self.split(inputs, targets);
        let mut stop = Convergence::new(self.config.tolerance, self.config.patience);
        let batch = self.config.batch_size.max(1);

        for _epoch in 0..self.config.max_epochs {
            train_order.shuffle(&mut rng);
            net.train_minibatches(
                inputs,
                targets,
                &train_order,
                batch,
                self.config.learning_rate,
                self.config.momentum,
                scratch,
            );
            let val_mse = net.mse_batched(&val_inputs, &val_targets, batch, scratch);
            if stop.record(val_mse) {
                break;
            }
        }
        stop.into_report()
    }

    /// Shuffles once, carves off the validation split, and returns the RNG
    /// mid-stream so per-epoch shuffles continue the same sequence for
    /// every training variant.
    fn split(&self, inputs: &[Vec<f64>], targets: &[Vec<f64>]) -> Split {
        assert_eq!(inputs.len(), targets.len(), "dataset length mismatch");
        assert!(!inputs.is_empty(), "cannot train on an empty dataset");

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        order.shuffle(&mut rng);

        let val_len = ((inputs.len() as f64) * self.config.validation_fraction).round() as usize;
        let val_len = val_len.clamp(1, inputs.len().saturating_sub(1).max(1));
        let (train_idx, val_idx) = order.split_at(inputs.len() - val_len);
        assert!(
            !train_idx.is_empty(),
            "dataset too small for the validation split"
        );

        let val_inputs: Vec<Vec<f64>> = val_idx.iter().map(|&i| inputs[i].clone()).collect();
        let val_targets: Vec<Vec<f64>> = val_idx.iter().map(|&i| targets[i].clone()).collect();
        (rng, train_idx.to_vec(), val_inputs, val_targets)
    }
}

/// The validation-convergence state machine shared by the per-sample and
/// minibatch trainers (relative-improvement tolerance with patience).
struct Convergence {
    tolerance: f64,
    patience: usize,
    history: Vec<f64>,
    best: f64,
    calm_epochs: usize,
    converged: bool,
}

impl Convergence {
    fn new(tolerance: f64, patience: usize) -> Self {
        Convergence {
            tolerance,
            patience,
            history: Vec::new(),
            best: f64::INFINITY,
            calm_epochs: 0,
            converged: false,
        }
    }

    /// Records one epoch's validation MSE; returns true when training
    /// should stop.
    fn record(&mut self, val_mse: f64) -> bool {
        self.history.push(val_mse);
        let improvement = if self.best.is_finite() && self.best > 0.0 {
            (self.best - val_mse) / self.best
        } else if self.best.is_infinite() {
            1.0
        } else {
            0.0
        };
        if val_mse < self.best {
            self.best = val_mse;
        }
        if improvement < self.tolerance {
            self.calm_epochs += 1;
            if self.calm_epochs >= self.patience {
                self.converged = true;
                return true;
            }
        } else {
            self.calm_epochs = 0;
        }
        false
    }

    fn into_report(self) -> TrainReport {
        TrainReport {
            epochs_run: self.history.len(),
            final_validation_mse: *self.history.last().expect("at least one epoch runs"),
            validation_history: self.history,
            converged: self.converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;

    fn toy_dataset(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let inputs: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i as f64 / n as f64), ((i * 7 % n) as f64 / n as f64)])
            .collect();
        let targets: Vec<Vec<f64>> = inputs
            .iter()
            .map(|x| vec![0.7 * x[0] + 0.2 * x[1]])
            .collect();
        (inputs, targets)
    }

    #[test]
    fn training_converges_on_learnable_task() {
        let (inputs, targets) = toy_dataset(80);
        let mut net = Network::new(&[2, 10, 1], Activation::Sigmoid, Activation::Identity, 2);
        let trainer = Trainer::new(TrainConfig {
            max_epochs: 300,
            ..TrainConfig::default()
        });
        let report = trainer.train(&mut net, &inputs, &targets);
        assert!(
            report.final_validation_mse < 0.01,
            "validation MSE too high: {}",
            report.final_validation_mse
        );
    }

    #[test]
    fn early_stopping_halts_before_cap_on_trivial_task() {
        // A constant-target task converges almost immediately.
        let inputs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let targets: Vec<Vec<f64>> = vec![vec![0.0]; 40];
        let mut net = Network::new(&[1, 4, 1], Activation::Sigmoid, Activation::Identity, 3);
        let trainer = Trainer::new(TrainConfig {
            max_epochs: 500,
            patience: 3,
            tolerance: 1e-3,
            ..TrainConfig::default()
        });
        let report = trainer.train(&mut net, &inputs, &targets);
        assert!(report.converged);
        assert!(report.epochs_run < 500);
    }

    #[test]
    fn report_history_matches_epochs() {
        let (inputs, targets) = toy_dataset(30);
        let mut net = Network::new(&[2, 4, 1], Activation::Sigmoid, Activation::Identity, 4);
        let trainer = Trainer::new(TrainConfig {
            max_epochs: 10,
            patience: 100,
            ..TrainConfig::default()
        });
        let report = trainer.train(&mut net, &inputs, &targets);
        assert_eq!(report.epochs_run, report.validation_history.len());
        assert_eq!(
            report.epochs_run, 10,
            "patience 100 cannot trigger in 10 epochs"
        );
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (inputs, targets) = toy_dataset(40);
        let run = |seed| {
            let mut net = Network::new(&[2, 6, 1], Activation::Sigmoid, Activation::Identity, 5);
            let trainer = Trainer::new(TrainConfig {
                seed,
                max_epochs: 20,
                patience: 50,
                ..TrainConfig::default()
            });
            trainer
                .train(&mut net, &inputs, &targets)
                .final_validation_mse
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn reference_kernels_reproduce_fused_training_bit_for_bit() {
        let (inputs, targets) = toy_dataset(50);
        let run = |reference_kernels| {
            let mut net = Network::new(&[2, 8, 1], Activation::Sigmoid, Activation::Identity, 6);
            let trainer = Trainer::new(TrainConfig {
                reference_kernels,
                max_epochs: 15,
                patience: 50,
                ..TrainConfig::default()
            });
            let report = trainer.train(&mut net, &inputs, &targets);
            (
                report
                    .validation_history
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                net.layer_weights(0).as_slice().to_vec(),
            )
        };
        let (fused_hist, fused_w) = run(false);
        let (ref_hist, ref_w) = run(true);
        assert_eq!(fused_hist, ref_hist);
        assert_eq!(fused_w, ref_w);
    }

    #[test]
    fn minibatched_training_converges_on_learnable_task() {
        let (inputs, targets) = toy_dataset(80);
        let mut net = Network::new(&[2, 10, 1], Activation::Sigmoid, Activation::Identity, 2);
        let trainer = Trainer::new(TrainConfig {
            max_epochs: 400,
            learning_rate: 0.2,
            ..TrainConfig::default()
        });
        let mut scratch = crate::network::BatchScratch::new();
        let report = trainer.train_minibatched(&mut net, &inputs, &targets, &mut scratch);
        assert!(
            report.final_validation_mse < 0.01,
            "validation MSE too high: {}",
            report.final_validation_mse
        );
    }

    #[test]
    fn minibatched_training_is_deterministic_per_seed() {
        let (inputs, targets) = toy_dataset(40);
        let run = || {
            let mut net = Network::new(&[2, 6, 1], Activation::Sigmoid, Activation::Identity, 5);
            let trainer = Trainer::new(TrainConfig {
                max_epochs: 20,
                patience: 50,
                ..TrainConfig::default()
            });
            let mut scratch = crate::network::BatchScratch::new();
            trainer
                .train_minibatched(&mut net, &inputs, &targets, &mut scratch)
                .final_validation_mse
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }

    #[test]
    #[should_panic]
    fn empty_dataset_rejected() {
        let mut net = Network::new(&[2, 3, 1], Activation::Sigmoid, Activation::Identity, 1);
        Trainer::new(TrainConfig::default()).train(&mut net, &[], &[]);
    }

    #[test]
    #[should_panic]
    fn bad_validation_fraction_rejected() {
        Trainer::new(TrainConfig {
            validation_fraction: 1.5,
            ..TrainConfig::default()
        });
    }
}
