//! From-scratch deep neural network for CORP's unused-resource prediction.
//!
//! The paper (Section III-A) predicts the amount of temporarily-unused
//! resource of each short-lived job with a multi-layer sigmoid network
//! trained by plain back-propagation:
//!
//! * **feed-forward evaluation** (Eq. 5): `g_i(d) = F(sum_j w_ij * g_j(d-1)
//!   + e_i)` with a sigmoid `F`;
//! * **back-propagation** (Eqs. 6-7): output error `(t - g) * F'(g)`,
//!   propagated down weighted by the connection weights;
//! * **weight update** (Eq. 8): `dw = mu * E_i(d) * g_j(d-1)`.
//!
//! Table II fixes the architecture at `h = 4` layers of `N_n = 50` units.
//! Training runs in epochs until a held-out validation error converges,
//! exactly as Section III-A describes; an autoencoder mode ("the algorithm
//! autoencodes the input and generates the output") is provided for
//! unsupervised pre-training.
//!
//! No ML crates exist in the offline registry, so the numerics here —
//! a minimal dense [`matrix`] layer, [`activation`] functions, the
//! [`network`] forward/backward passes, and the [`train`]ing loop — are all
//! implemented locally and verified against finite-difference gradient
//! checks in the test suite.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Numerical kernels index several same-length arrays in lockstep; the
// index-based loops are clearer than zipped iterator chains there.
#![allow(clippy::needless_range_loop)]

pub mod activation;
pub mod autoencoder;
pub mod matrix;
pub mod network;
pub mod parallel;
pub mod predictor;
pub mod train;

pub use activation::Activation;
pub use autoencoder::Autoencoder;
pub use matrix::Matrix;
pub use network::{BatchScratch, Network, Scratch};
pub use parallel::ParallelTrainer;
pub use predictor::{PredictScratch, UnusedResourcePredictor, WindowPredictorConfig};
pub use train::{TrainConfig, TrainReport, Trainer};
