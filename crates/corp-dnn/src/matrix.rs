//! Minimal dense matrix for the DNN substrate.
//!
//! Row-major `Vec<f64>` storage; only the operations the network needs
//! (matrix-vector products in both orientations, outer-product
//! accumulation). Kept deliberately small — this is a numerics substrate,
//! not a linear-algebra library — and bounds-check friendly: the hot loops
//! iterate rows via `chunks_exact` so the optimizer can elide per-element
//! checks.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "matrix dimensions must be positive: {rows}x{cols}"
        );
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix by calling `f(row, col)` for each element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `out = self * x` (matrix-vector product). `out` is overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `out.len() != rows`.
    pub fn mul_vec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "input length mismatch");
        assert_eq!(out.len(), self.rows, "output length mismatch");
        for (o, row) in out.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            *o = row.iter().zip(x).map(|(w, xi)| w * xi).sum();
        }
    }

    /// `out = self^T * x` (transposed matrix-vector product), used to
    /// back-propagate error terms (paper Eq. 7 sums over the *upper* layer's
    /// errors weighted by `w_ji`). `out` is overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `out.len() != cols`.
    pub fn mul_vec_transposed_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "input length mismatch");
        assert_eq!(out.len(), self.cols, "output length mismatch");
        out.iter_mut().for_each(|o| *o = 0.0);
        for (xi, row) in x.iter().zip(self.data.chunks_exact(self.cols)) {
            if *xi == 0.0 {
                continue;
            }
            for (o, w) in out.iter_mut().zip(row) {
                *o += w * xi;
            }
        }
    }

    /// Accumulates the scaled outer product `self += scale * a * b^T`,
    /// which is exactly the weight update of paper Eq. 8 with
    /// `scale = mu`, `a = E(d)`, `b = g(d-1)`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != rows` or `b.len() != cols`.
    pub fn add_outer_scaled(&mut self, a: &[f64], b: &[f64], scale: f64) {
        assert_eq!(a.len(), self.rows, "row factor length mismatch");
        assert_eq!(b.len(), self.cols, "column factor length mismatch");
        for (ai, row) in a.iter().zip(self.data.chunks_exact_mut(self.cols)) {
            let s = scale * ai;
            if s == 0.0 {
                continue;
            }
            for (w, bj) in row.iter_mut().zip(b) {
                *w += s * bj;
            }
        }
    }

    /// Scales every element in place (used for momentum decay).
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Adds another matrix element-wise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Frobenius norm, handy for diagnosing exploding weights in tests.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_builds_expected_entries() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 11.0);
    }

    #[test]
    fn mul_vec_matches_hand_computation() {
        // [[1,2],[3,4],[5,6]] * [1, -1] = [-1, -1, -1]
        let m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut out = vec![0.0; 3];
        m.mul_vec_into(&[1.0, -1.0], &mut out);
        assert_eq!(out, vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    fn transposed_mul_matches_hand_computation() {
        // [[1,2],[3,4]]^T * [1, 1] = [4, 6]
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut out = vec![0.0; 2];
        m.mul_vec_transposed_into(&[1.0, 1.0], &mut out);
        assert_eq!(out, vec![4.0, 6.0]);
    }

    #[test]
    fn transposed_mul_agrees_with_explicit_transpose() {
        let m = Matrix::from_fn(4, 3, |r, c| (r as f64 + 1.0) * (c as f64 - 1.0));
        let x = [0.5, -1.5, 2.0, 0.25];
        let mut fast = vec![0.0; 3];
        m.mul_vec_transposed_into(&x, &mut fast);
        for c in 0..3 {
            let slow: f64 = (0..4).map(|r| m.get(r, c) * x[r]).sum();
            assert!((fast[c] - slow).abs() < 1e-12);
        }
    }

    #[test]
    fn outer_product_accumulates_eq8_shape() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer_scaled(&[1.0, 2.0], &[10.0, 20.0, 30.0], 0.5);
        // m[r][c] = 0.5 * a[r] * b[c]
        assert_eq!(m.get(0, 0), 5.0);
        assert_eq!(m.get(0, 2), 15.0);
        assert_eq!(m.get(1, 1), 20.0);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[4.0, 6.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn frobenius_norm_of_unit_rows() {
        let m = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_dimension_rejected() {
        Matrix::zeros(0, 3);
    }

    #[test]
    #[should_panic]
    fn mul_vec_rejects_bad_length() {
        let m = Matrix::zeros(2, 3);
        let mut out = vec![0.0; 2];
        m.mul_vec_into(&[1.0, 2.0], &mut out);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_wrong_len() {
        Matrix::from_vec(2, 2, vec![1.0; 3]);
    }
}
