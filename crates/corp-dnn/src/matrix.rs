//! Minimal dense matrix for the DNN substrate.
//!
//! Row-major `Vec<f64>` storage; only the operations the network needs
//! (matrix-vector products in both orientations, outer-product
//! accumulation). Kept deliberately small — this is a numerics substrate,
//! not a linear-algebra library — and bounds-check friendly: the hot loops
//! iterate rows via `chunks_exact` so the optimizer can elide per-element
//! checks.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "matrix dimensions must be positive: {rows}x{cols}"
        );
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix by calling `f(row, col)` for each element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Resizes to `rows x cols`, reusing the existing allocation —
    /// shrinking then growing back never reallocates. Contents afterwards
    /// are unspecified (all consumers overwrite before reading).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn reshape(&mut self, rows: usize, cols: usize) {
        assert!(
            rows > 0 && cols > 0,
            "matrix dimensions must be positive: {rows}x{cols}"
        );
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Writes `self^T` into `out` (which must already be `cols x rows`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, self.rows),
            "transpose shape mismatch"
        );
        for (r, row) in self.data.chunks_exact(self.cols).enumerate() {
            for (c, &v) in row.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
    }

    /// Resizes to `cols` columns (row count unchanged), zero-filling and
    /// reusing the existing allocation — shrinking then growing back never
    /// reallocates, which keeps scratch buffers warm across alternating
    /// batch widths. Contents afterwards are unspecified (all consumers
    /// overwrite before reading).
    ///
    /// # Panics
    ///
    /// Panics if `cols` is zero.
    pub fn reshape_cols(&mut self, cols: usize) {
        assert!(cols > 0, "matrix dimensions must be positive");
        if cols == self.cols {
            return;
        }
        self.cols = cols;
        self.data.resize(self.rows * cols, 0.0);
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `out = self * x` (matrix-vector product). `out` is overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `out.len() != rows`.
    pub fn mul_vec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "input length mismatch");
        assert_eq!(out.len(), self.rows, "output length mismatch");
        for (o, row) in out.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            *o = row.iter().zip(x).map(|(w, xi)| w * xi).sum();
        }
    }

    /// `out = self * x` with a fused epilogue: `out[i] =
    /// epilogue(i, row_i . x)`. The dot product accumulates in exactly the
    /// same order as [`mul_vec_into`](Self::mul_vec_into), so fusing a bias
    /// add and activation into the epilogue is bit-identical to running the
    /// unfused product followed by a separate bias/activation pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `out.len() != rows`.
    pub fn mul_vec_fused_into<F>(&self, x: &[f64], out: &mut [f64], mut epilogue: F)
    where
        F: FnMut(usize, f64) -> f64,
    {
        assert_eq!(x.len(), self.cols, "input length mismatch");
        assert_eq!(out.len(), self.rows, "output length mismatch");
        for (i, (o, row)) in out
            .iter_mut()
            .zip(self.data.chunks_exact(self.cols))
            .enumerate()
        {
            let acc: f64 = row.iter().zip(x).map(|(w, xi)| w * xi).sum();
            *o = epilogue(i, acc);
        }
    }

    /// Blocked matrix-matrix product with a fused per-element epilogue:
    /// `out[i][b] = epilogue(i, row_i . col_b(x))`. `x` and `out` are
    /// *feature-major batches*: column `b` holds sample `b`, so each output
    /// row accumulates as a sequence of `w * x_row` axpys over contiguous
    /// batch rows. Every batch lane still accumulates over `k` in exactly
    /// the scalar dot-product order — evaluating a batch is bit-identical
    /// to evaluating its samples one by one through
    /// [`mul_vec_fused_into`](Self::mul_vec_fused_into).
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != cols`, `out.rows() != rows`, or
    /// `out.cols() != x.cols()`.
    pub fn matmul_fused_into<F>(&self, x: &Matrix, out: &mut Matrix, mut epilogue: F)
    where
        F: FnMut(usize, f64) -> f64,
    {
        assert_eq!(x.rows, self.cols, "inner dimension mismatch");
        assert_eq!(out.rows, self.rows, "output row mismatch");
        assert_eq!(out.cols, x.cols, "batch width mismatch");
        let n = x.cols;
        let k_body = self.cols - self.cols % 4;
        for (i, (out_row, w_row)) in out
            .data
            .chunks_exact_mut(n)
            .zip(self.data.chunks_exact(self.cols))
            .enumerate()
        {
            out_row.iter_mut().for_each(|o| *o = 0.0);
            // k-blocked by 8: each pass over the output row applies eight
            // weights, cutting the out-row load/store traffic the plain
            // one-weight axpy is bound by. The adds stay left-associated in
            // ascending k order, so every lane accumulates bit-identically
            // to the scalar dot product.
            let mut k = 0;
            while k + 8 <= self.cols {
                let w = &w_row[k..k + 8];
                let x0 = &x.data[k * n..(k + 1) * n];
                let x1 = &x.data[(k + 1) * n..(k + 2) * n];
                let x2 = &x.data[(k + 2) * n..(k + 3) * n];
                let x3 = &x.data[(k + 3) * n..(k + 4) * n];
                let x4 = &x.data[(k + 4) * n..(k + 5) * n];
                let x5 = &x.data[(k + 5) * n..(k + 6) * n];
                let x6 = &x.data[(k + 6) * n..(k + 7) * n];
                let x7 = &x.data[(k + 7) * n..(k + 8) * n];
                for ((((((((o, &a0), &a1), &a2), &a3), &a4), &a5), &a6), &a7) in out_row
                    .iter_mut()
                    .zip(x0)
                    .zip(x1)
                    .zip(x2)
                    .zip(x3)
                    .zip(x4)
                    .zip(x5)
                    .zip(x6)
                    .zip(x7)
                {
                    *o = (((((((*o + w[0] * a0) + w[1] * a1) + w[2] * a2) + w[3] * a3)
                        + w[4] * a4)
                        + w[5] * a5)
                        + w[6] * a6)
                        + w[7] * a7;
                }
                k += 8;
            }
            while k < k_body {
                let w = &w_row[k..k + 4];
                let x0 = &x.data[k * n..(k + 1) * n];
                let x1 = &x.data[(k + 1) * n..(k + 2) * n];
                let x2 = &x.data[(k + 2) * n..(k + 3) * n];
                let x3 = &x.data[(k + 3) * n..(k + 4) * n];
                for ((((o, &a0), &a1), &a2), &a3) in
                    out_row.iter_mut().zip(x0).zip(x1).zip(x2).zip(x3)
                {
                    *o = (((*o + w[0] * a0) + w[1] * a1) + w[2] * a2) + w[3] * a3;
                }
                k += 4;
            }
            for (&w, x_row) in w_row[k_body..]
                .iter()
                .zip(x.data[k_body * n..].chunks_exact(n))
            {
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += w * xv;
                }
            }
            for o in out_row.iter_mut() {
                *o = epilogue(i, *o);
            }
        }
    }

    /// `out = self^T * e` over feature-major batches (the batched
    /// counterpart of
    /// [`mul_vec_transposed_into`](Self::mul_vec_transposed_into), used to
    /// back-propagate a whole minibatch of error terms at once). `out` is
    /// overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `e.rows() != rows`, `out.rows() != cols`, or
    /// `out.cols() != e.cols()`.
    pub fn matmul_transposed_into(&self, e: &Matrix, out: &mut Matrix) {
        assert_eq!(e.rows, self.rows, "input row mismatch");
        assert_eq!(out.rows, self.cols, "output row mismatch");
        assert_eq!(out.cols, e.cols, "batch width mismatch");
        let n = e.cols;
        let cols = self.cols;
        let r_body = self.rows - self.rows % 4;
        // Out-row-outer with the reduction over upper rows r-blocked by 4:
        // each output row stays resident while four error rows stream
        // through, instead of every (r, j) pair re-walking `out`. The adds
        // are left-associated in ascending r — the same order the row-outer
        // formulation accumulates in — so results are bit-identical.
        for (j, out_row) in out.data.chunks_exact_mut(n).enumerate() {
            out_row.iter_mut().for_each(|o| *o = 0.0);
            let mut r = 0;
            while r + 8 <= self.rows {
                let w0 = self.data[r * cols + j];
                let w1 = self.data[(r + 1) * cols + j];
                let w2 = self.data[(r + 2) * cols + j];
                let w3 = self.data[(r + 3) * cols + j];
                let w4 = self.data[(r + 4) * cols + j];
                let w5 = self.data[(r + 5) * cols + j];
                let w6 = self.data[(r + 6) * cols + j];
                let w7 = self.data[(r + 7) * cols + j];
                let e0 = &e.data[r * n..(r + 1) * n];
                let e1 = &e.data[(r + 1) * n..(r + 2) * n];
                let e2 = &e.data[(r + 2) * n..(r + 3) * n];
                let e3 = &e.data[(r + 3) * n..(r + 4) * n];
                let e4 = &e.data[(r + 4) * n..(r + 5) * n];
                let e5 = &e.data[(r + 5) * n..(r + 6) * n];
                let e6 = &e.data[(r + 6) * n..(r + 7) * n];
                let e7 = &e.data[(r + 7) * n..(r + 8) * n];
                for ((((((((o, &a0), &a1), &a2), &a3), &a4), &a5), &a6), &a7) in out_row
                    .iter_mut()
                    .zip(e0)
                    .zip(e1)
                    .zip(e2)
                    .zip(e3)
                    .zip(e4)
                    .zip(e5)
                    .zip(e6)
                    .zip(e7)
                {
                    *o = (((((((*o + w0 * a0) + w1 * a1) + w2 * a2) + w3 * a3) + w4 * a4)
                        + w5 * a5)
                        + w6 * a6)
                        + w7 * a7;
                }
                r += 8;
            }
            while r < r_body {
                let w0 = self.data[r * cols + j];
                let w1 = self.data[(r + 1) * cols + j];
                let w2 = self.data[(r + 2) * cols + j];
                let w3 = self.data[(r + 3) * cols + j];
                let e0 = &e.data[r * n..(r + 1) * n];
                let e1 = &e.data[(r + 1) * n..(r + 2) * n];
                let e2 = &e.data[(r + 2) * n..(r + 3) * n];
                let e3 = &e.data[(r + 3) * n..(r + 4) * n];
                for ((((o, &a0), &a1), &a2), &a3) in
                    out_row.iter_mut().zip(e0).zip(e1).zip(e2).zip(e3)
                {
                    *o = (((*o + w0 * a0) + w1 * a1) + w2 * a2) + w3 * a3;
                }
                r += 4;
            }
            for (e_row, w_row) in e.data[r_body * n..]
                .chunks_exact(n)
                .zip(self.data[r_body * cols..].chunks_exact(cols))
            {
                let w = w_row[j];
                for (o, &ev) in out_row.iter_mut().zip(e_row) {
                    *o += w * ev;
                }
            }
        }
    }

    /// Accumulates `self += e * g^T` over feature-major batches: the
    /// minibatch gradient `dW[i][j] += sum_b e[i][b] * g[j][b]` (Eq. 8
    /// summed over the batch). Rows of `e` and `g` are contiguous; the
    /// inner sum is a lane-blocked dot product of two slices.
    ///
    /// # Panics
    ///
    /// Panics if `e.rows() != rows`, `g.rows() != cols`, or the batch
    /// widths differ.
    pub fn add_batch_outer(&mut self, e: &Matrix, g: &Matrix) {
        assert_eq!(e.rows, self.rows, "row factor mismatch");
        assert_eq!(g.rows, self.cols, "column factor mismatch");
        assert_eq!(e.cols, g.cols, "batch width mismatch");
        const LANES: usize = 8;
        let n = e.cols;
        let body = n - n % LANES;
        for (w_row, e_row) in self
            .data
            .chunks_exact_mut(self.cols)
            .zip(e.data.chunks_exact(n))
        {
            for (w, g_row) in w_row.iter_mut().zip(g.data.chunks_exact(n)) {
                // Eight independent partial sums break the sequential FP
                // dependency chain a plain `.sum()` dot would serialize on,
                // letting the reduction vectorize. Lane assignment is fixed
                // (b mod LANES), so results are deterministic; batches
                // narrower than a lane block take only the tail path, which
                // is the plain ascending dot.
                let mut acc = [0.0f64; LANES];
                for (ea, ga) in e_row[..body]
                    .chunks_exact(LANES)
                    .zip(g_row[..body].chunks_exact(LANES))
                {
                    for l in 0..LANES {
                        acc[l] += ea[l] * ga[l];
                    }
                }
                let mut dot = ((acc[0] + acc[4]) + (acc[2] + acc[6]))
                    + ((acc[1] + acc[5]) + (acc[3] + acc[7]));
                for (a, b) in e_row[body..].iter().zip(&g_row[body..]) {
                    dot += a * b;
                }
                *w += dot;
            }
        }
    }

    /// Accumulates `self += e * gt` where `gt` is already the *transpose*
    /// of the feature-major activation batch (`gt[b][j] = g[j][b]`): the
    /// same minibatch gradient as
    /// [`add_batch_outer`](Self::add_batch_outer), but with the reduction
    /// over the batch expressed as contiguous axpys into each gradient row
    /// instead of per-weight horizontal dots — the faster shape when the
    /// caller can afford one transpose of `g` per batch. The batch axis is
    /// blocked by 4 with left-associated adds in ascending `b`.
    ///
    /// # Panics
    ///
    /// Panics if `e.rows() != rows`, `gt.cols() != cols`, or
    /// `gt.rows() != e.cols()`.
    pub fn add_batch_outer_pretransposed(&mut self, e: &Matrix, gt: &Matrix) {
        assert_eq!(e.rows, self.rows, "row factor mismatch");
        assert_eq!(gt.cols, self.cols, "column factor mismatch");
        assert_eq!(gt.rows, e.cols, "batch width mismatch");
        let n = e.cols;
        let m = self.cols;
        let b_body = n - n % 4;
        for (w_row, e_row) in self.data.chunks_exact_mut(m).zip(e.data.chunks_exact(n)) {
            let mut b = 0;
            while b < b_body {
                let ev = &e_row[b..b + 4];
                let g0 = &gt.data[b * m..(b + 1) * m];
                let g1 = &gt.data[(b + 1) * m..(b + 2) * m];
                let g2 = &gt.data[(b + 2) * m..(b + 3) * m];
                let g3 = &gt.data[(b + 3) * m..(b + 4) * m];
                for ((((w, &a0), &a1), &a2), &a3) in
                    w_row.iter_mut().zip(g0).zip(g1).zip(g2).zip(g3)
                {
                    *w = (((*w + ev[0] * a0) + ev[1] * a1) + ev[2] * a2) + ev[3] * a3;
                }
                b += 4;
            }
            for (&ev, g_row) in e_row[b_body..]
                .iter()
                .zip(gt.data[b_body * m..].chunks_exact(m))
            {
                for (w, &gv) in w_row.iter_mut().zip(g_row) {
                    *w += ev * gv;
                }
            }
        }
    }

    /// `out = self^T * x` (transposed matrix-vector product), used to
    /// back-propagate error terms (paper Eq. 7 sums over the *upper* layer's
    /// errors weighted by `w_ji`). `out` is overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `out.len() != cols`.
    pub fn mul_vec_transposed_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "input length mismatch");
        assert_eq!(out.len(), self.cols, "output length mismatch");
        out.iter_mut().for_each(|o| *o = 0.0);
        for (xi, row) in x.iter().zip(self.data.chunks_exact(self.cols)) {
            if *xi == 0.0 {
                continue;
            }
            for (o, w) in out.iter_mut().zip(row) {
                *o += w * xi;
            }
        }
    }

    /// Accumulates the scaled outer product `self += scale * a * b^T`,
    /// which is exactly the weight update of paper Eq. 8 with
    /// `scale = mu`, `a = E(d)`, `b = g(d-1)`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != rows` or `b.len() != cols`.
    pub fn add_outer_scaled(&mut self, a: &[f64], b: &[f64], scale: f64) {
        assert_eq!(a.len(), self.rows, "row factor length mismatch");
        assert_eq!(b.len(), self.cols, "column factor length mismatch");
        for (ai, row) in a.iter().zip(self.data.chunks_exact_mut(self.cols)) {
            let s = scale * ai;
            if s == 0.0 {
                continue;
            }
            for (w, bj) in row.iter_mut().zip(b) {
                *w += s * bj;
            }
        }
    }

    /// Scales every element in place (used for momentum decay).
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Adds another matrix element-wise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Fused momentum update for the per-sample path: one pass computing
    /// `velocity = momentum * velocity + scale * a * b^T` followed by
    /// `self += velocity`, replacing the three-pass
    /// `scale`/`add_outer_scaled`/`add_assign` sequence. Per element the
    /// operations and their order are unchanged (decay, optional add,
    /// accumulate), so the result is bit-identical to the unfused sequence;
    /// rows whose `scale * a[i]` is zero still decay their velocity and
    /// still apply it to the weights, matching the legacy semantics.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch between `self`, `velocity`, `a`, and `b`.
    pub fn momentum_step(
        &mut self,
        velocity: &mut Matrix,
        a: &[f64],
        b: &[f64],
        momentum: f64,
        scale: f64,
    ) {
        assert_eq!(
            (self.rows, self.cols),
            (velocity.rows, velocity.cols),
            "velocity shape mismatch"
        );
        assert_eq!(a.len(), self.rows, "row factor length mismatch");
        assert_eq!(b.len(), self.cols, "column factor length mismatch");
        for ((ai, w_row), v_row) in a
            .iter()
            .zip(self.data.chunks_exact_mut(self.cols))
            .zip(velocity.data.chunks_exact_mut(self.cols))
        {
            let s = scale * ai;
            if s == 0.0 {
                for (w, v) in w_row.iter_mut().zip(v_row) {
                    *v *= momentum;
                    *w += *v;
                }
            } else {
                for ((w, v), bj) in w_row.iter_mut().zip(v_row).zip(b) {
                    *v = momentum * *v + s * bj;
                    *w += *v;
                }
            }
        }
    }

    /// Fused momentum update for the minibatch path:
    /// `velocity = momentum * velocity + scale * grad` followed by
    /// `self += velocity`, where `grad` is an accumulated minibatch
    /// gradient (e.g. from [`add_batch_outer`](Self::add_batch_outer)).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn momentum_step_from(
        &mut self,
        velocity: &mut Matrix,
        grad: &Matrix,
        momentum: f64,
        scale: f64,
    ) {
        assert_eq!(
            (self.rows, self.cols),
            (velocity.rows, velocity.cols),
            "velocity shape mismatch"
        );
        assert_eq!(
            (self.rows, self.cols),
            (grad.rows, grad.cols),
            "gradient shape mismatch"
        );
        for ((w, v), g) in self.data.iter_mut().zip(&mut velocity.data).zip(&grad.data) {
            *v = momentum * *v + scale * g;
            *w += *v;
        }
    }

    /// Sets every element to `value` (used to reset preallocated gradient
    /// scratch between minibatches without reallocating).
    pub fn fill(&mut self, value: f64) {
        self.data.iter_mut().for_each(|v| *v = value);
    }

    /// Frobenius norm, handy for diagnosing exploding weights in tests.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_builds_expected_entries() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 11.0);
    }

    #[test]
    fn mul_vec_matches_hand_computation() {
        // [[1,2],[3,4],[5,6]] * [1, -1] = [-1, -1, -1]
        let m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut out = vec![0.0; 3];
        m.mul_vec_into(&[1.0, -1.0], &mut out);
        assert_eq!(out, vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    fn transposed_mul_matches_hand_computation() {
        // [[1,2],[3,4]]^T * [1, 1] = [4, 6]
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut out = vec![0.0; 2];
        m.mul_vec_transposed_into(&[1.0, 1.0], &mut out);
        assert_eq!(out, vec![4.0, 6.0]);
    }

    #[test]
    fn transposed_mul_agrees_with_explicit_transpose() {
        let m = Matrix::from_fn(4, 3, |r, c| (r as f64 + 1.0) * (c as f64 - 1.0));
        let x = [0.5, -1.5, 2.0, 0.25];
        let mut fast = vec![0.0; 3];
        m.mul_vec_transposed_into(&x, &mut fast);
        for c in 0..3 {
            let slow: f64 = (0..4).map(|r| m.get(r, c) * x[r]).sum();
            assert!((fast[c] - slow).abs() < 1e-12);
        }
    }

    #[test]
    fn outer_product_accumulates_eq8_shape() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer_scaled(&[1.0, 2.0], &[10.0, 20.0, 30.0], 0.5);
        // m[r][c] = 0.5 * a[r] * b[c]
        assert_eq!(m.get(0, 0), 5.0);
        assert_eq!(m.get(0, 2), 15.0);
        assert_eq!(m.get(1, 1), 20.0);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[4.0, 6.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn frobenius_norm_of_unit_rows() {
        let m = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn fused_mul_vec_is_bit_identical_to_unfused_pass() {
        let m = Matrix::from_fn(5, 4, |r, c| ((r * 7 + c * 3) as f64).sin());
        let x = [0.3, -1.7, 2.2, 0.9];
        let bias = [0.1, -0.2, 0.3, -0.4, 0.5];
        let mut plain = vec![0.0; 5];
        m.mul_vec_into(&x, &mut plain);
        for (p, b) in plain.iter_mut().zip(&bias) {
            *p = 1.0 / (1.0 + (-(*p + b)).exp());
        }
        let mut fused = vec![0.0; 5];
        m.mul_vec_fused_into(&x, &mut fused, |i, acc| {
            1.0 / (1.0 + (-(acc + bias[i])).exp())
        });
        assert_eq!(
            plain.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            fused.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn batched_matmul_is_bit_identical_to_per_sample_columns() {
        // 7 columns exercises both the 4-lane block and the remainder loop.
        let m = Matrix::from_fn(6, 5, |r, c| ((r * 3 + c) as f64 * 0.37).cos());
        let x = Matrix::from_fn(5, 7, |r, c| ((r + c * 11) as f64 * 0.13).sin());
        let bias = [0.05, -0.1, 0.15, -0.2, 0.25, -0.3];
        let mut out = Matrix::zeros(6, 7);
        m.matmul_fused_into(&x, &mut out, |i, acc| {
            1.0 / (1.0 + (-(acc + bias[i])).exp())
        });
        for b in 0..7 {
            let col: Vec<f64> = (0..5).map(|k| x.get(k, b)).collect();
            let mut single = vec![0.0; 6];
            m.mul_vec_fused_into(&col, &mut single, |i, acc| {
                1.0 / (1.0 + (-(acc + bias[i])).exp())
            });
            for (i, s) in single.iter().enumerate() {
                assert_eq!(out.get(i, b).to_bits(), s.to_bits(), "col {b} row {i}");
            }
        }
    }

    #[test]
    fn batched_transposed_matmul_matches_per_sample_columns() {
        let m = Matrix::from_fn(4, 6, |r, c| ((r * 5 + c) as f64 * 0.21).sin());
        let e = Matrix::from_fn(4, 3, |r, c| ((r + c * 2) as f64 * 0.4).cos());
        let mut out = Matrix::zeros(6, 3);
        m.matmul_transposed_into(&e, &mut out);
        for b in 0..3 {
            let col: Vec<f64> = (0..4).map(|k| e.get(k, b)).collect();
            let mut single = vec![0.0; 6];
            m.mul_vec_transposed_into(&col, &mut single);
            for (j, s) in single.iter().enumerate() {
                assert!((out.get(j, b) - s).abs() < 1e-12, "col {b} row {j}");
            }
        }
    }

    #[test]
    fn batch_outer_sums_per_sample_outer_products() {
        let e = Matrix::from_fn(3, 4, |r, c| (r as f64 + 1.0) * (c as f64 - 1.5));
        let g = Matrix::from_fn(2, 4, |r, c| (r as f64 - 0.5) * (c as f64 + 0.3));
        let mut batched = Matrix::zeros(3, 2);
        batched.add_batch_outer(&e, &g);
        let mut reference = Matrix::zeros(3, 2);
        for b in 0..4 {
            let ecol: Vec<f64> = (0..3).map(|r| e.get(r, b)).collect();
            let gcol: Vec<f64> = (0..2).map(|r| g.get(r, b)).collect();
            reference.add_outer_scaled(&ecol, &gcol, 1.0);
        }
        for r in 0..3 {
            for c in 0..2 {
                assert!((batched.get(r, c) - reference.get(r, c)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn momentum_step_is_bit_identical_to_three_pass_update() {
        let mut w_fused = Matrix::from_fn(3, 4, |r, c| ((r + c) as f64 * 0.1).sin());
        let mut v_fused = Matrix::from_fn(3, 4, |r, c| ((r * c) as f64 * 0.05).cos());
        let mut w_ref = w_fused.clone();
        let mut v_ref = v_fused.clone();
        // a[1] == 0.0 exercises the zero-row path: velocity still decays
        // and still applies.
        let a = [0.7, 0.0, -1.3];
        let b = [0.2, -0.4, 0.6, -0.8];
        let (momentum, mu) = (0.5, 0.05);

        v_ref.scale(momentum);
        v_ref.add_outer_scaled(&a, &b, mu);
        w_ref.add_assign(&v_ref);

        w_fused.momentum_step(&mut v_fused, &a, &b, momentum, mu);

        assert_eq!(
            w_ref
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            w_fused
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
        assert_eq!(
            v_ref
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            v_fused
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn momentum_step_from_applies_batch_gradient() {
        let mut w = Matrix::zeros(2, 2);
        let mut v = Matrix::from_vec(2, 2, vec![1.0, -1.0, 2.0, -2.0]);
        let g = Matrix::from_vec(2, 2, vec![10.0, 20.0, 30.0, 40.0]);
        w.momentum_step_from(&mut v, &g, 0.5, 0.1);
        assert_eq!(v.as_slice(), &[1.5, 1.5, 4.0, 3.0]);
        assert_eq!(w.as_slice(), &[1.5, 1.5, 4.0, 3.0]);
    }

    #[test]
    fn fill_resets_every_element() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        m.fill(0.0);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic]
    fn zero_dimension_rejected() {
        Matrix::zeros(0, 3);
    }

    #[test]
    #[should_panic]
    fn mul_vec_rejects_bad_length() {
        let m = Matrix::zeros(2, 3);
        let mut out = vec![0.0; 2];
        m.mul_vec_into(&[1.0, 2.0], &mut out);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_wrong_len() {
        Matrix::from_vec(2, 2, vec![1.0; 3]);
    }
}
