//! Sliding-window unused-resource regressor.
//!
//! This is the deep-learning predictor of Section III-A.1.a: "Each input
//! data contains CPU utilization of a job at each slot in last `Delta`
//! slots. ... To predict the unused resource of a job at time `t + L`, we
//! input CPU utilization of a job at each slot in last `Delta` slots to the
//! DNN, and the output is the amount of unused CPU resource of the job."
//!
//! One [`UnusedResourcePredictor`] is trained per resource type. Every
//! training example (and every query) is normalized by its *own* window
//! maximum, making the learned mapping scale-invariant: a 0.5-core job and
//! a 60 GB job share one model of "how unused-resource levels evolve",
//! which is what lets a single network serve a heterogeneous job
//! population. Predictions are mapped back to resource units and clamped
//! non-negative (negative unused resource is meaningless).

use crate::network::{Network, Scratch};
use crate::train::{TrainConfig, TrainReport, Trainer};
use serde::{Deserialize, Serialize};

/// Reusable buffers for [`UnusedResourcePredictor::predict_with`]: the
/// assembled input window plus the network's activation scratch. One per
/// worker thread lets a fleet of threads query a shared predictor with zero
/// steady-state allocation.
#[derive(Debug, Clone, Default)]
pub struct PredictScratch {
    window: Vec<f64>,
    input: Vec<f64>,
    net: Scratch,
}

impl PredictScratch {
    /// An empty scratch; sized lazily on first use.
    pub fn new() -> Self {
        PredictScratch::default()
    }
}

/// Configuration for a windowed DNN predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowPredictorConfig {
    /// Input window length `Delta` (slots of history per example).
    pub window: usize,
    /// Prediction horizon `L` (slots ahead of the window's end).
    pub horizon: usize,
    /// Hidden units per layer (`N_n = 50` in Table II).
    pub units: usize,
    /// Number of hidden layers (`h = 4` in Table II).
    pub hidden_layers: usize,
    /// Training hyper-parameters.
    pub train: TrainConfig,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for WindowPredictorConfig {
    fn default() -> Self {
        WindowPredictorConfig {
            window: 6,
            horizon: 6,
            units: 50,
            hidden_layers: 4,
            train: TrainConfig::default(),
            seed: 0xD11,
        }
    }
}

/// A DNN that predicts the amount of unused resource `horizon` slots ahead
/// from the last `window` slots of usage history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnusedResourcePredictor {
    config: WindowPredictorConfig,
    net: Network,
    trained: bool,
    /// Scratch for the owned-access [`predict`](Self::predict) entry point.
    #[serde(skip)]
    scratch: PredictScratch,
}

impl UnusedResourcePredictor {
    /// Creates an untrained predictor.
    ///
    /// # Panics
    ///
    /// Panics if window, horizon, units, or layer count is zero.
    pub fn new(config: WindowPredictorConfig) -> Self {
        assert!(config.window > 0, "window must be positive");
        assert!(config.horizon > 0, "horizon must be positive");
        assert!(config.units > 0, "units must be positive");
        assert!(config.hidden_layers > 0, "need at least one hidden layer");
        let mut sizes = Vec::with_capacity(config.hidden_layers + 2);
        sizes.push(config.window);
        sizes.extend(std::iter::repeat_n(config.units, config.hidden_layers));
        sizes.push(1);
        let net = Network::new(
            &sizes,
            crate::activation::Activation::Sigmoid,
            crate::activation::Activation::Identity,
            config.seed,
        );
        UnusedResourcePredictor {
            config,
            net,
            trained: false,
            scratch: PredictScratch::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &WindowPredictorConfig {
        &self.config
    }

    /// Whether [`fit`](Self::fit) has completed.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Builds the training set from per-job unused-resource histories and
    /// trains the network until validation convergence.
    ///
    /// Each history contributes one example per position where a full
    /// `window` plus `horizon` fits: input = `window` consecutive values,
    /// target = the value `horizon` slots after the window's end.
    ///
    /// Returns `None` if the histories yield no training examples (all too
    /// short); the predictor then stays untrained and
    /// [`predict`](Self::predict) falls back to a persistence forecast.
    pub fn fit(&mut self, histories: &[Vec<f64>]) -> Option<TrainReport> {
        let w = self.config.window;
        let h = self.config.horizon;
        let mut inputs = Vec::new();
        let mut targets = Vec::new();
        for series in histories {
            if series.len() < w + h {
                continue;
            }
            for start in 0..=(series.len() - w - h) {
                let window = &series[start..start + w];
                let scale = Self::window_scale(window);
                inputs.push(window.iter().map(|v| v / scale).collect::<Vec<f64>>());
                targets.push(vec![series[start + w + h - 1] / scale]);
            }
        }
        if inputs.len() < 4 {
            return None;
        }
        let report =
            Trainer::new(self.config.train.clone()).train(&mut self.net, &inputs, &targets);
        self.trained = true;
        Some(report)
    }

    /// Per-example normalization scale: the window maximum, floored so an
    /// all-zero window maps to zero rather than dividing by zero.
    fn window_scale(window: &[f64]) -> f64 {
        window.iter().cloned().fold(0.0f64, f64::max).max(1e-9)
    }

    /// Predicts the unused resource `horizon` slots after the end of
    /// `recent`, which must hold at least `window` values (extra leading
    /// values are ignored; shorter histories are left-padded with their
    /// first value).
    ///
    /// Untrained predictors return a persistence forecast (the last
    /// observed value), which is also the paper-accurate cold-start
    /// behaviour: with no trained model the safest estimate of near-future
    /// unused resource is the present one.
    ///
    /// # Panics
    ///
    /// Panics if `recent` is empty.
    pub fn predict(&mut self, recent: &[f64]) -> f64 {
        let mut scratch = std::mem::take(&mut self.scratch);
        let y = self.predict_with(recent, &mut scratch);
        self.scratch = scratch;
        y
    }

    /// [`predict`](Self::predict) through caller-provided scratch, leaving
    /// the predictor immutable so scoped threads can share one
    /// `&UnusedResourcePredictor`. Bit-identical to `predict` (same window
    /// assembly, same fused forward kernel).
    ///
    /// # Panics
    ///
    /// Panics if `recent` is empty.
    pub fn predict_with(&self, recent: &[f64], scratch: &mut PredictScratch) -> f64 {
        assert!(!recent.is_empty(), "need at least one recent observation");
        if !self.trained {
            return recent[recent.len() - 1].max(0.0);
        }
        let w = self.config.window;
        let window = &mut scratch.window;
        window.clear();
        if recent.len() >= w {
            window.extend_from_slice(&recent[recent.len() - w..]);
        } else {
            let pad = w - recent.len();
            window.extend(std::iter::repeat_n(recent[0], pad));
            window.extend_from_slice(recent);
        }
        let scale = Self::window_scale(window);
        scratch.input.clear();
        scratch.input.extend(window.iter().map(|v| v / scale));
        let y = self.net.forward_with(&scratch.input, &mut scratch.net)[0] * scale;
        y.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> WindowPredictorConfig {
        WindowPredictorConfig {
            window: 4,
            horizon: 2,
            units: 12,
            hidden_layers: 2,
            train: TrainConfig {
                max_epochs: 150,
                learning_rate: 0.1,
                ..TrainConfig::default()
            },
            seed: 3,
        }
    }

    #[test]
    fn untrained_predictor_uses_persistence() {
        let mut p = UnusedResourcePredictor::new(small_config());
        assert!(!p.is_trained());
        assert_eq!(p.predict(&[1.0, 2.0, 3.0]), 3.0);
    }

    #[test]
    fn fit_returns_none_for_too_short_histories() {
        let mut p = UnusedResourcePredictor::new(small_config());
        // window+horizon = 6; all series shorter.
        assert!(p.fit(&[vec![1.0; 5], vec![2.0; 3]]).is_none());
        assert!(!p.is_trained());
    }

    #[test]
    fn learns_near_constant_unused_resource() {
        let mut p = UnusedResourcePredictor::new(small_config());
        let histories: Vec<Vec<f64>> = (0..8)
            .map(|j| (0..40).map(|t| 10.0 + ((t + j) % 3) as f64 * 0.2).collect())
            .collect();
        let report = p.fit(&histories).expect("enough examples");
        assert!(report.final_validation_mse < 0.05);
        let pred = p.predict(&[10.0, 10.2, 10.0, 10.2]);
        assert!((pred - 10.1).abs() < 1.0, "prediction {pred} far from ~10");
    }

    #[test]
    fn learns_level_dependence() {
        // Two regimes: low-usage jobs (~2 unused) and high-usage (~8). The
        // DNN must map window level to target level — a task persistence
        // handles trivially but which verifies end-to-end fitting.
        let mut p = UnusedResourcePredictor::new(small_config());
        let mut histories = Vec::new();
        for j in 0..6 {
            let level = if j % 2 == 0 { 2.0 } else { 8.0 };
            histories.push((0..30).map(|t| level + (t % 2) as f64 * 0.1).collect());
        }
        p.fit(&histories).unwrap();
        let low = p.predict(&[2.0, 2.1, 2.0, 2.1]);
        let high = p.predict(&[8.0, 8.1, 8.0, 8.1]);
        assert!(
            high > low + 3.0,
            "level separation lost: low={low} high={high}"
        );
    }

    #[test]
    fn prediction_is_nonnegative() {
        let mut p = UnusedResourcePredictor::new(small_config());
        let histories: Vec<Vec<f64>> = (0..6).map(|_| vec![0.01; 30]).collect();
        p.fit(&histories).unwrap();
        assert!(p.predict(&[0.0, 0.0, 0.0, 0.0]) >= 0.0);
    }

    #[test]
    fn short_recent_history_is_padded() {
        let mut p = UnusedResourcePredictor::new(small_config());
        let histories: Vec<Vec<f64>> = (0..6).map(|_| vec![5.0; 30]).collect();
        p.fit(&histories).unwrap();
        let pred = p.predict(&[5.0]);
        assert!((pred - 5.0).abs() < 2.0);
    }

    #[test]
    fn predict_with_shared_scratch_matches_owned_predict() {
        let mut p = UnusedResourcePredictor::new(small_config());
        let histories: Vec<Vec<f64>> = (0..8)
            .map(|j| (0..40).map(|t| 4.0 + ((t + j) % 4) as f64 * 0.3).collect())
            .collect();
        p.fit(&histories).unwrap();
        let mut scratch = PredictScratch::new();
        for recent in [&[4.0, 4.3, 4.6, 4.0][..], &[4.5][..], &[0.0, 9.0][..]] {
            let shared = p.predict_with(recent, &mut scratch);
            let owned = p.predict(recent);
            assert_eq!(shared.to_bits(), owned.to_bits());
        }
    }

    #[test]
    fn paper_table2_architecture_constructs() {
        let p = UnusedResourcePredictor::new(WindowPredictorConfig::default());
        assert_eq!(p.config().units, 50);
        assert_eq!(p.config().hidden_layers, 4);
    }

    #[test]
    #[should_panic]
    fn empty_recent_rejected() {
        let mut p = UnusedResourcePredictor::new(small_config());
        p.predict(&[]);
    }
}
