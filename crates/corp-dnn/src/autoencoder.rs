//! Autoencoder mode.
//!
//! Section III-A's training sketch is autoencoder-shaped: "it first computes
//! the hidden activation. Next, it computes the reconstructed output from
//! the hidden activation ... For testing, the algorithm autoencodes the
//! input and generates the output." [`Autoencoder`] wraps a symmetric
//! [`Network`] whose target equals its input, provides reconstruction-error
//! scoring, and can donate its encoder as pre-trained features.

use crate::activation::Activation;
use crate::network::Network;
use crate::train::{TrainConfig, TrainReport, Trainer};
use serde::{Deserialize, Serialize};

/// A tied-shape (not tied-weight) autoencoder: `input -> hidden -> input`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Autoencoder {
    net: Network,
    input_len: usize,
}

impl Autoencoder {
    /// Builds an autoencoder with one hidden (code) layer of `hidden`
    /// units.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new(input_len: usize, hidden: usize, seed: u64) -> Self {
        let net = Network::new(
            &[input_len, hidden, input_len],
            Activation::Sigmoid,
            Activation::Identity,
            seed,
        );
        Autoencoder { net, input_len }
    }

    /// Input (and output) dimension.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Trains the autoencoder to reconstruct `inputs` (targets are the
    /// inputs themselves).
    pub fn train(&mut self, inputs: &[Vec<f64>], config: TrainConfig) -> TrainReport {
        let targets: Vec<Vec<f64>> = inputs.to_vec();
        Trainer::new(config).train(&mut self.net, inputs, &targets)
    }

    /// Reconstructs one input.
    pub fn reconstruct(&mut self, input: &[f64]) -> Vec<f64> {
        self.net.forward(input).to_vec()
    }

    /// Mean squared reconstruction error of one input — an anomaly score:
    /// inputs unlike the training distribution reconstruct poorly.
    pub fn reconstruction_error(&mut self, input: &[f64]) -> f64 {
        let out = self.net.forward(input);
        let se: f64 = out.iter().zip(input).map(|(a, b)| (a - b) * (a - b)).sum();
        se / input.len() as f64
    }

    /// Borrow of the underlying network (e.g. to inspect the code layer).
    pub fn network(&self) -> &Network {
        &self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn structured_inputs(n: usize) -> Vec<Vec<f64>> {
        // Points on a 1-D manifold inside 4-D space: reconstructable with a
        // small code layer.
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                vec![t, 1.0 - t, 0.5 * t + 0.2, 0.3]
            })
            .collect()
    }

    #[test]
    fn learns_to_reconstruct_structured_data() {
        let inputs = structured_inputs(60);
        let mut ae = Autoencoder::new(4, 3, 1);
        let report = ae.train(
            &inputs,
            TrainConfig {
                max_epochs: 400,
                learning_rate: 0.1,
                ..TrainConfig::default()
            },
        );
        assert!(
            report.final_validation_mse < 0.02,
            "reconstruction MSE {}",
            report.final_validation_mse
        );
        let err = ae.reconstruction_error(&inputs[10]);
        assert!(err < 0.05, "in-distribution error {err}");
    }

    #[test]
    fn anomalies_score_higher_than_in_distribution() {
        let inputs = structured_inputs(60);
        let mut ae = Autoencoder::new(4, 3, 2);
        ae.train(
            &inputs,
            TrainConfig {
                max_epochs: 400,
                learning_rate: 0.1,
                ..TrainConfig::default()
            },
        );
        let typical = ae.reconstruction_error(&inputs[30]);
        let anomaly = ae.reconstruction_error(&[5.0, -3.0, 9.0, -7.0]);
        assert!(
            anomaly > typical * 10.0,
            "anomaly {anomaly} should dwarf typical {typical}"
        );
    }

    #[test]
    fn reconstruct_shape_matches_input() {
        let mut ae = Autoencoder::new(5, 2, 3);
        assert_eq!(ae.reconstruct(&[0.0; 5]).len(), 5);
        assert_eq!(ae.input_len(), 5);
    }
}
