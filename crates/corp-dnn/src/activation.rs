//! Activation functions and their derivatives.
//!
//! The paper uses the sigmoid ("Equ. (5) is a sigmoid function, ... more
//! accurate"), so [`Activation::Sigmoid`] is the default throughout; tanh
//! and ReLU are provided for the ablation benches, and [`Activation::Identity`]
//! is used on the output layer of the regression head so predictions are
//! not squashed into `(0, 1)`.
//!
//! Derivatives are expressed in terms of the *activation value* `g` (not
//! the pre-activation), matching the paper's `F'(g_i(d))` notation in
//! Eqs. 6-7 and avoiding a second buffer for pre-activations.

use serde::{Deserialize, Serialize};

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Logistic sigmoid `1 / (1 + e^-x)` — the paper's `F`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Identity (linear), for regression output layers.
    Identity,
}

impl Activation {
    /// Applies the function to a pre-activation value.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the activation value `g = F(x)`.
    #[inline]
    pub fn derivative_from_output(self, g: f64) -> f64 {
        match self {
            Activation::Sigmoid => g * (1.0 - g),
            Activation::Tanh => 1.0 - g * g,
            Activation::Relu => {
                if g > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }

    /// Applies the function to every element of `xs` in place.
    pub fn apply_slice(self, xs: &mut [f64]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_midpoint_and_saturation() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(Activation::Sigmoid.apply(20.0) > 0.999_999);
        assert!(Activation::Sigmoid.apply(-20.0) < 1e-6);
    }

    #[test]
    fn sigmoid_derivative_peaks_at_half() {
        let d = Activation::Sigmoid.derivative_from_output(0.5);
        assert!((d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in [Activation::Sigmoid, Activation::Tanh, Activation::Identity] {
            for &x in &[-2.0, -0.5, 0.1, 1.3, 3.0] {
                let g = act.apply(x);
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative_from_output(g);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at x={x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn relu_derivative_matches_finite_difference_away_from_kink() {
        let eps = 1e-6;
        for &x in &[-2.0, -0.5, 0.5, 2.0] {
            let g = Activation::Relu.apply(x);
            let numeric =
                (Activation::Relu.apply(x + eps) - Activation::Relu.apply(x - eps)) / (2.0 * eps);
            assert!((numeric - Activation::Relu.derivative_from_output(g)).abs() < 1e-5);
        }
    }

    #[test]
    fn tanh_is_odd() {
        assert!((Activation::Tanh.apply(1.3) + Activation::Tanh.apply(-1.3)).abs() < 1e-12);
    }

    #[test]
    fn apply_slice_transforms_everything() {
        let mut xs = [-1.0, 0.0, 1.0];
        Activation::Relu.apply_slice(&mut xs);
        assert_eq!(xs, [0.0, 0.0, 1.0]);
    }
}
