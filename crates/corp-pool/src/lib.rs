//! Persistent worker pool for CORP's prediction fan-out.
//!
//! `corp-core::pipeline` used to spawn fresh OS threads through
//! `std::thread::scope` every provisioning window and rebuild each worker's
//! predictor scratch from nothing. This crate amortizes both costs across
//! the whole simulation:
//!
//! * [`WorkerPool`] owns long-lived named threads (`corp-predict-{i}`),
//!   each parked on a blocking channel receive while idle;
//! * every worker owns a [`WorkerScratch`] — a type-keyed map of reusable
//!   predictor states (DNN activation buffers, HMM decode buffers, …) that
//!   persists across dispatches behind a reset-not-reallocate discipline;
//! * [`WorkerPool::run_chunks`] preserves the deterministic
//!   contiguous-chunk task→worker mapping of the scoped path: chunk `i`
//!   always runs on worker `i`, results land by task index, so everything
//!   downstream is byte-identical to a serial execution.
//!
//! ## Why this crate exists (and the one `unsafe` in the workspace)
//!
//! A persistent pool executing *borrowed* closures cannot be written in
//! safe Rust: the worker threads are `'static`, the per-window tasks
//! borrow the caller's stack (fleet views, result slots), and the only way
//! to hand one to the other is to erase the lifetime — the same move
//! `rayon` and `scoped_threadpool` make internally. Every other crate in
//! the workspace keeps `#![forbid(unsafe_code)]`; this crate isolates the
//! single erasure behind a safe blocking API whose soundness argument is
//! spelled out at the `unsafe` block, and nothing else.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use crossbeam::channel::{bounded, unbounded, Sender};
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;

/// A lifetime-erased unit of work executed on a pool worker.
type PoolTask = Box<dyn FnOnce(&mut WorkerScratch) + Send + 'static>;

/// A panic payload carried back from a worker.
type Payload = Box<dyn Any + Send + 'static>;

/// Per-worker bag of reusable predictor states, keyed by type.
///
/// Workers own one scratch each for the lifetime of the pool; callers
/// fetch their state type with [`get_or_insert_with`](Self::get_or_insert_with)
/// and reset-not-reallocate inside it. States must be self-resetting per
/// use (every buffer fully overwritten before read), which is what makes
/// reuse invisible in the results.
#[derive(Default)]
pub struct WorkerScratch {
    slots: HashMap<TypeId, Box<dyn Any + Send>>,
}

impl std::fmt::Debug for WorkerScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerScratch")
            .field("states", &self.slots.len())
            .finish()
    }
}

impl WorkerScratch {
    /// An empty scratch.
    pub fn new() -> Self {
        WorkerScratch::default()
    }

    /// The persistent state of type `S`, created with `init` on first use.
    pub fn get_or_insert_with<S: Any + Send>(&mut self, init: impl FnOnce() -> S) -> &mut S {
        self.slots
            .entry(TypeId::of::<S>())
            .or_insert_with(|| Box::new(init()))
            .downcast_mut::<S>()
            .expect("scratch slot keyed by its own TypeId")
    }

    /// Number of distinct state types held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no state has been created yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

struct PoolWorker {
    /// `None` once the pool is shutting down (sender dropped to unpark the
    /// worker loop into its exit path).
    tasks: Option<Sender<PoolTask>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Long-lived prediction workers, parked on a blocking channel receive
/// while idle. Workers are spawned lazily by [`ensure`](Self::ensure) and
/// joined on drop.
#[derive(Default)]
pub struct WorkerPool {
    workers: Vec<PoolWorker>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("width", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// An empty pool; workers spawn on first [`ensure`](Self::ensure).
    pub fn new() -> Self {
        WorkerPool::default()
    }

    /// Current number of live workers.
    pub fn width(&self) -> usize {
        self.workers.len()
    }

    /// Grows the pool to at least `width` workers (never shrinks — scratch
    /// in existing workers stays warm).
    pub fn ensure(&mut self, width: usize) {
        while self.workers.len() < width {
            let i = self.workers.len();
            let (tx, rx) = unbounded::<PoolTask>();
            let handle = std::thread::Builder::new()
                .name(format!("corp-predict-{i}"))
                .spawn(move || {
                    let mut scratch = WorkerScratch::new();
                    // Parked (condvar wait inside `recv`) while idle; exits
                    // when the pool drops its sender.
                    while let Ok(task) = rx.recv() {
                        task(&mut scratch);
                    }
                })
                .expect("failed to spawn prediction worker");
            self.workers.push(PoolWorker {
                tasks: Some(tx),
                handle: Some(handle),
            });
        }
    }

    /// Fans `f` over `tasks` across the pool: contiguous chunks of
    /// `ceil(tasks / width)` tasks, chunk `i` dispatched to worker `i`,
    /// results written by task index into `results` (which must be at
    /// least `tasks.len()` long). Each worker threads its calls through
    /// its persistent state of type `S` (created by `init` on the worker's
    /// first dispatch) and finally reduces the state with `finish`; the
    /// per-chunk reductions are returned in chunk order.
    ///
    /// Blocks until every dispatched chunk completes — the property the
    /// borrowed-data erasure below rests on.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic after all chunks have settled, and
    /// panics if `results` is shorter than `tasks` or a worker died without
    /// reporting.
    pub fn run_chunks<I, T, S, D>(
        &mut self,
        tasks: &[I],
        results: &mut [T],
        width: usize,
        init: &(impl Fn() -> S + Sync),
        f: &(impl Fn(&I, &mut S) -> T + Sync),
        finish: &(impl Fn(&mut S) -> D + Sync),
    ) -> Vec<D>
    where
        I: Sync,
        T: Send,
        S: Any + Send,
        D: Send,
    {
        assert!(
            results.len() >= tasks.len(),
            "result buffer shorter than task list"
        );
        assert!(width >= 1, "need at least one worker");
        if tasks.is_empty() {
            return Vec::new();
        }
        self.ensure(width);
        let chunk_len = tasks.len().div_ceil(width);
        let n_chunks = tasks.len().div_ceil(chunk_len);
        let (done_tx, done_rx) = bounded::<(usize, Result<D, Payload>)>(n_chunks);

        let mut sent = 0usize;
        for (idx, (chunk, slots)) in tasks
            .chunks(chunk_len)
            .zip(results.chunks_mut(chunk_len))
            .enumerate()
        {
            let tx = done_tx.clone();
            let task: Box<dyn FnOnce(&mut WorkerScratch) + Send + '_> =
                Box::new(move |scratch: &mut WorkerScratch| {
                    // Catch inside the task so the done message is sent on
                    // every path — the caller's blocking collect below must
                    // never deadlock on a panicking chunk.
                    let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        let state = scratch.get_or_insert_with(init);
                        for (task, slot) in chunk.iter().zip(slots.iter_mut()) {
                            *slot = f(task, state);
                        }
                        finish(state)
                    }));
                    let _ = tx.send((idx, out));
                });
            // SAFETY: the boxed closure borrows `tasks`, `results`, `init`,
            // `f`, `finish` and the local `done_tx` clones, none of which
            // are `'static`. Erasing the lifetime is sound because this
            // function does not return until every closure that was
            // successfully sent has finished running:
            //
            // * each closure moves a `done_tx` clone and sends on it as its
            //   final action (the send is unconditionally reached — the
            //   body is wrapped in `catch_unwind`, and dropping the closure
            //   unexecuted also drops the sender);
            // * the collect loop below blocks until it has received `sent`
            //   messages or the done channel disconnects, and the channel
            //   can only disconnect after every outstanding clone of
            //   `done_tx` is dropped — i.e. after every dispatched closure
            //   has either run to completion or been destroyed;
            // * closure destruction cannot touch the borrowed data either:
            //   the captures are shared references and the sender, whose
            //   drops never dereference the borrows.
            //
            // Hence no worker can observe the borrowed stack frame after
            // `run_chunks` returns, which is exactly the guarantee
            // `std::thread::scope` provides by joining.
            let task: PoolTask = unsafe {
                std::mem::transmute::<
                    Box<dyn FnOnce(&mut WorkerScratch) + Send + '_>,
                    Box<dyn FnOnce(&mut WorkerScratch) + Send + 'static>,
                >(task)
            };
            if self.workers[idx]
                .tasks
                .as_ref()
                .is_some_and(|t| t.send(task).is_ok())
            {
                sent += 1;
            }
        }
        drop(done_tx);

        let mut deltas: Vec<Option<D>> = std::iter::repeat_with(|| None).take(n_chunks).collect();
        let mut panic_payload: Option<Payload> = None;
        let mut received = 0usize;
        while received < sent {
            match done_rx.recv() {
                Ok((idx, Ok(d))) => {
                    deltas[idx] = Some(d);
                    received += 1;
                }
                Ok((_, Err(p))) => {
                    panic_payload.get_or_insert(p);
                    received += 1;
                }
                // Disconnected: every remaining sender clone was dropped,
                // so no closure still borrows our frame. Fall through to
                // the death diagnostics below.
                Err(_) => break,
            }
        }
        if let Some(p) = panic_payload {
            std::panic::resume_unwind(p);
        }
        assert!(
            sent == n_chunks && received == sent,
            "prediction worker died mid-dispatch"
        );
        deltas
            .into_iter()
            .map(|d| d.expect("every chunk reported a reduction"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the task senders unparks every worker loop into its exit
        // path; join afterwards so no thread outlives the pool.
        for w in &mut self.workers {
            w.tasks.take();
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_land_by_task_index() {
        let mut pool = WorkerPool::new();
        let tasks: Vec<usize> = (0..100).collect();
        let mut results = vec![0usize; tasks.len()];
        for width in [1, 2, 3, 7] {
            let deltas = pool.run_chunks(
                &tasks,
                &mut results,
                width,
                &|| (),
                &|&t, _: &mut ()| t * 10,
                &|_| (),
            );
            assert_eq!(
                deltas.len(),
                tasks.len().div_ceil(tasks.len().div_ceil(width))
            );
            for (i, &r) in results.iter().enumerate() {
                assert_eq!(r, i * 10, "width {width}");
            }
        }
    }

    #[test]
    fn scratch_persists_across_dispatches() {
        let mut pool = WorkerPool::new();
        let tasks = [0usize; 8];
        let mut results = [0usize; 8];
        // Each dispatch increments the worker-persistent counter once per
        // processed task; the second dispatch must see the first's count.
        let totals: Vec<usize> = (0..2)
            .flat_map(|_| {
                pool.run_chunks(
                    &tasks,
                    &mut results,
                    2,
                    &|| 0usize,
                    &|_, seen: &mut usize| {
                        *seen += 1;
                        *seen
                    },
                    &|seen| *seen,
                )
            })
            .collect();
        // 2 workers × 4 tasks per dispatch: counts 4,4 then 8,8.
        assert_eq!(totals, vec![4, 4, 8, 8]);
    }

    #[test]
    fn chunk_mapping_is_contiguous_and_deterministic() {
        let mut pool = WorkerPool::new();
        let tasks: Vec<usize> = (0..10).collect();
        let mut results = vec![String::new(); tasks.len()];
        // Workers tag results with their thread name: chunk i must run on
        // corp-predict-i, tasks in ascending contiguous runs.
        pool.run_chunks(
            &tasks,
            &mut results,
            3,
            &|| (),
            &|_, _: &mut ()| std::thread::current().name().unwrap_or("?").to_string(),
            &|_| (),
        );
        // ceil(10/3) = 4 -> chunks [0..4), [4..8), [8..10).
        for (i, r) in results.iter().enumerate() {
            let expect = format!("corp-predict-{}", i / 4);
            assert_eq!(*r, expect, "task {i}");
        }
    }

    #[test]
    fn finish_reductions_come_back_in_chunk_order() {
        let mut pool = WorkerPool::new();
        let tasks: Vec<usize> = (0..9).collect();
        let mut results = vec![0usize; tasks.len()];
        let deltas = pool.run_chunks(
            &tasks,
            &mut results,
            3,
            &|| Vec::<usize>::new(),
            &|&t, acc: &mut Vec<usize>| {
                acc.push(t);
                t
            },
            &|acc| std::mem::take(acc).first().copied().unwrap_or(usize::MAX),
        );
        assert_eq!(deltas, vec![0, 3, 6], "first task of each chunk, in order");
    }

    #[test]
    fn worker_panic_propagates_after_all_chunks_settle() {
        let mut pool = WorkerPool::new();
        let tasks: Vec<usize> = (0..8).collect();
        let survived = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut results = vec![0usize; tasks.len()];
            pool.run_chunks(
                &tasks,
                &mut results,
                4,
                &|| (),
                &|&t, _: &mut ()| {
                    if t == 2 {
                        panic!("boom on task {t}");
                    }
                    survived.fetch_add(1, Ordering::SeqCst);
                    t
                },
                &|_| (),
            );
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        // The pool survives the panic and keeps serving.
        let mut results = vec![0usize; 4];
        pool.run_chunks(
            &tasks[..4],
            &mut results,
            2,
            &|| (),
            &|&t, _: &mut ()| t + 1,
            &|_| (),
        );
        assert_eq!(results, vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_task_list_is_a_no_op() {
        let mut pool = WorkerPool::new();
        let mut results: Vec<usize> = Vec::new();
        let deltas = pool.run_chunks(
            &Vec::<usize>::new(),
            &mut results,
            4,
            &|| (),
            &|&t, _: &mut ()| t,
            &|_| (),
        );
        assert!(deltas.is_empty());
        assert_eq!(pool.width(), 0, "no workers spawned for nothing");
    }

    #[test]
    fn pool_never_shrinks_but_grows_on_demand() {
        let mut pool = WorkerPool::new();
        pool.ensure(2);
        assert_eq!(pool.width(), 2);
        pool.ensure(1);
        assert_eq!(pool.width(), 2, "warm scratch is kept");
        pool.ensure(5);
        assert_eq!(pool.width(), 5);
    }

    #[test]
    fn typed_scratch_slots_are_independent() {
        let mut s = WorkerScratch::new();
        *s.get_or_insert_with(|| 0u64) += 7;
        s.get_or_insert_with(Vec::<f64>::new).push(1.5);
        assert_eq!(*s.get_or_insert_with(|| 0u64), 7);
        assert_eq!(s.get_or_insert_with(Vec::<f64>::new).len(), 1);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
