//! Knobs describing how much chaos to generate.

use serde::{Deserialize, Serialize};

/// Expected fault counts over a run, scaled into a concrete schedule by
/// [`generate`](crate::generate).
///
/// Counts are *expectations across the whole fleet over the horizon*, not
/// per-VM rates: `expected_crashes = 6.0` means about six crash windows
/// will be drawn regardless of fleet size, so sweeps stay comparable
/// across environments. Fractional parts are resolved by one seeded coin
/// flip, keeping the expansion deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed controlling every draw in the schedule expansion.
    pub seed: u64,
    /// Number of slots the schedule spans; events land in `[1, horizon)`.
    pub horizon_slots: u64,
    /// Expected VM crash windows over the horizon.
    pub expected_crashes: f64,
    /// Inclusive range of crash-window lengths in slots.
    pub crash_duration: (u64, u64),
    /// Expected straggler (degradation) windows over the horizon.
    pub expected_degradations: f64,
    /// Inclusive range of effective-capacity multipliers for stragglers.
    pub degrade_factor: (f64, f64),
    /// Inclusive range of degradation-window lengths in slots.
    pub degrade_duration: (u64, u64),
    /// Expected poisoned (VM, slot) monitoring views over the horizon.
    pub expected_poisons: f64,
    /// Fraction of poisons that inject NaN; the rest inject spikes.
    pub nan_fraction: f64,
    /// Multiplier used by spike poisons (`(|v| + 1) * spike_scale`).
    pub spike_scale: f64,
    /// Expected shard-worker kills over the horizon.
    pub expected_shard_kills: f64,
    /// Expected dropped provision requests over the horizon.
    pub expected_request_drops: f64,
    /// Expected delayed shard replies over the horizon.
    pub expected_reply_delays: f64,
}

impl FaultConfig {
    /// The default chaos scenario at a given `intensity` (`0.0` = no
    /// faults, `1.0` = the baseline mix, `2.0` = twice as hostile). All
    /// expected counts scale linearly with intensity; window lengths and
    /// magnitudes stay fixed so sweeps vary *how often*, not *how bad*.
    pub fn scenario(seed: u64, intensity: f64) -> Self {
        let intensity = intensity.max(0.0);
        Self {
            seed,
            horizon_slots: 400,
            expected_crashes: 6.0 * intensity,
            crash_duration: (20, 60),
            expected_degradations: 8.0 * intensity,
            degrade_factor: (0.3, 0.8),
            degrade_duration: (15, 45),
            expected_poisons: 30.0 * intensity,
            nan_fraction: 0.5,
            spike_scale: 50.0,
            expected_shard_kills: 4.0 * intensity,
            expected_request_drops: 6.0 * intensity,
            expected_reply_delays: 6.0 * intensity,
        }
    }

    /// A scenario with every expected count at zero:
    /// [`generate`](crate::schedule::generate) expands it to an empty
    /// schedule.
    pub fn disabled(seed: u64) -> Self {
        Self::scenario(seed, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_scales_counts_not_magnitudes() {
        let one = FaultConfig::scenario(7, 1.0);
        let two = FaultConfig::scenario(7, 2.0);
        assert_eq!(two.expected_crashes, 2.0 * one.expected_crashes);
        assert_eq!(two.crash_duration, one.crash_duration);
        assert_eq!(two.spike_scale, one.spike_scale);
        let off = FaultConfig::disabled(7);
        assert_eq!(off.expected_crashes, 0.0);
        assert_eq!(off.expected_reply_delays, 0.0);
    }
}
