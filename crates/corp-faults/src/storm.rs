//! Seeded arrival-storm plans: deterministic bursts of demand.
//!
//! Control-plane chaos ([`crate::ControlFaultPlan`]) breaks the *supply*
//! side of the serving path; a resilience experiment also needs the
//! *demand* side to misbehave. A [`StormPlan`] is a set of
//! non-overlapping slot windows inside which arrival times are compressed
//! toward the window start — many jobs that would have trickled in over
//! `len` slots all land within `len / factor` slots, the classic
//! thundering-herd shape that fills admission queues and trips brownout
//! ladders.
//!
//! Like every other schedule in this crate, a plan is pure data expanded
//! from a seed: the same [`StormConfig`] always yields the same windows,
//! and [`StormPlan::compress`] is a pure, monotone slot mapping — applying
//! it to an arrival-ordered trace keeps the trace arrival-ordered, which
//! the serve daemon's lazy arrival feed relies on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Knobs describing how stormy a run should be.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StormConfig {
    /// Seed controlling every draw in the expansion.
    pub seed: u64,
    /// Number of slots the plan spans; windows land in `[0, horizon)`.
    pub horizon_slots: u64,
    /// Number of storm windows to draw (overlapping candidates are
    /// skipped, so the realized count may be lower).
    pub bursts: usize,
    /// Inclusive range of window lengths in slots.
    pub burst_len: (u64, u64),
    /// Arrival-time compression inside a window (≥ 1): a factor of 4
    /// packs a window's arrivals into the first quarter of the window.
    pub compression: u64,
}

impl StormConfig {
    /// The default storm mix over `horizon_slots`: three 8–16 slot
    /// windows, arrivals packed 4× tighter.
    pub fn scenario(seed: u64, horizon_slots: u64) -> Self {
        StormConfig {
            seed,
            horizon_slots,
            bursts: 3,
            burst_len: (8, 16),
            compression: 4,
        }
    }
}

/// One storm window: arrivals in `[start, start + len)` are compressed
/// toward `start` by `factor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StormWindow {
    /// First slot of the window.
    pub start: u64,
    /// Window length in slots.
    pub len: u64,
    /// Compression factor (≥ 1).
    pub factor: u64,
}

/// A fully expanded storm plan: sorted, non-overlapping windows.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StormPlan {
    /// Start-ordered, pairwise disjoint windows.
    pub windows: Vec<StormWindow>,
}

impl StormPlan {
    /// Expands `config` into a concrete plan. Pure function of the config:
    /// identical configs yield identical windows.
    pub fn generate(config: &StormConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let horizon = config.horizon_slots.max(1);
        let factor = config.compression.max(1);
        let (lo, hi) = (
            config.burst_len.0.min(config.burst_len.1),
            config.burst_len.0.max(config.burst_len.1),
        );
        let mut windows: Vec<StormWindow> = Vec::new();
        for _ in 0..config.bursts {
            let len = rng.gen_range(lo..=hi).max(1);
            let start = rng.gen_range(0..horizon);
            let stop = start.saturating_add(len);
            if windows
                .iter()
                .any(|w| start < w.start + w.len && w.start < stop)
            {
                continue;
            }
            windows.push(StormWindow { start, len, factor });
        }
        windows.sort_by_key(|w| w.start);
        StormPlan { windows }
    }

    /// Maps one arrival slot through the plan. Inside a window the offset
    /// from the window start is divided by the window's factor; outside,
    /// slots pass through unchanged. The mapping is monotone
    /// non-decreasing, so sorted arrival sequences stay sorted.
    pub fn compress(&self, slot: u64) -> u64 {
        for w in &self.windows {
            if slot >= w.start && slot < w.start + w.len {
                return w.start + (slot - w.start) / w.factor.max(1);
            }
        }
        slot
    }

    /// True when no storm is scheduled.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_disjoint() {
        let config = StormConfig::scenario(11, 100);
        let a = StormPlan::generate(&config);
        let b = StormPlan::generate(&config);
        assert_eq!(a, b, "same config must expand to the same plan");
        assert!(!a.is_empty());
        for pair in a.windows.windows(2) {
            assert!(
                pair[0].start + pair[0].len <= pair[1].start,
                "windows overlap: {pair:?}"
            );
        }
    }

    #[test]
    fn compression_is_monotone_and_identity_outside_windows() {
        let plan = StormPlan {
            windows: vec![StormWindow {
                start: 10,
                len: 8,
                factor: 4,
            }],
        };
        assert_eq!(plan.compress(9), 9);
        assert_eq!(plan.compress(10), 10);
        assert_eq!(plan.compress(13), 10, "offset 3 / factor 4 = 0");
        assert_eq!(plan.compress(17), 11, "offset 7 / factor 4 = 1");
        assert_eq!(plan.compress(18), 18, "past the window: untouched");
        let mut prev = 0;
        for slot in 0..40 {
            let mapped = plan.compress(slot);
            assert!(mapped >= prev, "mapping must be monotone at slot {slot}");
            prev = mapped;
        }
    }

    #[test]
    fn zero_factor_is_clamped() {
        let plan = StormPlan {
            windows: vec![StormWindow {
                start: 0,
                len: 4,
                factor: 0,
            }],
        };
        assert_eq!(plan.compress(3), 3, "factor clamps to 1 (identity)");
    }
}
