//! Engine-facing fault events and the sorted timeline that carries them.

use serde::{Deserialize, Serialize};

/// How a poisoned monitoring sample is corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PoisonKind {
    /// The sample becomes NaN — the classic broken-exporter signal.
    Nan,
    /// The sample is replaced by `(|v| + 1) * scale` — a finite but
    /// absurd spike that stresses robustness without tripping NaN guards.
    Spike(f64),
}

impl PoisonKind {
    /// The corrupted value a poisoned sample reads as.
    pub fn corrupt(&self, value: f64) -> f64 {
        match *self {
            PoisonKind::Nan => f64::NAN,
            PoisonKind::Spike(scale) => (value.abs() + 1.0) * scale,
        }
    }
}

/// One fault taking effect at a scheduled slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The VM goes down: capacity leaves the fleet and its running jobs
    /// are killed and re-enqueued.
    VmCrash {
        /// Index of the crashing VM.
        vm: usize,
    },
    /// The VM rejoins the fleet with its full nominal capacity.
    VmRecover {
        /// Index of the recovering VM.
        vm: usize,
    },
    /// The VM becomes a straggler delivering only `factor` of its
    /// nominal capacity (commitments are honored; jobs throttle).
    VmDegrade {
        /// Index of the degraded VM.
        vm: usize,
        /// Effective-capacity multiplier in `(0, 1)`.
        factor: f64,
    },
    /// The VM's effective capacity returns to nominal.
    VmRestore {
        /// Index of the restored VM.
        vm: usize,
    },
    /// For this slot only, the monitoring tails (per-job demand/unused and
    /// the VM unused series) the provisioner sees for this VM are
    /// corrupted. Ground truth is untouched.
    PoisonViews {
        /// Index of the VM whose views are poisoned.
        vm: usize,
        /// How the tail samples are corrupted.
        kind: PoisonKind,
    },
}

/// A [`FaultEvent`] bound to the slot where it fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedFault {
    /// Slot at which the event takes effect (applied before arrivals).
    pub slot: u64,
    /// The fault itself.
    pub event: FaultEvent,
}

/// A slot-sorted sequence of faults, consumed front-to-back by the engine.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultTimeline {
    events: Vec<TimedFault>,
}

impl FaultTimeline {
    /// Builds a timeline, stably sorting events by slot (generation order
    /// breaks ties, keeping replay deterministic).
    pub fn new(mut events: Vec<TimedFault>) -> Self {
        events.sort_by_key(|e| e.slot);
        Self { events }
    }

    /// The sorted events.
    pub fn events(&self) -> &[TimedFault] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_sorts_stably_by_slot() {
        let t = FaultTimeline::new(vec![
            TimedFault {
                slot: 5,
                event: FaultEvent::VmCrash { vm: 1 },
            },
            TimedFault {
                slot: 2,
                event: FaultEvent::VmRecover { vm: 0 },
            },
            TimedFault {
                slot: 5,
                event: FaultEvent::VmRestore { vm: 2 },
            },
        ]);
        let slots: Vec<u64> = t.events().iter().map(|e| e.slot).collect();
        assert_eq!(slots, vec![2, 5, 5]);
        // Ties preserve insertion order.
        assert_eq!(t.events()[1].event, FaultEvent::VmCrash { vm: 1 });
        assert_eq!(t.events()[2].event, FaultEvent::VmRestore { vm: 2 });
    }

    #[test]
    fn poison_kinds_corrupt_as_documented() {
        assert!(PoisonKind::Nan.corrupt(3.0).is_nan());
        let spiked = PoisonKind::Spike(50.0).corrupt(-2.0);
        assert!(spiked.is_finite());
        assert_eq!(spiked, 150.0);
    }
}
