//! Control-plane chaos: the schedule of worker kills, dropped requests,
//! and delayed replies consumed by the `corp-cluster` shard supervisor.

use serde::{Deserialize, Serialize};

/// A (slot, shard) coordinate in the control-plane fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SlotShard {
    /// Slot at which the fault fires.
    pub slot: u64,
    /// Shard worker it targets.
    pub shard: usize,
}

/// Scheduled control-plane faults, each a sorted, deduplicated list of
/// (slot, shard) coordinates the supervisor looks up by binary search.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ControlFaultPlan {
    /// The worker thread exits at the start of this slot, as if crashed.
    pub kills: Vec<SlotShard>,
    /// The provision request to this shard is lost; the coordinator
    /// schedules the shard inline.
    pub drop_requests: Vec<SlotShard>,
    /// The shard's reply arrives after the slot deadline; the coordinator
    /// schedules inline and discards the stale reply when it surfaces.
    pub delay_replies: Vec<SlotShard>,
}

impl ControlFaultPlan {
    /// Builds a plan, sorting and deduplicating each list.
    pub fn new(
        mut kills: Vec<SlotShard>,
        mut drop_requests: Vec<SlotShard>,
        mut delay_replies: Vec<SlotShard>,
    ) -> Self {
        for list in [&mut kills, &mut drop_requests, &mut delay_replies] {
            list.sort();
            list.dedup();
        }
        Self {
            kills,
            drop_requests,
            delay_replies,
        }
    }

    fn scheduled(list: &[SlotShard], slot: u64, shard: usize) -> bool {
        list.binary_search(&SlotShard { slot, shard }).is_ok()
    }

    /// True when this shard's worker is scheduled to die at `slot`.
    pub fn kill_scheduled(&self, slot: u64, shard: usize) -> bool {
        Self::scheduled(&self.kills, slot, shard)
    }

    /// True when the provision request to this shard is lost at `slot`.
    pub fn drop_scheduled(&self, slot: u64, shard: usize) -> bool {
        Self::scheduled(&self.drop_requests, slot, shard)
    }

    /// True when this shard's reply misses the slot deadline at `slot`.
    pub fn delay_scheduled(&self, slot: u64, shard: usize) -> bool {
        Self::scheduled(&self.delay_replies, slot, shard)
    }

    /// True when no control-plane fault is scheduled at all.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.drop_requests.is_empty() && self.delay_replies.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_find_exactly_the_scheduled_coordinates() {
        let plan = ControlFaultPlan::new(
            vec![
                SlotShard { slot: 9, shard: 1 },
                SlotShard { slot: 3, shard: 0 },
                SlotShard { slot: 3, shard: 0 },
            ],
            vec![SlotShard { slot: 4, shard: 2 }],
            vec![],
        );
        assert_eq!(plan.kills.len(), 2, "duplicates removed");
        assert!(plan.kill_scheduled(3, 0));
        assert!(plan.kill_scheduled(9, 1));
        assert!(!plan.kill_scheduled(3, 1));
        assert!(plan.drop_scheduled(4, 2));
        assert!(!plan.delay_scheduled(4, 2));
        assert!(!plan.is_empty());
        assert!(ControlFaultPlan::default().is_empty());
    }
}
