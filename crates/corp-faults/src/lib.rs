//! Seeded, fully deterministic fault schedules for the CORP reproduction.
//!
//! Availability claims are meaningless on a perfectly healthy fleet: the
//! paper's conservatism machinery (CI lower bound, the Eq. 21 preemption
//! gate) earns its keep exactly when predictions are wrong and machines
//! misbehave. This crate generates *pre-computed* fault schedules from a
//! seed so chaos runs replay byte-identically — the schedule is data, not
//! runtime randomness, which keeps every determinism test meaningful under
//! failure injection.
//!
//! Fault taxonomy:
//!
//! - **VM crash/recovery windows** ([`FaultEvent::VmCrash`] /
//!   [`FaultEvent::VmRecover`]): capacity leaves and rejoins the fleet;
//!   running jobs on the crashed VM are killed and re-enqueued by the
//!   engine.
//! - **Capacity degradation** ([`FaultEvent::VmDegrade`] /
//!   [`FaultEvent::VmRestore`]): a straggler VM delivers only a fraction
//!   of its nominal capacity, throttling the jobs it hosts without
//!   changing commitment arithmetic.
//! - **Predictor poisoning** ([`FaultEvent::PoisonViews`]): the monitoring
//!   tails a provisioner sees for one VM on one slot are corrupted with
//!   NaN or a multiplicative spike; ground truth is untouched.
//! - **Control-plane chaos** ([`ControlFaultPlan`]): scheduled shard-worker
//!   kills, provision-request drops, and reply delays consumed by the
//!   `corp-cluster` supervisor.
//! - **Arrival storms** ([`StormPlan`]): demand-side chaos — monotone slot
//!   compression windows that pack arrivals into bursts, consumed by the
//!   `corp-serve` resilience experiment.
//!
//! [`generate`] expands a [`FaultConfig`] (expected event counts scaled by
//! an intensity knob) into a [`FaultSchedule`]; intensity `0.0` yields an
//! empty schedule, and a fixed seed always yields the same bytes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod control;
mod events;
mod schedule;
mod storm;

pub use config::FaultConfig;
pub use control::{ControlFaultPlan, SlotShard};
pub use events::{FaultEvent, FaultTimeline, PoisonKind, TimedFault};
pub use schedule::{generate, FaultSchedule};
pub use storm::{StormConfig, StormPlan, StormWindow};
