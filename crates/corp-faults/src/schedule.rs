//! Deterministic expansion of a [`FaultConfig`] into a concrete schedule.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{
    ControlFaultPlan, FaultConfig, FaultEvent, FaultTimeline, PoisonKind, SlotShard, TimedFault,
};

/// A fully expanded fault schedule: the engine-facing timeline plus the
/// control-plane chaos plan. Pure data — replaying it is byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// VM-level events consumed by the simulation engine.
    pub timeline: FaultTimeline,
    /// Shard-level chaos consumed by the control-plane supervisor.
    pub control: ControlFaultPlan,
}

impl FaultSchedule {
    /// True when nothing at all is scheduled.
    pub fn is_empty(&self) -> bool {
        self.timeline.is_empty() && self.control.is_empty()
    }
}

/// Resolves a fractional expected count into a concrete one with a single
/// seeded coin flip (always drawn, so the rng stream shape is stable).
fn draw_count(rng: &mut StdRng, expected: f64) -> usize {
    let expected = expected.max(0.0);
    let base = expected.floor() as usize;
    let fract = (expected - base as f64).clamp(0.0, 1.0);
    base + usize::from(rng.gen_bool(fract))
}

/// Draws `(start, duration)` windows on random VMs, skipping candidates
/// that overlap an existing window on the same VM, and emits the paired
/// begin/end events. The end event is omitted when the window runs past
/// the horizon (the fault is permanent for that run).
#[allow(clippy::too_many_arguments)]
fn draw_windows(
    rng: &mut StdRng,
    events: &mut Vec<TimedFault>,
    busy: &mut [Vec<(u64, u64)>],
    count: usize,
    horizon: u64,
    duration: (u64, u64),
    begin: impl Fn(&mut StdRng, usize) -> FaultEvent,
    end: impl Fn(usize) -> FaultEvent,
) {
    let num_vms = busy.len();
    for _ in 0..count {
        let vm = rng.gen_range(0..num_vms);
        let dur = rng
            .gen_range(duration.0.min(duration.1)..=duration.0.max(duration.1))
            .max(1);
        let start = rng.gen_range(1..horizon);
        let stop = start.saturating_add(dur);
        let event = begin(rng, vm);
        if busy[vm].iter().any(|&(s, e)| start <= e && s <= stop) {
            continue;
        }
        busy[vm].push((start, stop));
        events.push(TimedFault { slot: start, event });
        if stop < horizon {
            events.push(TimedFault {
                slot: stop,
                event: end(vm),
            });
        }
    }
}

fn draw_coords(rng: &mut StdRng, count: usize, horizon: u64, num_shards: usize) -> Vec<SlotShard> {
    (0..count)
        .map(|_| SlotShard {
            slot: rng.gen_range(1..horizon),
            shard: rng.gen_range(0..num_shards),
        })
        .collect()
}

/// Expands `config` into a concrete [`FaultSchedule`] for a fleet of
/// `num_vms` VMs managed by `num_shards` scheduler shards. The expansion
/// is a pure function of `(config, num_vms, num_shards)`; a zero-intensity
/// config yields an empty schedule.
pub fn generate(config: &FaultConfig, num_vms: usize, num_shards: usize) -> FaultSchedule {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let horizon = config.horizon_slots;
    let mut events = Vec::new();

    if num_vms > 0 && horizon > 1 {
        let crashes = draw_count(&mut rng, config.expected_crashes);
        let mut crash_busy = vec![Vec::new(); num_vms];
        draw_windows(
            &mut rng,
            &mut events,
            &mut crash_busy,
            crashes,
            horizon,
            config.crash_duration,
            |_, vm| FaultEvent::VmCrash { vm },
            |vm| FaultEvent::VmRecover { vm },
        );

        let degradations = draw_count(&mut rng, config.expected_degradations);
        let (f_lo, f_hi) = config.degrade_factor;
        let mut degrade_busy = vec![Vec::new(); num_vms];
        draw_windows(
            &mut rng,
            &mut events,
            &mut degrade_busy,
            degradations,
            horizon,
            config.degrade_duration,
            |rng, vm| FaultEvent::VmDegrade {
                vm,
                factor: rng
                    .gen_range(f_lo.min(f_hi)..=f_lo.max(f_hi))
                    .clamp(0.05, 1.0),
            },
            |vm| FaultEvent::VmRestore { vm },
        );

        let poisons = draw_count(&mut rng, config.expected_poisons);
        for _ in 0..poisons {
            let slot = rng.gen_range(1..horizon);
            let vm = rng.gen_range(0..num_vms);
            let kind = if rng.gen_bool(config.nan_fraction.clamp(0.0, 1.0)) {
                PoisonKind::Nan
            } else {
                PoisonKind::Spike(config.spike_scale)
            };
            events.push(TimedFault {
                slot,
                event: FaultEvent::PoisonViews { vm, kind },
            });
        }
    }

    let control = if num_shards > 0 && horizon > 1 {
        let kills = draw_count(&mut rng, config.expected_shard_kills);
        let drops = draw_count(&mut rng, config.expected_request_drops);
        let delays = draw_count(&mut rng, config.expected_reply_delays);
        ControlFaultPlan::new(
            draw_coords(&mut rng, kills, horizon, num_shards),
            draw_coords(&mut rng, drops, horizon, num_shards),
            draw_coords(&mut rng, delays, horizon, num_shards),
        )
    } else {
        ControlFaultPlan::default()
    };

    FaultSchedule {
        timeline: FaultTimeline::new(events),
        control,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_intensity_expands_to_an_empty_schedule() {
        let schedule = generate(&FaultConfig::disabled(99), 32, 4);
        assert!(schedule.is_empty());
    }

    #[test]
    fn same_seed_same_schedule() {
        let config = FaultConfig::scenario(0xFA11, 1.5);
        let a = generate(&config, 16, 4);
        let b = generate(&config, 16, 4);
        assert_eq!(a, b);
        assert_eq!(serde::json::to_string(&a), serde::json::to_string(&b));
    }

    #[test]
    fn events_respect_fleet_and_horizon_bounds() {
        let config = FaultConfig::scenario(3, 2.0);
        let schedule = generate(&config, 8, 2);
        assert!(!schedule.is_empty());
        for e in schedule.timeline.events() {
            assert!(e.slot >= 1 && e.slot < config.horizon_slots);
            let vm = match e.event {
                FaultEvent::VmCrash { vm }
                | FaultEvent::VmRecover { vm }
                | FaultEvent::VmRestore { vm }
                | FaultEvent::VmDegrade { vm, .. }
                | FaultEvent::PoisonViews { vm, .. } => vm,
            };
            assert!(vm < 8);
            if let FaultEvent::VmDegrade { factor, .. } = e.event {
                assert!((0.05..=1.0).contains(&factor));
            }
        }
        for c in schedule
            .control
            .kills
            .iter()
            .chain(&schedule.control.drop_requests)
            .chain(&schedule.control.delay_replies)
        {
            assert!(c.slot >= 1 && c.slot < config.horizon_slots);
            assert!(c.shard < 2);
        }
    }

    #[test]
    fn crash_windows_never_overlap_on_one_vm() {
        let config = FaultConfig {
            expected_crashes: 40.0,
            ..FaultConfig::scenario(17, 1.0)
        };
        let schedule = generate(&config, 3, 1);
        let mut down = [false; 3];
        for e in schedule.timeline.events() {
            match e.event {
                FaultEvent::VmCrash { vm } => {
                    assert!(!down[vm], "vm {vm} crashed while already down");
                    down[vm] = true;
                }
                FaultEvent::VmRecover { vm } => {
                    assert!(down[vm], "vm {vm} recovered while up");
                    down[vm] = false;
                }
                _ => {}
            }
        }
    }
}
