//! Property tests for the fault-schedule expansion.
//!
//! The determinism contract generalized over the whole input space: for
//! *any* seed, intensity, fleet size, and shard count, expanding the same
//! config twice yields byte-identical schedules; every drawn event stays
//! inside the fleet and the horizon; and zero intensity always expands to
//! an empty schedule.

use corp_faults::{generate, FaultConfig, FaultEvent};
use proptest::prelude::*;

proptest! {
    #[test]
    fn schedules_are_byte_identical_for_a_fixed_seed(
        seed in 0u64..u64::MAX,
        intensity in 0.0f64..4.0,
        vms in 0usize..40,
        shards in 0usize..8,
    ) {
        let config = FaultConfig::scenario(seed, intensity);
        let a = generate(&config, vms, shards);
        let b = generate(&config, vms, shards);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(
            serde::json::to_string(&a),
            serde::json::to_string(&b),
            "serialized schedules differ for one seed"
        );
    }

    #[test]
    fn every_event_stays_in_bounds(
        seed in 0u64..u64::MAX,
        intensity in 0.0f64..4.0,
        vms in 1usize..40,
        shards in 1usize..8,
    ) {
        let config = FaultConfig::scenario(seed, intensity);
        let schedule = generate(&config, vms, shards);
        for e in schedule.timeline.events() {
            prop_assert!(e.slot >= 1 && e.slot < config.horizon_slots);
            let vm = match e.event {
                FaultEvent::VmCrash { vm }
                | FaultEvent::VmRecover { vm }
                | FaultEvent::VmRestore { vm }
                | FaultEvent::VmDegrade { vm, .. }
                | FaultEvent::PoisonViews { vm, .. } => vm,
            };
            prop_assert!(vm < vms, "event targets vm {} of {}", vm, vms);
            if let FaultEvent::VmDegrade { factor, .. } = e.event {
                prop_assert!((0.05..=1.0).contains(&factor));
            }
        }
        // Timeline is slot-sorted: the engine consumes it front-to-back.
        let slots: Vec<u64> = schedule.timeline.events().iter().map(|e| e.slot).collect();
        prop_assert!(slots.windows(2).all(|w| w[0] <= w[1]));
        for c in schedule
            .control
            .kills
            .iter()
            .chain(&schedule.control.drop_requests)
            .chain(&schedule.control.delay_replies)
        {
            prop_assert!(c.slot >= 1 && c.slot < config.horizon_slots);
            prop_assert!(c.shard < shards, "fault targets shard {} of {}", c.shard, shards);
        }
    }

    #[test]
    fn crash_and_degrade_windows_alternate_per_vm(
        seed in 0u64..u64::MAX,
        intensity in 0.5f64..6.0,
        vms in 1usize..8,
    ) {
        // Within one VM, begin/end events of each window kind must strictly
        // alternate — a VM never crashes while already down, never recovers
        // while up (and likewise for degradation windows).
        let config = FaultConfig::scenario(seed, intensity);
        let schedule = generate(&config, vms, 2);
        let mut down = vec![false; vms];
        let mut degraded = vec![false; vms];
        for e in schedule.timeline.events() {
            match e.event {
                FaultEvent::VmCrash { vm } => {
                    prop_assert!(!down[vm], "vm {} crashed while down", vm);
                    down[vm] = true;
                }
                FaultEvent::VmRecover { vm } => {
                    prop_assert!(down[vm], "vm {} recovered while up", vm);
                    down[vm] = false;
                }
                FaultEvent::VmDegrade { vm, .. } => {
                    prop_assert!(!degraded[vm], "vm {} degraded twice", vm);
                    degraded[vm] = true;
                }
                FaultEvent::VmRestore { vm } => {
                    prop_assert!(degraded[vm], "vm {} restored while nominal", vm);
                    degraded[vm] = false;
                }
                FaultEvent::PoisonViews { .. } => {}
            }
        }
    }

    #[test]
    fn zero_intensity_is_always_empty(
        seed in 0u64..u64::MAX,
        vms in 0usize..40,
        shards in 0usize..8,
    ) {
        let schedule = generate(&FaultConfig::disabled(seed), vms, shards);
        prop_assert!(schedule.is_empty());
        prop_assert_eq!(schedule.timeline.len(), 0);
        prop_assert!(schedule.control.is_empty());
    }
}
