//! Chaos soak: full end-to-end runs under escalating fault intensity.
//!
//! Every cell drives the real pipeline — fault-schedule expansion, the
//! supervised sharded control plane rebuilding killed workers, the engine
//! crashing and recovering VMs, poisoned monitoring views hitting the
//! predictors — and checks the graceful-degradation contract: no panics,
//! no lost jobs, no overcommit, no non-finite action reaching the engine,
//! and (at hostile intensities) nonzero recovery counters proving the
//! supervisor actually worked.
//!
//! These runs are deliberately heavy, so they are `#[ignore]`d from the
//! default test pass. Run them with:
//!
//! ```text
//! cargo test -p corp-faults --release -- --ignored soak
//! ```

use corp_cluster::{ProvisionerFactory, ShardConfig, ShardedProvisioner};
use corp_faults::{generate, FaultConfig};
use corp_sim::{Cluster, EnvironmentProfile, Simulation, SimulationOptions, SimulationReport};
use corp_trace::{JobSpec, WorkloadConfig, WorkloadGenerator};

const EPS: f64 = 1e-9;
const JOBS: usize = 160;
const SHARDS: usize = 3;

fn cluster() -> Cluster {
    Cluster::from_profile(EnvironmentProfile::palmetto_cluster().with_num_pms(8))
}

fn workload(num_jobs: usize, seed: u64) -> Vec<JobSpec> {
    WorkloadGenerator::new(
        WorkloadConfig {
            num_jobs,
            mean_interarrival_slots: 45.0 / num_jobs.max(1) as f64,
            demand_scale: 1.5,
            ..WorkloadConfig::default()
        },
        seed,
    )
    .generate()
}

/// Per-resource unused-series training data for CORP's pretraining, drawn
/// from a seed disjoint from every measured run.
fn histories() -> Vec<Vec<Vec<f64>>> {
    let jobs = workload(40, 0xC0B9);
    (0..corp_trace::NUM_RESOURCES)
        .map(|k| {
            jobs.iter()
                .map(|j| (0..j.duration_slots).map(|s| j.unused_at(s, k)).collect())
                .collect()
        })
        .collect()
}

fn factories_for(scheme: &str, seed: u64) -> Vec<ProvisionerFactory> {
    match scheme {
        "CORP" => {
            let mut config = corp_core::CorpConfig::fast();
            config.seed = seed;
            corp_core::corp_factories(&config, &histories(), SHARDS)
        }
        "RCCR" => corp_core::rccr_factories(0.9, seed, SHARDS),
        "CloudScale" => corp_core::cloudscale_factories(seed, SHARDS),
        _ => corp_core::dra_factories(seed, SHARDS),
    }
}

/// Runs one chaos cell end-to-end and checks the per-run contract.
fn soak_cell(scheme: &str, seed: u64, intensity: f64) -> SimulationReport {
    let cluster = cluster();
    let schedule = generate(
        &FaultConfig::scenario(seed, intensity),
        cluster.vms.len(),
        SHARDS,
    );
    let mut provisioner = ShardedProvisioner::with_factories(
        scheme,
        factories_for(scheme, seed),
        ShardConfig {
            fault_plan: Some(schedule.control),
            ..ShardConfig::default()
        },
    );
    let mut sim = Simulation::new(
        cluster,
        workload(JOBS, seed),
        SimulationOptions {
            measure_decision_time: false,
            ..Default::default()
        },
    )
    .with_fault_timeline(schedule.timeline);
    let report = sim.run(&mut provisioner);
    let label = format!("{scheme} seed={seed} intensity={intensity}");

    // Job conservation: every job ends exactly one way.
    assert_eq!(
        report.completed + report.rejected + report.unfinished,
        JOBS,
        "{label}: jobs lost or duplicated: {report:?}"
    );
    assert!(
        report.completed > 0,
        "{label}: nothing completed: {report:?}"
    );
    // The supervisor's arbitration refuses non-finite proposals before
    // they reach the engine, poisoned views or not.
    assert_eq!(
        report.nonfinite_actions, 0,
        "{label}: non-finite action leaked through arbitration"
    );
    // The two-phase-commit ledger never overcommitted.
    let store = provisioner.store().expect("store exists after first slot");
    assert!(
        store.holds_invariants(EPS),
        "{label}: store invariant broken"
    );
    // Aggregate metrics stayed numbers.
    assert!(
        report.overall_utilization.is_finite() && report.slo_violation_rate.is_finite(),
        "{label}: non-finite report metric: {report:?}"
    );
    report
}

#[test]
#[ignore = "chaos soak: heavy end-to-end runs, see module docs"]
fn soak_all_schemes_survive_escalating_chaos() {
    let mut worker_kills = 0u64;
    let mut worker_restarts = 0u64;
    let mut inline_slots = 0u64;
    let mut vm_crashes = 0u64;
    let mut vm_recoveries = 0u64;
    for scheme in ["CORP", "RCCR", "CloudScale", "DRA"] {
        for seed in [1u64, 7, 0xFA17] {
            for intensity in [0.5, 1.0, 2.0, 4.0] {
                let report = soak_cell(scheme, seed, intensity);
                if let Some(cp) = &report.control_plane {
                    worker_kills += cp.worker_kills;
                    worker_restarts += cp.worker_restarts;
                    inline_slots += cp.inline_slots;
                }
                if let Some(f) = &report.faults {
                    vm_crashes += f.vm_crashes;
                    vm_recoveries += f.vm_recoveries;
                }
            }
        }
    }
    // The sweep as a whole must actually have exercised recovery: faults
    // fired, workers died, and the supervisor rebuilt them.
    assert!(vm_crashes > 0, "no VM ever crashed across the sweep");
    assert!(vm_recoveries > 0, "no VM ever recovered across the sweep");
    assert!(worker_kills > 0, "no shard worker was ever killed");
    assert!(
        worker_restarts > 0,
        "killed workers were never restarted ({worker_kills} kills)"
    );
    assert!(inline_slots > 0, "no slot was ever scheduled inline");
}

#[test]
#[ignore = "chaos soak: heavy end-to-end runs, see module docs"]
fn soak_chaos_replays_are_byte_identical() {
    // The whole point of schedule-as-data: one hostile cell replayed twice
    // produces the same report bytes, recoveries and all.
    let a = soak_cell("RCCR", 0xFA17, 2.0);
    let b = soak_cell("RCCR", 0xFA17, 2.0);
    assert_eq!(
        serde::json::to_string(&a),
        serde::json::to_string(&b),
        "chaos replay diverged"
    );
}
