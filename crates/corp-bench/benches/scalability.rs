//! Control-plane scalability: end-to-end simulation throughput of the CORP
//! pipeline behind a sharded scheduler (corp-cluster) as the shard count
//! grows 1 → 8. Complements the `scalability` experiment runner, which
//! reports committed-placement throughput and conflict rates on the full
//! 300-job workload; here Criterion measures the wall-clock of a smaller
//! cell so the sweep stays fast enough to iterate on.

use corp_bench::env::{run_cell_sharded, Environment, SchemeKind, SchemeParams};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_shard_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);
    let params = SchemeParams {
        fast_dnn: true,
        ..Default::default()
    };
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(&format!("corp_sharded_x{shards}"), |b| {
            b.iter(|| {
                let (report, _wall) = run_cell_sharded(
                    Environment::Cluster,
                    SchemeKind::Corp,
                    black_box(60),
                    &params,
                    shards,
                    false,
                );
                report.completed
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shard_sweep);
criterion_main!(benches);
