//! Hot-path microbenchmarks backing DESIGN.md §9's numbers:
//!
//! * DNN pretraining through the three kernel tiers — the legacy
//!   per-sample reference kernels, the fused per-sample kernels
//!   (bit-identical to the reference), and the blocked minibatch kernels
//!   (the throughput tier; the acceptance bar is >= 2x over per-sample).
//!   Epoch counts are pinned (patience can never trigger) so every tier
//!   does the same number of dataset passes.
//! * Best-fit placement over a large fleet — the incremental
//!   [`VolumeIndex`] against the linear Eq. 22 scan it replaces, under
//!   per-slot churn (each iteration updates one VM's pool, then answers
//!   one placement query, exactly the scheduler's steady-state rhythm).

use corp_cluster::PlacementStore;
use corp_core::{most_matched_vm, VolumeIndex};
use corp_dnn::{Activation, BatchScratch, Network, TrainConfig, Trainer};
use corp_sim::ResourceVector;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Synthetic unused-resource sliding windows: smooth bounded oscillation,
/// the shape the window predictor actually trains on.
fn pretrain_dataset(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let mut inputs = Vec::with_capacity(n);
    let mut targets = Vec::with_capacity(n);
    for i in 0..n {
        let x: Vec<f64> = (0..12)
            .map(|k| 0.5 + 0.4 * (((i * 13 + k * 7) as f64) * 0.37).sin())
            .collect();
        let y = x.iter().sum::<f64>() / 12.0;
        inputs.push(x);
        targets.push(vec![y]);
    }
    (inputs, targets)
}

/// Fixed-epoch training config (patience exceeds the epoch cap, so every
/// kernel tier runs exactly `max_epochs` passes).
fn pinned_epochs(reference_kernels: bool) -> TrainConfig {
    TrainConfig {
        max_epochs: 8,
        patience: 9,
        reference_kernels,
        ..TrainConfig::default()
    }
}

fn bench_dnn_pretrain(c: &mut Criterion) {
    let (inputs, targets) = pretrain_dataset(256);
    // The paper's predictor architecture: 12-sample window in, 4 hidden
    // layers of 50 units, scalar prediction out.
    let net = || {
        Network::new(
            &[12, 50, 50, 50, 50, 1],
            Activation::Sigmoid,
            Activation::Identity,
            7,
        )
    };
    let mut group = c.benchmark_group("dnn_pretrain");
    group.sample_size(20);
    group.bench_function("per_sample_reference", |b| {
        b.iter(|| {
            let mut n = net();
            Trainer::new(pinned_epochs(true))
                .train(&mut n, black_box(&inputs), &targets)
                .final_validation_mse
        })
    });
    group.bench_function("per_sample_fused", |b| {
        b.iter(|| {
            let mut n = net();
            Trainer::new(pinned_epochs(false))
                .train(&mut n, black_box(&inputs), &targets)
                .final_validation_mse
        })
    });
    // The throughput tier: wide batches keep >= 16 independent f64 lanes in
    // flight, hiding FMA latency the per-sample dot products are bound by.
    group.bench_function("minibatched_fused", |b| {
        b.iter(|| {
            let mut n = net();
            let mut scratch = BatchScratch::new();
            Trainer::new(TrainConfig {
                batch_size: 64,
                ..pinned_epochs(false)
            })
            .train_minibatched(&mut n, black_box(&inputs), &targets, &mut scratch)
            .final_validation_mse
        })
    });
    group.finish();
}

/// Deterministic churn value for VM `vm` at slot `step`, shaped like a
/// loaded fleet (CORP's target regime): 7 of 8 VMs are nearly full
/// (headroom components below 1), one in 8 has real room. Components are
/// quantized so exact volume ties — the index's tie-break case — occur.
fn churn_value(vm: usize, step: usize) -> ResourceVector {
    let q = |m: usize| ((vm * 37 + step * 53 + m) % 8) as f64 / 8.0;
    if vm % 8 == 0 {
        ResourceVector::new([1.0 + 7.0 * q(0), 1.0 + 7.0 * q(11), 1.0 + 7.0 * q(29)])
    } else {
        ResourceVector::new([q(0), q(11), q(29)])
    }
}

fn bench_best_fit(c: &mut Criterion) {
    const VMS: usize = 1024;
    let reference = ResourceVector::splat(8.0);
    let demand = ResourceVector::splat(1.0);
    let pools: Vec<ResourceVector> = (0..VMS).map(|vm| churn_value(vm, 0)).collect();
    let mut group = c.benchmark_group("best_fit_1024vms");
    group.bench_function("linear_scan", |b| {
        let mut pools = pools.clone();
        let mut step = 0usize;
        b.iter(|| {
            step = step.wrapping_add(1);
            let vm = step % VMS;
            pools[vm] = churn_value(vm, step);
            most_matched_vm(black_box(&pools), &demand, &reference)
        })
    });
    group.bench_function("volume_index", |b| {
        let mut pools = pools.clone();
        let mut idx = VolumeIndex::new(&pools, &reference);
        let mut step = 0usize;
        b.iter(|| {
            step = step.wrapping_add(1);
            let vm = step % VMS;
            pools[vm] = churn_value(vm, step);
            idx.update(vm, &pools[vm], &reference);
            idx.best_fit(black_box(&pools), &demand, &reference)
        })
    });
    group.finish();
}

/// Isolated kernel microbenches: one 50-unit layer at batch width 32, the
/// shapes the minibatch trainer actually runs, plus the sigmoid cost floor
/// (one pretrain run evaluates ~410k activations — that time is common to
/// every kernel tier and bounds the speedup batching can deliver).
fn bench_kernels(c: &mut Criterion) {
    use corp_dnn::Matrix;
    let mut group = c.benchmark_group("kernels");
    let xs: Vec<f64> = (0..410_000)
        .map(|i| (i as f64 * 0.001).sin() * 4.0)
        .collect();
    group.sample_size(10);
    group.bench_function("sigmoid_410k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in black_box(&xs) {
                acc += 1.0 / (1.0 + (-x).exp());
            }
            acc
        })
    });
    let w = Matrix::from_fn(50, 50, |r, c| ((r * 7 + c) as f64 * 0.01).sin());
    let x = Matrix::from_fn(50, 32, |r, c| ((r + c * 3) as f64 * 0.02).cos());
    let mut out = Matrix::zeros(50, 32);
    group.bench_function("matmul_fused_50x50x32", |b| {
        b.iter(|| w.matmul_fused_into(black_box(&x), &mut out, |_, acc| acc))
    });
    group.bench_function("matmul_transposed_50x50x32", |b| {
        b.iter(|| w.matmul_transposed_into(black_box(&x), &mut out))
    });
    let mut grad = Matrix::zeros(50, 50);
    group.bench_function("add_batch_outer_50x50x32", |b| {
        b.iter(|| grad.add_batch_outer(black_box(&x), black_box(&out)))
    });
    let mut vel = Matrix::zeros(50, 50);
    let mut wts = Matrix::from_fn(50, 50, |r, c| ((r + c) as f64 * 0.01).cos());
    group.bench_function("momentum_step_50x50", |b| {
        b.iter(|| wts.momentum_step_from(&mut vel, black_box(&grad), 0.5, 0.001))
    });
    group.finish();
}

/// Placement-store contention microbench backing DESIGN.md §15: one
/// coordinator slot's worth of commits (a `begin_slot` reset then `OPS`
/// round-robin claims) through each store shape. Capacities are huge so
/// admission always succeeds — the arms measure lock-acquisition and
/// bookkeeping cost, not conflict handling:
///
/// * `two_phase_per_op` — reserve then confirm, one lock pair per claim
///   (the pre-striping coordinator rhythm), at 1 and 16 stripes;
/// * `two_phase_batched` — one `reserve_batch` + one `confirm_batch`
///   round (`O(stripes)` lock acquisitions for the whole slot);
/// * `fast_commit_per_op` / `fast_commit_batched` — the optimistic
///   epoch fast path, fusing both phases into a single acquisition.
fn bench_store_contention(c: &mut Criterion) {
    const VMS: usize = 1024;
    const OPS: usize = 256;
    let caps = vec![ResourceVector::splat(1e9); VMS];
    let zeros = vec![ResourceVector::ZERO; VMS];
    let demand = ResourceVector::splat(1.0);
    let mut group = c.benchmark_group("store_1024vms");
    for (label, stripes) in [("stripes1", 1usize), ("stripes16", 16usize)] {
        let store = PlacementStore::with_stripes(caps.clone(), stripes);
        group.bench_function(&format!("two_phase_per_op_{label}"), |b| {
            b.iter(|| {
                store.begin_slot(&zeros);
                for op in 0..OPS {
                    let id = store
                        .reserve(0, black_box(op * 37 % VMS), demand)
                        .expect("uncontended reserve");
                    store.confirm(id).expect("open reservation");
                }
            })
        });
    }
    let store = PlacementStore::with_stripes(caps.clone(), 16);
    let requests: Vec<(usize, ResourceVector)> =
        (0..OPS).map(|op| (op * 37 % VMS, demand)).collect();
    group.bench_function("two_phase_batched_stripes16", |b| {
        b.iter(|| {
            store.begin_slot(&zeros);
            let ids: Vec<_> = store
                .reserve_batch(0, black_box(&requests))
                .into_iter()
                .map(|r| r.expect("uncontended reserve"))
                .collect();
            for r in store.confirm_batch(&ids) {
                r.expect("open reservation");
            }
        })
    });
    group.bench_function("fast_commit_per_op_stripes16", |b| {
        b.iter(|| {
            store.begin_slot(&zeros);
            for op in 0..OPS {
                store
                    .try_fast_commit(0, black_box(op * 37 % VMS), demand)
                    .expect("uncontended fast commit");
            }
        })
    });
    let claims: Vec<(usize, usize, ResourceVector)> =
        (0..OPS).map(|op| (0, op * 37 % VMS, demand)).collect();
    group.bench_function("fast_commit_batched_stripes16", |b| {
        b.iter(|| {
            store.begin_slot(&zeros);
            for r in store.fast_commit_batch(black_box(&claims)) {
                r.expect("uncontended fast commit");
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dnn_pretrain,
    bench_best_fit,
    bench_kernels,
    bench_store_contention
);
criterion_main!(benches);
