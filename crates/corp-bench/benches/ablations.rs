//! Ablation benches for the design choices DESIGN.md §6 calls out.
//!
//! Each bench runs one CORP variant on the standard 200-job cluster
//! workload; comparing their runtimes (and, via `corp-exp ablations`,
//! their metric outcomes) isolates the cost and benefit of every pipeline
//! stage: the HMM fluctuation correction, the confidence-interval lower
//! bound, complementary packing, and Eq. 22 volume placement.

use corp_bench::{historical_histories, Environment};
use corp_core::{CorpConfig, CorpProvisioner};
use corp_sim::{Simulation, SimulationOptions};
use criterion::{criterion_group, criterion_main, Criterion};

fn run_variant(tweak: impl Fn(&mut CorpConfig)) -> corp_sim::SimulationReport {
    let mut config = CorpConfig::fast();
    tweak(&mut config);
    let mut corp = CorpProvisioner::new(config);
    corp.pretrain(&historical_histories(Environment::Cluster, 40));
    let mut sim = Simulation::new(
        Environment::Cluster.cluster(),
        Environment::Cluster.workload(200, 207),
        SimulationOptions {
            measure_decision_time: false,
            ..Default::default()
        },
    );
    sim.run(&mut corp)
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    group.bench_function("full_corp", |b| b.iter(|| run_variant(|_| {})));
    group.bench_function("no_hmm_correction", |b| {
        b.iter(|| run_variant(|c| c.use_hmm_correction = false))
    });
    group.bench_function("no_confidence_interval", |b| {
        b.iter(|| run_variant(|c| c.use_confidence_interval = false))
    });
    group.bench_function("no_packing", |b| {
        b.iter(|| run_variant(|c| c.use_packing = false))
    });
    group.bench_function("random_placement", |b| {
        b.iter(|| run_variant(|c| c.use_volume_placement = false))
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
