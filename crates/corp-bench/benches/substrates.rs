//! Micro-benchmarks of the substrates CORP is built on: DNN passes, HMM
//! recursions, the FFT, packing, placement, and raw engine throughput.
//! These bound the per-decision costs that aggregate into the Fig. 10/14
//! overhead numbers.

use corp_core::{deviation_score, most_matched_vm, pack_complementary, PackableJob};
use corp_dnn::{Network, TrainConfig, UnusedResourcePredictor, WindowPredictorConfig};
use corp_hmm::{baum_welch, forward_scaled, viterbi, Hmm};
use corp_sim::{
    Cluster, EnvironmentProfile, ResourceVector, Simulation, SimulationOptions,
    StaticPeakProvisioner,
};
use corp_stats::{dominant_period, normal_quantile};
use corp_trace::{WorkloadConfig, WorkloadGenerator};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_dnn(c: &mut Criterion) {
    let mut group = c.benchmark_group("dnn");
    // The paper's architecture: 4 hidden layers of 50 units.
    let mut net = Network::paper_architecture(6, 50, 1, 1);
    let input = [0.4, 0.5, 0.45, 0.55, 0.5, 0.48];
    group.bench_function("forward_4x50", |b| {
        b.iter(|| net.forward(black_box(&input))[0])
    });
    let mut net2 = Network::paper_architecture(6, 50, 1, 2);
    group.bench_function("sgd_step_4x50", |b| {
        b.iter(|| net2.train_on(black_box(&input), &[0.5], 0.05, 0.5))
    });

    let histories: Vec<Vec<f64>> = (0..16)
        .map(|j| (0..40).map(|t| 2.0 + ((t + j) % 5) as f64 * 0.1).collect())
        .collect();
    group.bench_function("fit_predictor_small", |b| {
        b.iter(|| {
            let mut p = UnusedResourcePredictor::new(WindowPredictorConfig {
                window: 6,
                horizon: 6,
                units: 12,
                hidden_layers: 2,
                train: TrainConfig {
                    max_epochs: 10,
                    ..TrainConfig::default()
                },
                seed: 1,
            });
            p.fit(black_box(&histories))
        })
    });
    group.finish();
}

fn bench_hmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("hmm");
    let hmm = Hmm::paper_default();
    let obs: Vec<usize> = (0..256).map(|t| (t / 7) % 3).collect();
    group.bench_function("forward_256", |b| {
        b.iter(|| forward_scaled(&hmm, black_box(&obs)))
    });
    group.bench_function("viterbi_256", |b| b.iter(|| viterbi(&hmm, black_box(&obs))));
    group.bench_function("baum_welch_10_iters", |b| {
        b.iter(|| {
            let mut m = Hmm::near_uniform(3, 3, 5);
            baum_welch(&mut m, black_box(&obs), 10, 1e-9)
        })
    });
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats");
    let signal: Vec<f64> = (0..128)
        .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 16.0).sin())
        .collect();
    group.bench_function("dominant_period_128", |b| {
        b.iter(|| dominant_period(black_box(&signal), 0.35))
    });
    group.bench_function("normal_quantile", |b| {
        b.iter(|| normal_quantile(black_box(0.975)))
    });
    group.finish();
}

fn bench_packing_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("packing");
    let reference = ResourceVector::new([4.0, 16.0, 180.0]);
    let jobs: Vec<PackableJob> = (0..64)
        .map(|i| PackableJob {
            id: i,
            demand: match i % 3 {
                0 => ResourceVector::new([2.0, 1.0, 10.0]),
                1 => ResourceVector::new([0.5, 6.0, 10.0]),
                _ => ResourceVector::new([0.5, 1.0, 70.0]),
            },
        })
        .collect();
    group.bench_function("pack_complementary_64", |b| {
        b.iter(|| pack_complementary(black_box(&jobs), &reference))
    });
    group.bench_function("deviation_score", |b| {
        b.iter(|| deviation_score(black_box(&jobs[0].demand), black_box(&jobs[1].demand)))
    });
    let pools: Vec<ResourceVector> = (0..200)
        .map(|i| ResourceVector::splat(1.0 + (i % 7) as f64))
        .collect();
    let demand = ResourceVector::splat(3.0);
    group.bench_function("most_matched_vm_200", |b| {
        b.iter(|| most_matched_vm(black_box(&pools), &demand, &reference))
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("static_peak_100_jobs", |b| {
        b.iter(|| {
            let cluster = Cluster::from_profile(EnvironmentProfile::palmetto_cluster());
            let jobs = WorkloadGenerator::new(
                WorkloadConfig {
                    num_jobs: 100,
                    ..WorkloadConfig::default()
                },
                9,
            )
            .generate();
            let mut sim = Simulation::new(
                cluster,
                jobs,
                SimulationOptions {
                    measure_decision_time: false,
                    ..Default::default()
                },
            );
            sim.run(&mut StaticPeakProvisioner)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dnn,
    bench_hmm,
    bench_stats,
    bench_packing_placement,
    bench_engine
);
criterion_main!(benches);
