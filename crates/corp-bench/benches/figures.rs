//! Criterion benches regenerating every figure of the paper's evaluation.
//!
//! Each bench measures one figure's full regeneration (all schemes, all
//! sweep points) with the fast DNN configuration, so `cargo bench` both
//! exercises the complete experiment pipeline and tracks its cost. The
//! figure *contents* (the tables the paper reports) are printed by
//! `corp-exp`; the shape assertions live in `tests/experiment_shapes.rs`.

use corp_bench::experiments;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig06_prediction_error", |b| {
        b.iter(|| experiments::fig6(true))
    });
    group.bench_function("fig07_utilization_cluster", |b| {
        b.iter(|| experiments::fig7(true))
    });
    group.bench_function("fig08_util_vs_slo", |b| b.iter(|| experiments::fig8(true)));
    group.bench_function("fig09_slo_vs_confidence", |b| {
        b.iter(|| experiments::fig9(true))
    });
    group.bench_function("fig10_overhead_cluster", |b| {
        b.iter(|| experiments::fig10(true))
    });
    group.bench_function("fig11_utilization_ec2", |b| {
        b.iter(|| experiments::fig11(true))
    });
    group.bench_function("fig12_util_vs_slo_ec2", |b| {
        b.iter(|| experiments::fig12(true))
    });
    group.bench_function("fig13_slo_vs_confidence_ec2", |b| {
        b.iter(|| experiments::fig13(true))
    });
    group.bench_function("fig14_overhead_ec2", |b| {
        b.iter(|| experiments::fig14(true))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
