//! Pool-vs-scoped runtime microbenchmark backing DESIGN.md §11's numbers:
//! the same prediction-shaped workload fanned through [`PredictRuntime`]
//! in its two execution modes.
//!
//! * `scoped_fresh_scratch` — the pre-pool path: scoped threads (serial on
//!   a single-core host) and a fresh `init()` scratch every window.
//! * `pooled_persistent_scratch` — the default path: the window's tasks
//!   run through worker-owned (or, at width 1, caller-owned) scratch that
//!   is reset, not reallocated, between windows.
//! * `pooled_width2_channels` — the pooled path with the width pinned to
//!   2, pricing the crossbeam dispatch round-trip the inline width-1 path
//!   avoids.
//!
//! The workload per task mirrors the predictor hot loop: fill a series
//! buffer, run an activation pass over it, reduce. All three arms compute
//! identical results; only allocation and dispatch differ.

use corp_core::pipeline::{PredictRuntime, RuntimeMode};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Stand-in for the predictor's per-worker state: buffers that a fresh
/// scratch must allocate and a persistent scratch only refills.
struct Scratch {
    series: Vec<f64>,
    activations: Vec<f64>,
}

impl Scratch {
    fn new() -> Self {
        Scratch {
            series: Vec::new(),
            activations: Vec::new(),
        }
    }
}

/// One prediction-shaped task: build a 96-sample series, run a sigmoid
/// pass, reduce. Buffers are fully overwritten before every read, so
/// scratch reuse cannot change the value — the same contract the real
/// predictor scratch upholds.
fn predict_like(task: u64, s: &mut Scratch) -> f64 {
    s.series.clear();
    s.series
        .extend((0..96u64).map(|k| (((task * 7 + k) as f64) * 0.13).sin()));
    s.activations.clear();
    s.activations
        .extend(s.series.iter().map(|x| 1.0 / (1.0 + (-x).exp())));
    s.activations.iter().sum()
}

fn run_window(rt: &mut PredictRuntime, tasks: &[u64]) -> f64 {
    let (results, _) = rt.fan_out(
        black_box(tasks),
        0.0f64,
        Scratch::new,
        |&t, s: &mut Scratch| predict_like(t, s),
        |_| (),
    );
    results.iter().sum()
}

fn bench_pool_vs_scoped(c: &mut Criterion) {
    let tasks: Vec<u64> = (0..256).collect();
    let mut group = c.benchmark_group("predict_runtime_256tasks");
    group.bench_function("scoped_fresh_scratch", |b| {
        let mut rt = PredictRuntime::new(RuntimeMode::Scoped, true);
        b.iter(|| run_window(&mut rt, &tasks))
    });
    group.bench_function("pooled_persistent_scratch", |b| {
        let mut rt = PredictRuntime::new(RuntimeMode::Pooled, true);
        b.iter(|| run_window(&mut rt, &tasks))
    });
    group.bench_function("pooled_width2_channels", |b| {
        let mut rt = PredictRuntime::new(RuntimeMode::Pooled, true);
        rt.set_width(Some(2));
        b.iter(|| run_window(&mut rt, &tasks))
    });
    group.finish();
}

criterion_group!(benches, bench_pool_vs_scoped);
criterion_main!(benches);
