//! Serving-mode determinism and cross-mode equivalence.
//!
//! The corp-serve daemon's contract (DESIGN.md §12): for a fixed seed and
//! trace the serialized [`corp_serve::ServeReport`] is byte-identical
//! across repeated runs, across prediction pool widths, and across replay
//! speeds — and at infinite speed with an open queue, the daemon places
//! the same jobs on the same VMs as the batch slot-loop simulation. A
//! single differing byte fails the suite.

use corp_bench::env::{build_provisioner, Environment, SchemeKind, SchemeParams};
use corp_bench::resilience::{run_resilience, ResilienceArgs};
use corp_bench::serve::{run_serve, serve_workload};
use corp_core::pipeline::hardware_parallelism;
use corp_serve::{ReplaySpeed, ServeConfig, ServeDaemon, ServeOutcome};
use corp_sim::{JobState, RunningJob, Simulation, SimulationOptions};

const JOBS: usize = 30;
const SEED: u64 = 7;

fn outcome(width: Option<usize>, speed: ReplaySpeed) -> ServeOutcome {
    let params = SchemeParams {
        fast_dnn: true,
        pool_width: width,
        seed: SEED,
        ..Default::default()
    };
    let config = ServeConfig {
        speed,
        ..ServeConfig::default()
    };
    let env = Environment::Cluster;
    run_serve(
        env,
        SchemeKind::Corp,
        serve_workload(env, JOBS, SEED),
        &params,
        config,
    )
}

fn report_json(width: Option<usize>, speed: ReplaySpeed) -> String {
    serde::json::to_string(&outcome(width, speed).report)
}

#[test]
fn serve_reports_are_byte_identical_across_runs() {
    let first = report_json(None, ReplaySpeed::Infinite);
    assert_eq!(
        report_json(None, ReplaySpeed::Infinite),
        first,
        "same seed + trace must reproduce the ServeReport byte for byte"
    );
    assert!(first.contains("placement_latency"));
}

#[test]
fn serve_reports_are_byte_identical_across_pool_widths() {
    let baseline = report_json(Some(1), ReplaySpeed::Infinite);
    for width in [Some(2), Some(hardware_parallelism()), None] {
        assert_eq!(
            report_json(width, ReplaySpeed::Infinite),
            baseline,
            "serve report diverged at pool width {width:?}"
        );
    }
}

#[test]
fn serve_reports_are_byte_identical_across_replay_speeds() {
    // Pacing sleeps against the wall clock but never feeds wall readings
    // into the simulation; a very fast paced replay must match the
    // virtual-time batch replay exactly. (10^7 x real time: a 10 s slot
    // paces at ~1 us, so the full run stays well under a second.)
    assert_eq!(
        report_json(None, ReplaySpeed::Times(1e7)),
        report_json(None, ReplaySpeed::Infinite),
        "paced replay diverged from infinite-speed replay"
    );
}

/// Job id → final placement VM for every job that was ever placed.
fn placement_map(jobs: &[RunningJob]) -> Vec<(u64, Option<usize>)> {
    let mut map: Vec<(u64, Option<usize>)> =
        jobs.iter().map(|j| (j.spec.id, j.placed_vm)).collect();
    map.sort_unstable();
    map
}

#[test]
fn serve_at_infinite_speed_matches_the_batch_slot_loop() {
    let env = Environment::Cluster;
    let params = SchemeParams {
        fast_dnn: true,
        seed: SEED,
        ..Default::default()
    };
    let workload = serve_workload(env, JOBS, SEED);

    // Batch arm: the slot-loop simulation, exactly as run_cell drives it.
    let mut batch_provisioner = build_provisioner(SchemeKind::Corp, env, &params);
    let mut sim = Simulation::new(
        env.cluster(),
        workload.clone(),
        SimulationOptions {
            measure_decision_time: false,
            ..Default::default()
        },
    );
    let batch_report = serde::json::to_string(&sim.run(batch_provisioner.as_mut()));

    // Serve arm: fresh provisioner (same seed), same workload, through the
    // event loop.
    let mut serve_provisioner = build_provisioner(SchemeKind::Corp, env, &params);
    let mut daemon = ServeDaemon::new(
        env.cluster(),
        SimulationOptions {
            measure_decision_time: false,
            ..Default::default()
        },
        ServeConfig::default(),
    );
    let outcome = daemon.run(serve_provisioner.as_mut(), workload);

    assert_eq!(
        serde::json::to_string(&outcome.report.sim),
        batch_report,
        "serving mode diverged from the batch simulation report"
    );
    assert_eq!(
        placement_map(daemon.jobs()),
        placement_map(sim.jobs()),
        "serving mode placed jobs on different VMs than the batch loop"
    );
    // The map comparison must be about real placements, not vacuous
    // Nones: at this load the scheme places essentially everything.
    let placed = daemon
        .jobs()
        .iter()
        .filter(|j| j.placed_vm.is_some())
        .count();
    assert!(placed > JOBS / 2, "only {placed}/{JOBS} jobs ever placed");
    assert!(daemon
        .jobs()
        .iter()
        .all(|j| !matches!(j.state, JobState::Pending)));
}

// --- chaos-serve: determinism and accounting under combined faults ---

fn chaos_args(width: Option<usize>) -> ResilienceArgs {
    ResilienceArgs {
        jobs: 40,
        shards: 2,
        width,
        ..ResilienceArgs::default()
    }
}

fn chaos_report_json(width: Option<usize>) -> String {
    serde::json::to_string(&run_resilience(true, &chaos_args(width)).0.report)
}

#[test]
fn chaos_serve_reports_are_byte_identical_across_reruns() {
    // Storms, fault schedules, breakers, and the brownout ladder are all
    // pure functions of the seed: replaying the same catastrophe twice
    // must serialize to the same bytes, worker threads and all.
    let first = chaos_report_json(None);
    assert_eq!(chaos_report_json(None), first, "chaos-serve rerun diverged");
    assert!(first.contains("breaker_transitions"));
}

#[test]
fn chaos_serve_reports_are_byte_identical_across_pool_widths() {
    let baseline = chaos_report_json(Some(1));
    for width in [Some(2), None] {
        assert_eq!(
            chaos_report_json(width),
            baseline,
            "chaos-serve report diverged at pool width {width:?}"
        );
    }
}

#[test]
fn chaos_serve_loses_no_jobs_and_cycles_the_breakers() {
    let args = chaos_args(None);
    let (outcome, errors) = run_resilience(true, &args);
    let r = &outcome.report;

    // Zero jobs lost: every offered job lands in exactly one terminal
    // bucket, even with VMs crashing, workers dying, and arrivals
    // storming.
    assert_eq!(
        r.sim.completed
            + r.sim.rejected
            + r.sim.unfinished
            + (r.queue.shed + r.queue.rejected + r.queue.expired) as usize,
        args.jobs,
        "conservation violated under chaos"
    );

    // The fixed drop burst guarantees a full breaker cycle: trip, a
    // failed half-open probe, and a recovery — all recorded as
    // transitions in the report's control-plane stats.
    let cp = r.sim.control_plane.as_ref().expect("sharded run has stats");
    assert!(cp.breaker_opens >= 2, "breaker never tripped");
    assert!(cp.breaker_half_opens >= 2, "breaker never probed");
    assert!(cp.breaker_closes >= 1, "breaker never recovered");
    assert!(
        !cp.breaker_transitions.is_empty(),
        "transitions must be recorded in the report"
    );
    assert_eq!(
        cp.breaker_opens + cp.breaker_half_opens + cp.breaker_closes,
        cp.breaker_transitions.len() as u64,
        "counters must agree with the transition log"
    );
    assert!(cp.isolated_slots > 0, "open breakers must isolate slots");
    assert!(
        errors.is_empty(),
        "supervisor should recover from scheduled chaos: {errors:?}"
    );
}
