//! Determinism regression tests: identical seed + config must yield
//! byte-identical serialized `SimulationReport`s, with and without the
//! sharded control plane, and one shard must reproduce the monolithic
//! scheduler's numbers exactly.
//!
//! Decision wall-clock measurement is off throughout — it is the one
//! intentionally non-deterministic report input.

use corp_bench::env::{run_cell, run_cell_sharded, Environment, SchemeKind, SchemeParams};

const JOBS: usize = 40;

fn params() -> SchemeParams {
    SchemeParams {
        fast_dnn: true,
        ..Default::default()
    }
}

#[test]
fn single_shard_reports_are_byte_identical_across_runs() {
    let p = params();
    let (a, _) = run_cell_sharded(Environment::Cluster, SchemeKind::Corp, JOBS, &p, 1, false);
    let (b, _) = run_cell_sharded(Environment::Cluster, SchemeKind::Corp, JOBS, &p, 1, false);
    assert_eq!(serde::json::to_string(&a), serde::json::to_string(&b));
}

#[test]
fn multi_shard_reports_are_byte_identical_across_runs() {
    // Four real scheduler threads racing through the placement store must
    // still merge into a bit-reproducible report: proposal generation is
    // per-shard deterministic and arbitration order is fixed.
    for scheme in [SchemeKind::Corp, SchemeKind::Rccr] {
        let p = params();
        let (a, _) = run_cell_sharded(Environment::Cluster, scheme, JOBS, &p, 4, false);
        let (b, _) = run_cell_sharded(Environment::Cluster, scheme, JOBS, &p, 4, false);
        assert_eq!(
            serde::json::to_string(&a),
            serde::json::to_string(&b),
            "{scheme:?} not deterministic at 4 shards"
        );
    }
}

#[test]
fn one_shard_reproduces_the_monolithic_scheduler() {
    // Acceptance bar for the sharded control plane: with shards = 1 the
    // coordinator must be a transparent wrapper. Every report field except
    // the provisioner label and the control-plane block matches exactly.
    for scheme in [
        SchemeKind::Corp,
        SchemeKind::Rccr,
        SchemeKind::CloudScale,
        SchemeKind::Dra,
    ] {
        let p = params();
        let mono = run_cell(Environment::Cluster, scheme, JOBS, &p, false);
        let (sharded, _) = run_cell_sharded(Environment::Cluster, scheme, JOBS, &p, 1, false);
        assert_eq!(sharded.provisioner, format!("{}x1", mono.provisioner));
        assert_eq!(sharded.environment, mono.environment, "{scheme:?}");
        assert_eq!(sharded.num_jobs, mono.num_jobs, "{scheme:?}");
        assert_eq!(sharded.utilization, mono.utilization, "{scheme:?}");
        assert_eq!(
            sharded.overall_utilization, mono.overall_utilization,
            "{scheme:?}"
        );
        assert_eq!(
            sharded.slo_violation_rate, mono.slo_violation_rate,
            "{scheme:?}"
        );
        assert_eq!(
            sharded.prediction_error_rate, mono.prediction_error_rate,
            "{scheme:?}"
        );
        assert_eq!(
            sharded.predictions_resolved, mono.predictions_resolved,
            "{scheme:?}"
        );
        assert_eq!(sharded.overhead_ms, mono.overhead_ms, "{scheme:?}");
        assert_eq!(sharded.completed, mono.completed, "{scheme:?}");
        assert_eq!(sharded.violated, mono.violated, "{scheme:?}");
        assert_eq!(sharded.rejected, mono.rejected, "{scheme:?}");
        assert_eq!(sharded.unfinished, mono.unfinished, "{scheme:?}");
        assert_eq!(sharded.slots_run, mono.slots_run, "{scheme:?}");
        assert_eq!(
            sharded.mean_response_slots, mono.mean_response_slots,
            "{scheme:?}"
        );
        assert_eq!(sharded.invalid_actions, 0, "{scheme:?}");
        assert_eq!(mono.invalid_actions, 0, "{scheme:?}");
        let cp = sharded
            .control_plane
            .expect("sharded run reports control-plane stats");
        assert_eq!(cp.shards, 1);
        assert_eq!(
            cp.conflicts, 0,
            "{scheme:?}: a lone shard cannot conflict with itself"
        );
        assert!(mono.control_plane.is_none());
    }
}

#[test]
fn multi_shard_never_overcommits_and_reports_contention() {
    let p = params();
    let (r, _) = run_cell_sharded(Environment::Cluster, SchemeKind::Corp, 120, &p, 4, false);
    // The engine independently validates every action; a store-approved
    // plan must never be rejected downstream.
    assert_eq!(r.invalid_actions, 0, "{r:?}");
    let cp = r.control_plane.expect("control-plane stats present");
    assert_eq!(cp.shards, 4);
    assert_eq!(
        cp.commits + cp.aborts,
        cp.reservations,
        "every reservation resolved"
    );
    assert!(cp.per_shard.len() == 4);
    assert!(r.completed > 0);
}
