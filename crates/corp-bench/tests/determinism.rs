//! Determinism regression tests: identical seed + config must yield
//! byte-identical serialized `SimulationReport`s, with and without the
//! sharded control plane, and one shard must reproduce the monolithic
//! scheduler's numbers exactly.
//!
//! Decision wall-clock measurement is off throughout — it is the one
//! intentionally non-deterministic report input.

use corp_bench::env::{
    run_cell, run_cell_faulty, run_cell_sharded, Environment, SchemeKind, SchemeParams,
};
use corp_faults::FaultConfig;

const JOBS: usize = 40;

fn params() -> SchemeParams {
    SchemeParams {
        fast_dnn: true,
        ..Default::default()
    }
}

#[test]
fn single_shard_reports_are_byte_identical_across_runs() {
    let p = params();
    let (a, _) = run_cell_sharded(Environment::Cluster, SchemeKind::Corp, JOBS, &p, 1, false);
    let (b, _) = run_cell_sharded(Environment::Cluster, SchemeKind::Corp, JOBS, &p, 1, false);
    assert_eq!(serde::json::to_string(&a), serde::json::to_string(&b));
}

#[test]
fn multi_shard_reports_are_byte_identical_across_runs() {
    // Four real scheduler threads racing through the placement store must
    // still merge into a bit-reproducible report: proposal generation is
    // per-shard deterministic and arbitration order is fixed.
    for scheme in [SchemeKind::Corp, SchemeKind::Rccr] {
        let p = params();
        let (a, _) = run_cell_sharded(Environment::Cluster, scheme, JOBS, &p, 4, false);
        let (b, _) = run_cell_sharded(Environment::Cluster, scheme, JOBS, &p, 4, false);
        assert_eq!(
            serde::json::to_string(&a),
            serde::json::to_string(&b),
            "{scheme:?} not deterministic at 4 shards"
        );
    }
}

#[test]
fn one_shard_reproduces_the_monolithic_scheduler() {
    // Acceptance bar for the sharded control plane: with shards = 1 the
    // coordinator must be a transparent wrapper. Every report field except
    // the provisioner label and the control-plane block matches exactly.
    for scheme in [
        SchemeKind::Corp,
        SchemeKind::Rccr,
        SchemeKind::CloudScale,
        SchemeKind::Dra,
    ] {
        let p = params();
        let mono = run_cell(Environment::Cluster, scheme, JOBS, &p, false);
        let (sharded, _) = run_cell_sharded(Environment::Cluster, scheme, JOBS, &p, 1, false);
        assert_eq!(sharded.provisioner, format!("{}x1", mono.provisioner));
        assert_eq!(sharded.environment, mono.environment, "{scheme:?}");
        assert_eq!(sharded.num_jobs, mono.num_jobs, "{scheme:?}");
        assert_eq!(sharded.utilization, mono.utilization, "{scheme:?}");
        assert_eq!(
            sharded.overall_utilization, mono.overall_utilization,
            "{scheme:?}"
        );
        assert_eq!(
            sharded.slo_violation_rate, mono.slo_violation_rate,
            "{scheme:?}"
        );
        assert_eq!(
            sharded.prediction_error_rate, mono.prediction_error_rate,
            "{scheme:?}"
        );
        assert_eq!(
            sharded.predictions_resolved, mono.predictions_resolved,
            "{scheme:?}"
        );
        assert_eq!(sharded.overhead_ms, mono.overhead_ms, "{scheme:?}");
        assert_eq!(sharded.completed, mono.completed, "{scheme:?}");
        assert_eq!(sharded.violated, mono.violated, "{scheme:?}");
        assert_eq!(sharded.rejected, mono.rejected, "{scheme:?}");
        assert_eq!(sharded.unfinished, mono.unfinished, "{scheme:?}");
        assert_eq!(sharded.slots_run, mono.slots_run, "{scheme:?}");
        assert_eq!(
            sharded.mean_response_slots, mono.mean_response_slots,
            "{scheme:?}"
        );
        assert_eq!(sharded.invalid_actions, 0, "{scheme:?}");
        assert_eq!(mono.invalid_actions, 0, "{scheme:?}");
        let cp = sharded
            .control_plane
            .expect("sharded run reports control-plane stats");
        assert_eq!(cp.shards, 1);
        assert_eq!(
            cp.conflicts, 0,
            "{scheme:?}: a lone shard cannot conflict with itself"
        );
        assert!(mono.control_plane.is_none());
    }
}

#[test]
fn fifth_scheme_pipeline_is_identical_monolithic_and_sharded() {
    // The plug-in bar for the stage-trait pipeline: a trivial fifth scheme
    // (static peak rebuilt as a pipeline configuration) must report
    // identically whether driven monolithically or through the sharded
    // coordinator — field for field, with only the "x1" name tag differing.
    use corp_cluster::{ShardConfig, ShardedProvisioner};
    use corp_core::StaticPeakPipeline;
    use corp_sim::{Provisioner, Simulation, SimulationOptions};

    let env = Environment::Cluster;
    let opts = || SimulationOptions {
        measure_decision_time: false,
        ..Default::default()
    };
    let jobs = env.workload(JOBS, 0x5EED);

    let mut mono = StaticPeakPipeline::static_peak();
    let mono_report = Simulation::new(env.cluster(), jobs.clone(), opts()).run(&mut mono);

    let shards: Vec<Box<dyn Provisioner + Send>> =
        vec![Box::new(StaticPeakPipeline::static_peak())];
    let mut sharded = ShardedProvisioner::new("static-peak", shards, ShardConfig::default());
    let sharded_report = Simulation::new(env.cluster(), jobs, opts()).run(&mut sharded);

    assert_eq!(
        sharded_report.provisioner,
        format!("{}x1", mono_report.provisioner)
    );
    assert_eq!(sharded_report.utilization, mono_report.utilization);
    assert_eq!(
        sharded_report.overall_utilization,
        mono_report.overall_utilization
    );
    assert_eq!(
        sharded_report.slo_violation_rate,
        mono_report.slo_violation_rate
    );
    assert_eq!(sharded_report.completed, mono_report.completed);
    assert_eq!(sharded_report.violated, mono_report.violated);
    assert_eq!(sharded_report.rejected, mono_report.rejected);
    assert_eq!(sharded_report.unfinished, mono_report.unfinished);
    assert_eq!(sharded_report.slots_run, mono_report.slots_run);
    assert_eq!(
        sharded_report.mean_response_slots,
        mono_report.mean_response_slots
    );
    assert_eq!(sharded_report.invalid_actions, 0);
    assert_eq!(mono_report.invalid_actions, 0);
    let cp = sharded_report
        .control_plane
        .expect("sharded run reports control-plane stats");
    assert_eq!(cp.shards, 1);
    assert_eq!(cp.conflicts, 0);
    assert!(mono_report.control_plane.is_none());
}

#[test]
fn hot_path_optimizations_do_not_change_a_single_decision() {
    // The perf tier must be invisible in the results: fan-out prediction
    // across scoped threads plus the fused DNN kernels must reproduce the
    // serial, reference-kernel run byte for byte, for every scheme. This is
    // the transparency bar the kernel rewrite is held to — any reordering
    // of a floating-point reduction would show up here.
    for scheme in [
        SchemeKind::Corp,
        SchemeKind::Rccr,
        SchemeKind::CloudScale,
        SchemeKind::Dra,
    ] {
        let tuned = params();
        let baseline = SchemeParams {
            serial_prediction: true,
            reference_dnn: true,
            ..params()
        };
        let a = run_cell(Environment::Cluster, scheme, JOBS, &tuned, false);
        let b = run_cell(Environment::Cluster, scheme, JOBS, &baseline, false);
        assert_eq!(
            serde::json::to_string(&a),
            serde::json::to_string(&b),
            "{scheme:?}: optimized hot path diverged from the serial reference run"
        );
    }
}

#[test]
fn faulty_runs_are_byte_identical_across_runs() {
    // Chaos must be deterministic: the same fault seed and intensity must
    // reproduce the same kills, the same recoveries, and the same report
    // bytes — crashes included.
    let p = params();
    let cfg = FaultConfig::scenario(0xFA17, 2.0);
    let a = run_cell_faulty(Environment::Cluster, SchemeKind::Corp, JOBS, &p, 2, &cfg);
    let b = run_cell_faulty(Environment::Cluster, SchemeKind::Corp, JOBS, &p, 2, &cfg);
    assert_eq!(serde::json::to_string(&a), serde::json::to_string(&b));
    // The scenario actually bites: faults happened and were recovered.
    let f = a.faults.as_ref().expect("fault stats present");
    assert!(f.vm_crashes > 0, "{f:?}");
    let cp = a.control_plane.as_ref().expect("control-plane stats");
    assert!(
        cp.worker_kills > 0 && cp.worker_restarts > 0,
        "supervisor recovery exercised: {cp:?}"
    );
    assert_eq!(a.invalid_actions, 0, "no overcommit under faults");
}

#[test]
fn disabled_faults_match_the_fault_free_supervised_run() {
    // Intensity 0.0 must be a no-op: the supervised coordinator with an
    // empty fault plan reproduces the plain sharded run's numbers exactly
    // (the report differs only in carrying zeroed fault stats).
    for scheme in [SchemeKind::Corp, SchemeKind::Dra] {
        let p = params();
        let cfg = FaultConfig::disabled(0xFA17);
        let faulty = run_cell_faulty(Environment::Cluster, scheme, JOBS, &p, 2, &cfg);
        let (plain, _) = run_cell_sharded(Environment::Cluster, scheme, JOBS, &p, 2, false);
        assert_eq!(faulty.utilization, plain.utilization, "{scheme:?}");
        assert_eq!(
            faulty.overall_utilization, plain.overall_utilization,
            "{scheme:?}"
        );
        assert_eq!(
            faulty.slo_violation_rate, plain.slo_violation_rate,
            "{scheme:?}"
        );
        assert_eq!(faulty.completed, plain.completed, "{scheme:?}");
        assert_eq!(faulty.violated, plain.violated, "{scheme:?}");
        assert_eq!(faulty.slots_run, plain.slots_run, "{scheme:?}");
        assert_eq!(
            faulty.mean_response_slots, plain.mean_response_slots,
            "{scheme:?}"
        );
        let f = faulty.faults.as_ref().expect("zeroed fault stats present");
        assert_eq!(*f, corp_sim::FaultStats::default(), "{scheme:?}");
        assert!(plain.faults.is_none());
    }
}

#[test]
fn multi_shard_never_overcommits_and_reports_contention() {
    let p = params();
    let (r, _) = run_cell_sharded(Environment::Cluster, SchemeKind::Corp, 120, &p, 4, false);
    // The engine independently validates every action; a store-approved
    // plan must never be rejected downstream.
    assert_eq!(r.invalid_actions, 0, "{r:?}");
    let cp = r.control_plane.expect("control-plane stats present");
    assert_eq!(cp.shards, 4);
    assert_eq!(
        cp.commits + cp.aborts,
        cp.reservations,
        "every reservation resolved"
    );
    assert!(cp.per_shard.len() == 4);
    assert!(r.completed > 0);
}
