//! Pool-runtime equivalence: the persistent worker-pool path must
//! reproduce the legacy scoped-thread path byte for byte, at every fan-out
//! width, for every scheme.
//!
//! This is the determinism contract of DESIGN.md §11: chunking is
//! contiguous and width-deterministic, results land by task index, and
//! worker scratch only carries buffers that are fully overwritten before
//! they are read (plus order-independent counters). A single differing
//! byte in a serialized report fails the suite.

use corp_bench::env::{run_cell, Environment, SchemeKind, SchemeParams, ALL_SCHEMES};
use corp_core::pipeline::hardware_parallelism;

const JOBS: usize = 30;

/// Runs one small cluster cell and serializes the full report.
fn report_json(scheme: SchemeKind, scoped: bool, width: Option<usize>) -> String {
    let params = SchemeParams {
        fast_dnn: true,
        scoped_runtime: scoped,
        pool_width: width,
        ..Default::default()
    };
    serde::json::to_string(&run_cell(
        Environment::Cluster,
        scheme,
        JOBS,
        &params,
        false,
    ))
}

#[test]
fn pooled_widths_match_scoped_for_every_scheme() {
    for scheme in ALL_SCHEMES {
        let scoped = report_json(scheme, true, None);
        for width in [Some(1), Some(2), Some(hardware_parallelism())] {
            assert_eq!(
                report_json(scheme, false, width),
                scoped,
                "{scheme:?}: pooled at width {width:?} diverged from scoped"
            );
        }
        assert_eq!(
            report_json(scheme, false, None),
            scoped,
            "{scheme:?}: pooled at the default width diverged from scoped"
        );
    }
}

#[test]
fn pinned_width_matches_default_width_under_scoped_mode() {
    // The width knob must be inert in scoped mode too (it only shapes the
    // pooled chunking; scoped fan-out derives its width from the host).
    for scheme in [SchemeKind::Corp, SchemeKind::Rccr] {
        assert_eq!(
            report_json(scheme, true, Some(2)),
            report_json(scheme, true, None),
            "{scheme:?}: width override changed the scoped-mode report"
        );
    }
}
