//! Minimal aligned text-table rendering for experiment output.

use serde::Serialize;
use std::fmt;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Serialize)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are already formatted).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Borrow of the raw rows (tests and downstream processing).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Borrow of the header labels.
    pub fn header(&self) -> &[String] {
        &self.header
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        line(f, &self.header)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = TextTable::new("Demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "12345".into()]);
        let s = t.to_string();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| name  | value |"));
        assert!(s.contains("| alpha | 1     |"));
        assert!(s.contains("| b     | 12345 |"));
    }

    #[test]
    #[should_panic]
    fn rejects_mismatched_row_width() {
        let mut t = TextTable::new("Demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn tracks_length() {
        let mut t = TextTable::new("Demo", &["a"]);
        assert!(t.is_empty());
        t.push_row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
    }
}
