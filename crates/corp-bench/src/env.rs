//! Experiment environments and scheme construction.
//!
//! Two environments mirror the paper's two testbeds. Machine counts and
//! capacities follow Section IV; the cluster's PM count is scaled down
//! (8 SL230-class servers instead of 50) so the paper's 50-300 job range
//! spans light-to-heavy load on the simulator — the contention regime in
//! which the paper's utilization and SLO orderings are measured (a 200-VM
//! fleet under 300 sub-VM jobs never contends, which would flatten every
//! curve; see EXPERIMENTS.md).

use corp_cluster::{ShardConfig, ShardedProvisioner};
use corp_core::{
    CloudScaleProvisioner, CorpConfig, CorpProvisioner, DraProvisioner, RccrProvisioner,
};
use corp_faults::{generate, FaultConfig, FaultSchedule};
use corp_sim::{Cluster, EnvironmentProfile, Provisioner, Simulation, SimulationOptions};
use corp_trace::{JobSpec, WorkloadConfig, WorkloadGenerator};

/// Which testbed an experiment models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Environment {
    /// The Palmetto-cluster testbed (SL230-class servers, 4 VMs each).
    Cluster,
    /// The Amazon EC2 testbed (30 ML110 G5 nodes, one VM per node).
    Ec2,
}

impl Environment {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Environment::Cluster => "cluster",
            Environment::Ec2 => "ec2",
        }
    }

    /// Builds the VM fleet for this environment.
    pub fn cluster(self) -> Cluster {
        match self {
            Environment::Cluster => {
                Cluster::from_profile(EnvironmentProfile::palmetto_cluster().with_num_pms(8))
            }
            Environment::Ec2 => Cluster::from_profile(EnvironmentProfile::amazon_ec2()),
        }
    }

    /// Slots over which each experiment's whole job population arrives —
    /// the paper varies the number of jobs over a fixed trace interval, so
    /// more jobs means a proportionally higher arrival rate (and heavier
    /// load), which is what spreads the 50-300 job range from light to
    /// saturating.
    pub const ARRIVAL_WINDOW_SLOTS: f64 = 45.0;

    /// Workload configuration for this environment: EC2's 2-core / 4 GB
    /// nodes host proportionally smaller jobs.
    pub fn workload_config(self, num_jobs: usize) -> WorkloadConfig {
        WorkloadConfig {
            num_jobs,
            mean_interarrival_slots: Self::ARRIVAL_WINDOW_SLOTS / num_jobs.max(1) as f64,
            demand_scale: match self {
                Environment::Cluster => 1.5,
                // Sized so 300 jobs saturate the 30 small nodes, mirroring
                // the cluster environment's load range.
                Environment::Ec2 => 0.45,
            },
            ..WorkloadConfig::default()
        }
    }

    /// Generates the measured workload.
    pub fn workload(self, num_jobs: usize, seed: u64) -> Vec<JobSpec> {
        WorkloadGenerator::new(self.workload_config(num_jobs), seed).generate()
    }
}

/// Seed used for the historical (training) workload; disjoint from every
/// measured-run seed.
pub const HISTORY_SEED: u64 = 0xC0B9;

/// The four compared provisioning schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// The paper's contribution.
    Corp,
    /// Exponential-smoothing opportunistic baseline.
    Rccr,
    /// PRESS-based elastic-scaling baseline.
    CloudScale,
    /// Share/demand capacity-redistribution baseline.
    Dra,
}

/// All schemes in the paper's presentation order.
pub const ALL_SCHEMES: [SchemeKind; 4] = [
    SchemeKind::Corp,
    SchemeKind::Rccr,
    SchemeKind::CloudScale,
    SchemeKind::Dra,
];

impl SchemeKind {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Corp => "CORP",
            SchemeKind::Rccr => "RCCR",
            SchemeKind::CloudScale => "CloudScale",
            SchemeKind::Dra => "DRA",
        }
    }
}

/// Extracts per-resource unused-series training data from a historical
/// workload (the stand-in for the paper's Google-trace history).
pub fn historical_histories(env: Environment, num_jobs: usize) -> Vec<Vec<Vec<f64>>> {
    let jobs = env.workload(num_jobs, HISTORY_SEED);
    (0..corp_trace::NUM_RESOURCES)
        .map(|k| {
            jobs.iter()
                .map(|j| (0..j.duration_slots).map(|s| j.unused_at(s, k)).collect())
                .collect()
        })
        .collect()
}

/// Knobs that vary across experiment sweeps.
#[derive(Debug, Clone)]
pub struct SchemeParams {
    /// Confidence level `eta` for CORP and RCCR.
    pub confidence: f64,
    /// Probability threshold `P_th` for CORP's Eq. 21 gate.
    pub prob_threshold: f64,
    /// Pad scale for CloudScale / overcommit for DRA (the Fig. 8
    /// aggressiveness knob; 1.0 = each scheme's default posture).
    pub aggressiveness: f64,
    /// Use the cheaper DNN (tests) instead of the paper's 4x50
    /// architecture.
    pub fast_dnn: bool,
    /// Disable the scoped-thread prediction fan-out (CORP, RCCR,
    /// CloudScale run their per-window forecasts serially). Reports are
    /// byte-identical either way — this is the determinism suite's A/B
    /// switch and the perf runner's baseline arm.
    pub serial_prediction: bool,
    /// Train CORP's DNNs through the legacy per-sample reference kernels
    /// instead of the fused ones (bit-identical outputs; the fused path's
    /// A/B switch and the perf runner's baseline arm).
    pub reference_dnn: bool,
    /// Run predictions on the legacy scoped-thread path (fresh threads and
    /// fresh scratch every window) instead of the persistent worker-pool
    /// runtime. Reports are byte-identical either way — this is the
    /// measured baseline arm of `corp-exp e2e`.
    pub scoped_runtime: bool,
    /// Pins the prediction fan-out width for CORP, RCCR, and CloudScale
    /// (`None` = the `CORP_THREADS` / hardware default). Width only shapes
    /// chunking — reports are byte-identical at any width.
    pub pool_width: Option<usize>,
    /// RNG seed for randomized placement.
    pub seed: u64,
}

impl Default for SchemeParams {
    fn default() -> Self {
        SchemeParams {
            confidence: 0.9,
            prob_threshold: 0.95,
            aggressiveness: 1.0,
            fast_dnn: false,
            serial_prediction: false,
            reference_dnn: false,
            scoped_runtime: false,
            pool_width: None,
            seed: 7,
        }
    }
}

/// Builds (and for CORP, pretrains) a provisioner.
pub fn build_provisioner(
    scheme: SchemeKind,
    env: Environment,
    params: &SchemeParams,
) -> Box<dyn Provisioner + Send> {
    match scheme {
        SchemeKind::Corp => {
            let mut config = if params.fast_dnn {
                CorpConfig::fast()
            } else {
                CorpConfig::default()
            };
            config.confidence_level = params.confidence;
            config.prob_threshold = params.prob_threshold;
            config.seed = params.seed;
            config.parallel_prediction = !params.serial_prediction;
            config.train.reference_kernels = params.reference_dnn;
            config.pooled_runtime = !params.scoped_runtime;
            config.prediction_pool_width = params.pool_width;
            let mut corp = CorpProvisioner::new(config);
            corp.pretrain(&historical_histories(env, 40));
            Box::new(corp)
        }
        SchemeKind::Rccr => {
            let mut rccr = RccrProvisioner::new(params.confidence, params.seed);
            rccr.set_parallel_prediction(!params.serial_prediction);
            rccr.set_scoped_runtime(params.scoped_runtime);
            rccr.set_prediction_pool_width(params.pool_width);
            Box::new(rccr)
        }
        SchemeKind::CloudScale => {
            let mut cs =
                CloudScaleProvisioner::with_padding_scale(params.seed, params.aggressiveness);
            cs.set_parallel_prediction(!params.serial_prediction);
            cs.set_scoped_runtime(params.scoped_runtime);
            cs.set_prediction_pool_width(params.pool_width);
            Box::new(cs)
        }
        SchemeKind::Dra => {
            let mut dra = DraProvisioner::with_overcommit(
                params.seed,
                params.aggressiveness.clamp(0.05, 1.0),
            );
            dra.set_scoped_runtime(params.scoped_runtime);
            Box::new(dra)
        }
    }
}

/// Builds a sharded control plane: `shards` independent copies of `scheme`
/// behind a [`ShardedProvisioner`] coordinator, with per-shard decorrelated
/// seeds (shard 0 keeps `params.seed`, so one shard reproduces the
/// monolithic scheduler exactly). Each shard runs the scheme at its default
/// posture (`aggressiveness` applies only to monolithic builds).
pub fn build_sharded_provisioner(
    scheme: SchemeKind,
    env: Environment,
    params: &SchemeParams,
    shards: usize,
) -> ShardedProvisioner {
    let inners = match scheme {
        SchemeKind::Corp => {
            let mut config = if params.fast_dnn {
                CorpConfig::fast()
            } else {
                CorpConfig::default()
            };
            config.confidence_level = params.confidence;
            config.prob_threshold = params.prob_threshold;
            config.seed = params.seed;
            corp_core::corp_fleet(&config, &historical_histories(env, 40), shards)
        }
        SchemeKind::Rccr => corp_core::rccr_fleet(params.confidence, params.seed, shards),
        SchemeKind::CloudScale => corp_core::cloudscale_fleet(params.seed, shards),
        SchemeKind::Dra => corp_core::dra_fleet(params.seed, shards),
    };
    ShardedProvisioner::new(scheme.name(), inners, ShardConfig::default())
}

/// Like [`build_sharded_provisioner`], but every shard is built from a
/// factory so the supervisor can rebuild workers the fault schedule kills,
/// and the coordinator follows `fault_plan`'s control-plane chaos.
pub fn build_supervised_provisioner(
    scheme: SchemeKind,
    env: Environment,
    params: &SchemeParams,
    shards: usize,
    fault_plan: Option<corp_faults::ControlFaultPlan>,
) -> ShardedProvisioner {
    let factories = match scheme {
        SchemeKind::Corp => {
            let mut config = if params.fast_dnn {
                CorpConfig::fast()
            } else {
                CorpConfig::default()
            };
            config.confidence_level = params.confidence;
            config.prob_threshold = params.prob_threshold;
            config.seed = params.seed;
            corp_core::corp_factories(&config, &historical_histories(env, 40), shards)
        }
        SchemeKind::Rccr => corp_core::rccr_factories(params.confidence, params.seed, shards),
        SchemeKind::CloudScale => corp_core::cloudscale_factories(params.seed, shards),
        SchemeKind::Dra => corp_core::dra_factories(params.seed, shards),
    };
    ShardedProvisioner::with_factories(
        scheme.name(),
        factories,
        ShardConfig {
            fault_plan,
            ..ShardConfig::default()
        },
    )
}

/// Runs one cell under a deterministic fault schedule: `fault_config`'s
/// engine-side timeline (VM crashes, stragglers, view poisoning) drives
/// the simulation while its control-plane plan (worker kills, message
/// drops/delays) drives the supervised `shards`-way coordinator. The same
/// `fault_config` yields the same schedule for every scheme, so schemes
/// are compared under identical chaos.
pub fn run_cell_faulty(
    env: Environment,
    scheme: SchemeKind,
    num_jobs: usize,
    params: &SchemeParams,
    shards: usize,
    fault_config: &FaultConfig,
) -> corp_sim::SimulationReport {
    let cluster = env.cluster();
    let schedule: FaultSchedule = generate(fault_config, cluster.vms.len(), shards);
    let mut provisioner =
        build_supervised_provisioner(scheme, env, params, shards, Some(schedule.control));
    let mut sim = Simulation::new(
        cluster,
        env.workload(num_jobs, params.seed.wrapping_add(num_jobs as u64)),
        SimulationOptions {
            measure_decision_time: false,
            ..Default::default()
        },
    )
    .with_fault_timeline(schedule.timeline);
    sim.run(&mut provisioner)
}

/// Runs one (environment, scheme, #jobs) cell through a `shards`-way
/// control plane. Returns the report and the simulation loop's wall-clock
/// seconds — kept out of the report so reports stay byte-deterministic
/// while throughput (placements committed / second) stays measurable.
pub fn run_cell_sharded(
    env: Environment,
    scheme: SchemeKind,
    num_jobs: usize,
    params: &SchemeParams,
    shards: usize,
    measure_time: bool,
) -> (corp_sim::SimulationReport, f64) {
    let mut provisioner = build_sharded_provisioner(scheme, env, params, shards);
    let mut sim = Simulation::new(
        env.cluster(),
        env.workload(num_jobs, params.seed.wrapping_add(num_jobs as u64)),
        SimulationOptions {
            measure_decision_time: measure_time,
            ..Default::default()
        },
    );
    let started = std::time::Instant::now();
    let report = sim.run(&mut provisioner);
    (report, started.elapsed().as_secs_f64())
}

/// Runs one (environment, scheme, #jobs) cell and returns the report.
pub fn run_cell(
    env: Environment,
    scheme: SchemeKind,
    num_jobs: usize,
    params: &SchemeParams,
    measure_time: bool,
) -> corp_sim::SimulationReport {
    let mut provisioner = build_provisioner(scheme, env, params);
    let mut sim = Simulation::new(
        env.cluster(),
        env.workload(num_jobs, params.seed.wrapping_add(num_jobs as u64)),
        SimulationOptions {
            measure_decision_time: measure_time,
            ..Default::default()
        },
    );
    sim.run(provisioner.as_mut())
}

/// Scalar metrics of one cell averaged over several workload seeds — the
/// SLO-rate and error-rate figures are small-count statistics, so single
/// runs are noisy the same way single testbed runs are.
#[derive(Debug, Clone, Copy)]
pub struct AveragedCell {
    /// Mean overall utilization.
    pub overall_utilization: f64,
    /// Mean per-resource utilization.
    pub utilization: [f64; corp_trace::NUM_RESOURCES],
    /// Mean SLO violation rate.
    pub slo_violation_rate: f64,
    /// Mean prediction-error rate.
    pub prediction_error_rate: f64,
    /// Mean overhead in milliseconds.
    pub overhead_ms: f64,
}

/// Runs one cell over `seeds` distinct workloads and averages the scalar
/// metrics. Each seed builds a fresh provisioner, so no state leaks
/// between repetitions.
pub fn run_cell_averaged(
    env: Environment,
    scheme: SchemeKind,
    num_jobs: usize,
    params: &SchemeParams,
    measure_time: bool,
    seeds: &[u64],
) -> AveragedCell {
    assert!(!seeds.is_empty(), "need at least one seed");
    let mut acc = AveragedCell {
        overall_utilization: 0.0,
        utilization: [0.0; corp_trace::NUM_RESOURCES],
        slo_violation_rate: 0.0,
        prediction_error_rate: 0.0,
        overhead_ms: 0.0,
    };
    for &seed in seeds {
        let mut p = params.clone();
        p.seed = seed;
        let r = run_cell(env, scheme, num_jobs, &p, measure_time);
        acc.overall_utilization += r.overall_utilization;
        for k in 0..corp_trace::NUM_RESOURCES {
            acc.utilization[k] += r.utilization[k];
        }
        acc.slo_violation_rate += r.slo_violation_rate;
        acc.prediction_error_rate += r.prediction_error_rate;
        acc.overhead_ms += r.overhead_ms;
    }
    let n = seeds.len() as f64;
    acc.overall_utilization /= n;
    for k in 0..corp_trace::NUM_RESOURCES {
        acc.utilization[k] /= n;
    }
    acc.slo_violation_rate /= n;
    acc.prediction_error_rate /= n;
    acc.overhead_ms /= n;
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environments_build_expected_fleets() {
        assert_eq!(Environment::Cluster.cluster().vms.len(), 32);
        assert_eq!(Environment::Ec2.cluster().vms.len(), 30);
    }

    #[test]
    fn ec2_jobs_fit_ec2_nodes() {
        let cap = Environment::Ec2.cluster().max_vm_capacity();
        for j in Environment::Ec2.workload(100, 3) {
            assert!(
                corp_sim::ResourceVector::new(j.requested).fits_within(&cap),
                "job {:?} exceeds EC2 node capacity",
                j.requested
            );
        }
    }

    #[test]
    fn historical_histories_cover_all_resources() {
        let h = historical_histories(Environment::Cluster, 10);
        assert_eq!(h.len(), 3);
        assert!(h.iter().all(|per_job| per_job.len() == 10));
    }

    #[test]
    fn scheme_names_match_paper() {
        let names: Vec<&str> = ALL_SCHEMES.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["CORP", "RCCR", "CloudScale", "DRA"]);
    }

    #[test]
    fn run_cell_completes_for_every_scheme() {
        let params = SchemeParams {
            fast_dnn: true,
            ..Default::default()
        };
        for scheme in ALL_SCHEMES {
            let report = run_cell(Environment::Cluster, scheme, 30, &params, false);
            assert_eq!(report.num_jobs, 30, "{scheme:?}");
            assert_eq!(report.invalid_actions, 0, "{scheme:?}: {report:?}");
        }
    }
}
