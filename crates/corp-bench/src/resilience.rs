//! The `corp-exp resilience` subcommand: chaos-serve.
//!
//! The serving daemon's overload machinery (DESIGN.md §13) is only worth
//! trusting if it holds up under *combined* chaos: control-plane faults
//! (worker kills, dropped requests, delayed replies) on the supply side
//! and arrival storms on the demand side, at the same time, with
//! deadlines, the brownout ladder, and per-shard circuit breakers all
//! armed. This runner builds exactly that cell:
//!
//! * the standard cluster workload with its arrival slots compressed
//!   through a seeded [`StormPlan`] (thundering herds, monotone so the
//!   daemon's lazy arrival feed stays in order),
//! * the [`FaultConfig::scenario`] control plan *plus* a fixed burst of
//!   request drops aimed at the last shard — eight consecutive losses
//!   that deterministically trip its breaker (3 fallbacks → Open),
//!   fail its first half-open probe, and let the second probe close it,
//! * the engine-side fault timeline (VM crashes, stragglers, poisoned
//!   views) from the same schedule,
//! * a supervised sharded provisioner wrapped in [`BreakerSupervisor`].
//!
//! Everything is expanded from the seed before the run starts, so the
//! whole catastrophe replays byte-identically — `--smoke` asserts that
//! (two full runs, compared as serialized bytes) along with the
//! zero-jobs-lost conservation law, and `--bench` records the outcome in
//! [`RESILIENCE_BASELINE_FILE`] for `scripts/check.sh resilience-smoke`.

use crate::env::{build_supervised_provisioner, Environment, SchemeKind, SchemeParams};
use crate::serve::{parse_seed, serve_workload};
use crate::FigureTable;
use crate::TextTable;
use corp_faults::{generate, ControlFaultPlan, FaultConfig, SlotShard, StormConfig, StormPlan};
use corp_serve::{
    BackpressurePolicy, BreakerConfig, BreakerSupervisor, BrownoutConfig, DeadlineConfig,
    ReplaySpeed, ServeConfig, ServeDaemon, ServeOutcome,
};
use corp_sim::SimulationOptions;
use corp_trace::JobSpec;
use serde::Serialize;

/// File the resilience runner writes its machine-readable outcome to when
/// `--bench` is set (in the invoking directory;
/// `scripts/check.sh resilience-smoke` consumes it).
pub const RESILIENCE_BASELINE_FILE: &str = "BENCH_serve.json";

/// The guaranteed breaker exercise: eight consecutive request drops on one
/// shard, slots 2..=9. Three fallbacks trip the breaker at slot 4 (Open
/// until 8), the half-open probe at slot 8 hits another drop (Open until
/// 16, backoff doubled), and the probe at slot 16 lands after the burst
/// and closes it — a full trip/reprobe/recover cycle on every run,
/// whatever the seeded schedule adds on top.
const DROP_BURST_SLOTS: std::ops::RangeInclusive<u64> = 2..=9;

/// Parsed `corp-exp resilience` flags.
#[derive(Debug, Clone)]
pub struct ResilienceArgs {
    /// Seed for the workload, the storm plan, and the fault schedule
    /// (`--seed S`, non-zero).
    pub seed: u64,
    /// Synthesized workload size (`--jobs N`).
    pub jobs: usize,
    /// Scheduler shards behind the supervised control plane
    /// (`--shards K`).
    pub shards: usize,
    /// Chaos intensity for the seeded fault scenario (`--intensity X`);
    /// the fixed drop burst rides on top regardless.
    pub intensity: f64,
    /// Worker-pool width override (`--width W`).
    pub width: Option<usize>,
    /// Assert determinism + conservation after the run (`--smoke`).
    pub smoke: bool,
    /// Write [`RESILIENCE_BASELINE_FILE`] after the run (`--bench`).
    pub bench: bool,
}

impl Default for ResilienceArgs {
    fn default() -> Self {
        ResilienceArgs {
            seed: SchemeParams::default().seed,
            jobs: 120,
            shards: 3,
            intensity: 1.0,
            width: None,
            smoke: false,
            bench: false,
        }
    }
}

impl ResilienceArgs {
    /// Parses the flags following `resilience` on the command line. Bad
    /// flags produce an error string for the caller to print (exit 2).
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut out = ResilienceArgs::default();
        let mut i = 0;
        let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--seed" => {
                    out.seed = parse_seed(&value(args, i, "--seed")?)?;
                    i += 2;
                }
                "--jobs" => {
                    out.jobs = value(args, i, "--jobs")?
                        .parse::<usize>()
                        .map_err(|_| "invalid --jobs: expected a count".to_string())?;
                    i += 2;
                }
                "--shards" => {
                    let s = value(args, i, "--shards")?
                        .parse::<usize>()
                        .map_err(|_| "invalid --shards: expected a count".to_string())?;
                    if s == 0 {
                        return Err("invalid --shards: must be at least 1".to_string());
                    }
                    out.shards = s;
                    i += 2;
                }
                "--intensity" => {
                    let x = value(args, i, "--intensity")?
                        .parse::<f64>()
                        .map_err(|_| "invalid --intensity: expected a number".to_string())?;
                    if !x.is_finite() || x < 0.0 {
                        return Err("invalid --intensity: must be finite and >= 0".to_string());
                    }
                    out.intensity = x;
                    i += 2;
                }
                "--width" => {
                    let w = value(args, i, "--width")?
                        .parse::<usize>()
                        .map_err(|_| "invalid --width: expected a count".to_string())?;
                    if w == 0 {
                        return Err("invalid --width: must be at least 1".to_string());
                    }
                    out.width = Some(w);
                    i += 2;
                }
                "--smoke" => {
                    out.smoke = true;
                    i += 1;
                }
                "--bench" => {
                    out.bench = true;
                    i += 1;
                }
                // Global corp-exp flags that may trail the subcommand.
                "--fast" | "--json" => {
                    i += 1;
                }
                other => return Err(format!("unknown resilience flag `{other}`")),
            }
        }
        Ok(out)
    }
}

/// The storm-compressed workload: the standard cluster workload with its
/// arrival slots mapped through the seeded storm plan. Compression is
/// monotone, so the stream stays arrival-ordered for the daemon's lazy
/// feed.
pub fn chaos_workload(env: Environment, jobs: usize, seed: u64) -> Vec<JobSpec> {
    let base = serve_workload(env, jobs, seed);
    let last = base.iter().map(|j| j.arrival_slot).max().unwrap_or(0);
    let storm = StormPlan::generate(&StormConfig::scenario(seed, last + 1));
    base.into_iter()
        .map(|mut j| {
            j.arrival_slot = storm.compress(j.arrival_slot);
            j
        })
        .collect()
}

/// The serve configuration a chaos run uses: a tight queue, uniform
/// 30-second placement deadlines, and a hair-trigger brownout ladder, so
/// the overload machinery actually engages under the storm bursts instead
/// of idling through them.
fn chaos_config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 12,
        policy: BackpressurePolicy::Block,
        speed: ReplaySpeed::Infinite,
        deadlines: DeadlineConfig::uniform(30_000_000),
        brownout: Some(BrownoutConfig {
            high_depth: 6,
            low_depth: 2,
            latency_high_micros: 20_000_000,
            recovery_ticks: 2,
        }),
        ..ServeConfig::default()
    }
}

/// Runs one chaos-serve cell and returns the outcome plus every
/// unrecovered control-plane error the coordinator surfaced (stringified
/// — [`corp_cluster::ClusterError`] is not serializable and the list is
/// usually empty).
pub fn run_resilience(fast: bool, args: &ResilienceArgs) -> (ServeOutcome, Vec<String>) {
    let env = Environment::Cluster;
    let jobs = chaos_workload(env, args.jobs, args.seed);
    let compressed_last = jobs.iter().map(|j| j.arrival_slot).max().unwrap_or(0);

    // One schedule drives both planes: the engine timeline (VM crashes,
    // stragglers, poisoned views) and the control plan (kills, drops,
    // delays), with the fixed drop burst folded into the latter.
    let mut fault_config = FaultConfig::scenario(args.seed, args.intensity);
    fault_config.horizon_slots = (compressed_last + 24).max(32);
    let schedule = generate(&fault_config, env.cluster().vms.len(), args.shards);
    let mut drops = schedule.control.drop_requests.clone();
    drops.extend(DROP_BURST_SLOTS.map(|slot| SlotShard {
        slot,
        shard: args.shards - 1,
    }));
    let control = ControlFaultPlan::new(
        schedule.control.kills.clone(),
        drops,
        schedule.control.delay_replies.clone(),
    );

    let params = SchemeParams {
        fast_dnn: fast,
        seed: args.seed,
        pool_width: args.width,
        ..Default::default()
    };
    let inner =
        build_supervised_provisioner(SchemeKind::Corp, env, &params, args.shards, Some(control));
    let mut breaker = BreakerSupervisor::new(inner, BreakerConfig::default());
    let mut daemon = ServeDaemon::new(
        env.cluster(),
        SimulationOptions {
            measure_decision_time: false,
            ..Default::default()
        },
        chaos_config(),
    )
    .with_fault_timeline(schedule.timeline);
    let outcome = daemon.run(&mut breaker, jobs);
    let errors = breaker
        .inner()
        .errors()
        .iter()
        .map(|e| e.to_string())
        .collect();
    (outcome, errors)
}

/// Jobs the run lost track of: offered minus every terminal bucket
/// (engine terminal states plus the admission queue's shed / rejected /
/// expired). Zero on every correct run — this is the conservation law the
/// admission proptests pin per-operation, checked end to end.
fn jobs_lost(offered: usize, outcome: &ServeOutcome) -> i64 {
    let r = &outcome.report;
    let accounted = (r.sim.completed + r.sim.rejected + r.sim.unfinished) as i64
        + (r.queue.shed + r.queue.rejected + r.queue.expired) as i64;
    offered as i64 - accounted
}

/// Machine-readable outcome of one chaos-serve run
/// ([`RESILIENCE_BASELINE_FILE`] contents).
#[derive(Debug, Clone, Serialize)]
pub struct ResilienceBaseline {
    /// Workload / schedule seed.
    pub seed: u64,
    /// Jobs offered to the daemon.
    pub offered: usize,
    /// Scheduler shards.
    pub shards: usize,
    /// Chaos intensity.
    pub intensity: f64,
    /// True when a full rerun serialized to identical bytes.
    pub determinism: bool,
    /// Offered minus every terminal bucket; must be 0.
    pub jobs_lost: i64,
    /// Engine-side completions.
    pub completed: usize,
    /// Engine-side unfinished jobs at shutdown.
    pub unfinished: usize,
    /// Queue expiries (placement deadline passed while waiting).
    pub expired: u64,
    /// Placement deadline hits / misses.
    pub deadline_hits: u64,
    /// Placements that landed after their deadline.
    pub deadline_misses: u64,
    /// Brownout escalations / recoveries and the highest rung reached.
    pub brownout_escalations: u64,
    /// Ladder step-downs after recovery.
    pub brownout_recoveries: u64,
    /// Highest brownout rung reached (0 = never left Normal).
    pub brownout_max_rung: u8,
    /// Circuit-breaker trips (→ Open).
    pub breaker_opens: u64,
    /// Half-open probes issued.
    pub breaker_half_opens: u64,
    /// Breaker recoveries (→ Closed).
    pub breaker_closes: u64,
    /// Slots breakers held shards isolated.
    pub isolated_slots: u64,
    /// Workers restarted by the supervisor.
    pub worker_restarts: u64,
    /// Unrecovered control-plane errors (stringified).
    pub errors: Vec<String>,
}

/// Executes `corp-exp resilience` end to end and renders the report
/// table. Returns an error string (for exit 2) on failed smoke
/// assertions or an unwritable baseline file.
pub fn resilience_experiment(fast: bool, args: &ResilienceArgs) -> Result<FigureTable, String> {
    let (outcome, errors) = run_resilience(fast, args);
    let serialized = serde::json::to_string(&outcome.report);
    let r = &outcome.report;
    let lost = jobs_lost(args.jobs, &outcome);
    let cp = r.sim.control_plane.clone().unwrap_or_default();

    // Replay the whole catastrophe and require identical bytes: the
    // schedule, the storm, the breakers, and the ladder are all pure
    // functions of the seed, so a single differing byte is a bug.
    let determinism = if args.smoke || args.bench {
        let (again, _) = run_resilience(fast, args);
        serde::json::to_string(&again.report) == serialized
    } else {
        true
    };

    if args.smoke {
        if !determinism {
            return Err("resilience smoke: rerun produced a different report".to_string());
        }
        if lost != 0 {
            return Err(format!("resilience smoke: {lost} jobs lost (conservation)"));
        }
        if cp.breaker_opens == 0 || cp.breaker_closes == 0 {
            return Err(format!(
                "resilience smoke: breaker never cycled (opens {}, closes {})",
                cp.breaker_opens, cp.breaker_closes
            ));
        }
        if r.placement_latency.count == 0 {
            return Err("resilience smoke: no placement latencies measured".to_string());
        }
    }

    if args.bench {
        let baseline = ResilienceBaseline {
            seed: args.seed,
            offered: args.jobs,
            shards: args.shards,
            intensity: args.intensity,
            determinism,
            jobs_lost: lost,
            completed: r.sim.completed,
            unfinished: r.sim.unfinished,
            expired: r.queue.expired,
            deadline_hits: r.slo.deadline_hits,
            deadline_misses: r.slo.deadline_misses,
            brownout_escalations: r.brownout.escalations,
            brownout_recoveries: r.brownout.recoveries,
            brownout_max_rung: r.brownout.max_rung,
            breaker_opens: cp.breaker_opens,
            breaker_half_opens: cp.breaker_half_opens,
            breaker_closes: cp.breaker_closes,
            isolated_slots: cp.isolated_slots,
            worker_restarts: cp.worker_restarts,
            errors: errors.clone(),
        };
        std::fs::write(RESILIENCE_BASELINE_FILE, serde::json::to_string(&baseline))
            .map_err(|e| format!("resilience: cannot write {RESILIENCE_BASELINE_FILE}: {e}"))?;
    }

    let mut table = TextTable::new(
        format!(
            "Chaos-serve: {} jobs (storm-compressed), {} shards, intensity {}, \
             deadlines + brownout + breakers armed",
            args.jobs, args.shards, args.intensity
        ),
        &["metric", "value"],
    );
    let mut row = |k: &str, v: String| table.push_row(vec![k.to_string(), v]);
    row("jobs offered", format!("{}", args.jobs));
    row("jobs lost (conservation)", format!("{lost}"));
    row(
        "completed / unfinished / engine-rejected",
        format!(
            "{} / {} / {}",
            r.sim.completed, r.sim.unfinished, r.sim.rejected
        ),
    );
    row(
        "queue shed / rejected / expired",
        format!(
            "{} / {} / {}",
            r.queue.shed, r.queue.rejected, r.queue.expired
        ),
    );
    row(
        "deadline hits / misses",
        format!("{} / {}", r.slo.deadline_hits, r.slo.deadline_misses),
    );
    row(
        "brownout max rung / escalations / recoveries",
        format!(
            "{} / {} / {}",
            r.brownout.max_rung, r.brownout.escalations, r.brownout.recoveries
        ),
    );
    row(
        "breaker opens / half-opens / closes",
        format!(
            "{} / {} / {}",
            cp.breaker_opens, cp.breaker_half_opens, cp.breaker_closes
        ),
    );
    row("breaker-isolated slots", format!("{}", cp.isolated_slots));
    row(
        "worker kills / restarts / inline slots",
        format!(
            "{} / {} / {}",
            cp.worker_kills, cp.worker_restarts, cp.inline_slots
        ),
    );
    row(
        "messages dropped / delayed",
        format!("{} / {}", cp.messages_dropped, cp.messages_delayed),
    );
    row(
        "placement latency p95",
        format!("{:.1} s", r.placement_latency.p95_micros / 1e6),
    );
    row("queue high-water", format!("{}", r.queue.high_water));
    row("ticks (slots)", format!("{}", r.ticks));
    row(
        "unrecovered control-plane errors",
        format!("{}", errors.len()),
    );
    for e in &errors {
        row("error", e.clone());
    }

    Ok(FigureTable {
        id: "resilience".to_string(),
        table,
        notes: vec![
            format!(
                "Rerun byte-identity {}; every fault, storm window, and breaker \
                 transition is a pure function of seed {}.",
                if args.smoke || args.bench {
                    if determinism {
                        "verified"
                    } else {
                        "FAILED"
                    }
                } else {
                    "not checked (pass --smoke)"
                },
                args.seed
            ),
            "Zero-jobs-lost: offered == completed + unfinished + engine-rejected \
             + shed + queue-rejected + expired, end to end under combined chaos."
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn resilience_args_parse_full_flag_set() {
        let args = ResilienceArgs::parse(&strings(&[
            "--seed",
            "11",
            "--jobs",
            "50",
            "--shards",
            "2",
            "--intensity",
            "0.5",
            "--width",
            "2",
            "--smoke",
            "--bench",
        ]))
        .expect("parse");
        assert_eq!(args.seed, 11);
        assert_eq!(args.jobs, 50);
        assert_eq!(args.shards, 2);
        assert_eq!(args.intensity, 0.5);
        assert_eq!(args.width, Some(2));
        assert!(args.smoke);
        assert!(args.bench);
    }

    #[test]
    fn resilience_args_reject_bad_values() {
        assert!(ResilienceArgs::parse(&strings(&["--shards", "0"]))
            .unwrap_err()
            .contains("--shards"));
        assert!(ResilienceArgs::parse(&strings(&["--intensity", "-1"]))
            .unwrap_err()
            .contains("--intensity"));
        assert!(ResilienceArgs::parse(&strings(&["--frobnicate"]))
            .unwrap_err()
            .contains("unknown resilience flag"));
    }

    #[test]
    fn chaos_workload_is_deterministic_ordered_and_compressed() {
        let a = chaos_workload(Environment::Cluster, 60, 7);
        let b = chaos_workload(Environment::Cluster, 60, 7);
        assert_eq!(
            serde::json::to_string(&a),
            serde::json::to_string(&b),
            "same seed must yield the same compressed workload"
        );
        for pair in a.windows(2) {
            assert!(
                pair[0].arrival_slot <= pair[1].arrival_slot,
                "compression must preserve arrival order"
            );
        }
        let plain = serve_workload(Environment::Cluster, 60, 7);
        let plain_total: u64 = plain.iter().map(|j| j.arrival_slot).sum();
        let chaos_total: u64 = a.iter().map(|j| j.arrival_slot).sum();
        assert!(
            chaos_total < plain_total,
            "storm compression must actually pull arrivals earlier"
        );
    }
}
