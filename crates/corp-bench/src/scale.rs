//! The `corp-exp scale` subcommand: a streaming soak that drives the
//! arena/SoA data model at fleet scale.
//!
//! The figure runners materialize their workloads — hundreds of jobs, so
//! who cares. This runner exists to prove the opposite regime: tens of
//! thousands of VMs and a million-job arrival stream pulled lazily through
//! [`StreamingSimulation`] with
//! [`reclaim_completed`](SimulationOptions::reclaim_completed) on, where
//! engine memory must stay bounded by *concurrently live* jobs no matter
//! how long the trace runs. The run records throughput (slots/s, jobs/s),
//! the arena high-water mark, and the process peak RSS into
//! [`SCALE_BASELINE_FILE`]; `scripts/check.sh scale-smoke` replays a small
//! configuration and asserts the memory-boundedness invariant.

use crate::serve::parse_seed;
use crate::{FigureTable, TextTable};
use corp_cluster::{ShardConfig, ShardedProvisioner};
use corp_sim::{
    Cluster, EnvironmentProfile, Provisioner, SimulationOptions, StaticPeakProvisioner,
    StreamingSimulation,
};
use corp_trace::{JobSource, SyntheticSource, WorkloadConfig};
use serde::Serialize;

/// File the scale runner writes its machine-readable result to (in the
/// invoking directory; `scripts/check.sh scale-smoke` consumes it).
pub const SCALE_BASELINE_FILE: &str = "BENCH_scale.json";

/// Parsed `corp-exp scale` flags.
#[derive(Debug, Clone)]
pub struct ScaleArgs {
    /// Target VM fleet size (`--vms N`; rounded up to whole PMs).
    pub vms: usize,
    /// Jobs to stream through the fleet (`--jobs N`).
    pub jobs: usize,
    /// Workload seed (`--seed S`, non-zero).
    pub seed: u64,
    /// Run the soak behind a `K`-shard striped-store control plane instead
    /// of the direct monolithic provisioner (`--shards K`; `None` =
    /// monolithic).
    pub shards: Option<usize>,
    /// Small CI configuration plus invariant assertions (`--smoke`).
    pub smoke: bool,
}

impl Default for ScaleArgs {
    fn default() -> Self {
        ScaleArgs {
            vms: 50_000,
            jobs: 1_000_000,
            seed: 0x5CA1E,
            shards: None,
            smoke: false,
        }
    }
}

impl ScaleArgs {
    /// Parses the flags following `scale` on the command line. Unknown
    /// flags and malformed values produce an error string for the caller
    /// to print (exit 2), never a panic.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut out = ScaleArgs::default();
        let mut i = 0;
        let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--vms" => {
                    let v = value(args, i, "--vms")?
                        .parse::<usize>()
                        .map_err(|_| "invalid --vms: expected a count".to_string())?;
                    if v == 0 {
                        return Err("invalid --vms: must be at least 1".to_string());
                    }
                    out.vms = v;
                    i += 2;
                }
                "--jobs" => {
                    let j = value(args, i, "--jobs")?
                        .parse::<usize>()
                        .map_err(|_| "invalid --jobs: expected a count".to_string())?;
                    if j == 0 {
                        return Err("invalid --jobs: must be at least 1".to_string());
                    }
                    out.jobs = j;
                    i += 2;
                }
                "--seed" => {
                    out.seed = parse_seed(&value(args, i, "--seed")?)?;
                    i += 2;
                }
                "--shards" => {
                    let k = value(args, i, "--shards")?
                        .parse::<usize>()
                        .map_err(|_| "invalid --shards: expected a count".to_string())?;
                    if k == 0 {
                        return Err("invalid --shards: must be at least 1".to_string());
                    }
                    out.shards = Some(k);
                    i += 2;
                }
                "--smoke" => {
                    // The CI configuration: small enough to finish in
                    // seconds, large enough that an unbounded arena would
                    // be unmistakable against the concurrency level.
                    out.smoke = true;
                    out.vms = 256;
                    out.jobs = 5_000;
                    i += 1;
                }
                // Global corp-exp flags that may trail the subcommand.
                "--fast" | "--json" => {
                    i += 1;
                }
                other => return Err(format!("unknown scale flag `{other}`")),
            }
        }
        Ok(out)
    }
}

/// Machine-readable result of one soak run ([`SCALE_BASELINE_FILE`]).
#[derive(Debug, Clone, Serialize)]
pub struct ScaleResult {
    /// Actual VM fleet size driven.
    pub vms: usize,
    /// Jobs pulled from the stream and submitted.
    pub jobs: usize,
    /// Whether this was the small `--smoke` configuration.
    pub smoke: bool,
    /// Workload seed.
    pub seed: u64,
    /// Scheduler shards the soak ran behind (0 = direct monolithic
    /// provisioner, no control plane).
    pub shards: usize,
    /// Placement-store claims committed via the optimistic fast path
    /// (0 for monolithic runs).
    pub fast_path_hits: u64,
    /// Fast-path attempts refused by the per-VM writer check (0 for
    /// monolithic runs).
    pub stripe_conflicts: u64,
    /// Wall-clock seconds of the simulation loop.
    pub run_secs: f64,
    /// Slots simulated.
    pub slots_run: u64,
    /// Simulated slots per wall-clock second.
    pub slots_per_sec: f64,
    /// Completed jobs per wall-clock second.
    pub jobs_per_sec: f64,
    /// Completed job count.
    pub completed: usize,
    /// Arrival-time rejections.
    pub rejected: usize,
    /// Jobs unfinished at the slot cap (0 for a drained soak).
    pub unfinished: usize,
    /// Arena high-water mark: job slots ever allocated. With reclaim on,
    /// this is bounded by peak *concurrent* jobs — the memory-boundedness
    /// headline — while `jobs` counts everything that streamed through.
    pub arena_slots: usize,
    /// `arena_slots / jobs`: how far below trace scale the store stayed.
    pub arena_ratio: f64,
    /// Process peak resident set (VmHWM) in MB; 0 where unavailable.
    pub peak_rss_mb: f64,
}

/// Process peak resident set in KB from `/proc/self/status` (`VmHWM`);
/// `None` off Linux or if the field is missing.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The soak fleet: Palmetto-profile PMs (4 VMs each), scaled to cover the
/// requested VM count.
fn scale_fleet(vms: usize) -> Cluster {
    let profile = EnvironmentProfile::palmetto_cluster();
    let vms_per_pm = profile.vms_per_pm.max(1);
    Cluster::from_profile(profile.with_num_pms(vms.div_ceil(vms_per_pm)))
}

/// The soak workload mix: the e2e benchmark's job shape (2–5 min
/// durations, scaled demand) with the arrival rate chosen so steady-state
/// concurrency saturates roughly an eighth of the fleet — enough pressure
/// that the arena is exercised, bounded enough that the soak drains.
fn scale_config(vms: usize, jobs: usize) -> WorkloadConfig {
    let base = WorkloadConfig {
        num_jobs: jobs,
        min_duration_secs: 120.0,
        max_duration_secs: 300.0,
        demand_scale: 1.5,
        ..WorkloadConfig::default()
    };
    let mean_duration_slots =
        (base.min_duration_secs + base.max_duration_secs) / 2.0 / base.slot_seconds;
    let target_concurrency = (vms as f64 / 8.0).max(8.0);
    WorkloadConfig {
        mean_interarrival_slots: mean_duration_slots / target_concurrency,
        ..base
    }
}

/// Runs one soak: streams the workload through the reclaiming engine and
/// measures throughput, the arena high-water mark, and peak RSS. Pure
/// measurement — no files, no assertions — so tests can drive it
/// directly.
pub fn run_scale(args: &ScaleArgs) -> ScaleResult {
    let cluster = scale_fleet(args.vms);
    let vms = cluster.vms.len();
    let source = SyntheticSource::with_total(scale_config(vms, args.jobs), args.seed, args.jobs)
        .into_specs();
    let mut sim = StreamingSimulation::new(
        cluster,
        source,
        SimulationOptions {
            measure_decision_time: false,
            reclaim_completed: true,
            ..Default::default()
        },
    );
    let mut provisioner: Box<dyn Provisioner + Send> = match args.shards {
        Some(k) => {
            let inners: Vec<Box<dyn Provisioner + Send>> = (0..k)
                .map(|_| Box::new(StaticPeakProvisioner) as _)
                .collect();
            Box::new(ShardedProvisioner::new(
                "static-peak",
                inners,
                ShardConfig::default(),
            ))
        }
        None => Box::new(StaticPeakProvisioner),
    };
    let started = std::time::Instant::now();
    let report = sim.run(provisioner.as_mut());
    let run_secs = started.elapsed().as_secs_f64();
    let wall = run_secs.max(1e-9);
    let arena_slots = sim.engine().store().capacity();
    let cp = report.control_plane.as_ref();
    ScaleResult {
        vms,
        jobs: sim.submitted(),
        smoke: args.smoke,
        seed: args.seed,
        shards: args.shards.unwrap_or(0),
        fast_path_hits: cp.map_or(0, |c| c.fast_path_hits),
        stripe_conflicts: cp.map_or(0, |c| c.stripe_conflicts),
        run_secs,
        slots_run: report.slots_run,
        slots_per_sec: report.slots_run as f64 / wall,
        jobs_per_sec: report.completed as f64 / wall,
        completed: report.completed,
        rejected: report.rejected,
        unfinished: report.unfinished,
        arena_slots,
        arena_ratio: arena_slots as f64 / args.jobs.max(1) as f64,
        peak_rss_mb: peak_rss_kb().map_or(0.0, |kb| kb as f64 / 1024.0),
    }
}

/// The `--smoke` invariants: the stream drained, jobs are conserved, the
/// arena stayed far below trace length, and throughput is sane.
fn check_smoke(result: &ScaleResult, args: &ScaleArgs) -> Result<(), String> {
    if result.jobs != args.jobs {
        return Err(format!(
            "scale smoke: stream truncated — submitted {} of {} jobs",
            result.jobs, args.jobs
        ));
    }
    if result.completed + result.rejected + result.unfinished != args.jobs {
        return Err(format!(
            "scale smoke: job conservation violated ({} + {} + {} != {})",
            result.completed, result.rejected, result.unfinished, args.jobs
        ));
    }
    if result.unfinished != 0 {
        return Err(format!(
            "scale smoke: {} jobs unfinished — the soak must drain",
            result.unfinished
        ));
    }
    // The tentpole invariant: the arena's high-water mark tracks peak
    // concurrency, not trace length. A store that kept terminal jobs
    // would sit at exactly `jobs` slots.
    if result.arena_ratio >= 0.25 {
        return Err(format!(
            "scale smoke: arena grew to {} slots for {} streamed jobs \
             (ratio {:.2}) — reclaim is not bounding memory",
            result.arena_slots, args.jobs, result.arena_ratio
        ));
    }
    let positive = |v: f64| v.is_finite() && v > 0.0;
    if !positive(result.slots_per_sec) || !positive(result.jobs_per_sec) {
        return Err(format!(
            "scale smoke: degenerate throughput ({:.1} slots/s, {:.1} jobs/s)",
            result.slots_per_sec, result.jobs_per_sec
        ));
    }
    Ok(())
}

/// Executes `corp-exp scale` end to end: runs the soak, writes
/// [`SCALE_BASELINE_FILE`], applies the `--smoke` assertions, and renders
/// the summary table. Returns an error string (for exit 2) on a failed
/// assertion.
pub fn scale_experiment(args: &ScaleArgs) -> Result<FigureTable, String> {
    let result = run_scale(args);
    std::fs::write(SCALE_BASELINE_FILE, serde::json::to_string(&result))
        .map_err(|e| format!("write {SCALE_BASELINE_FILE}: {e}"))?;
    // Job conservation holds for every configuration, sharded or not: a
    // control plane losing (or double-placing) jobs would show up here
    // before any throughput number means anything.
    if result.completed + result.rejected + result.unfinished != result.jobs {
        return Err(format!(
            "scale: job conservation violated ({} + {} + {} != {})",
            result.completed, result.rejected, result.unfinished, result.jobs
        ));
    }
    if args.smoke {
        check_smoke(&result, args)?;
    }
    let arm = match args.shards {
        Some(k) => format!("{k}-shard striped store"),
        None => "static-peak".to_string(),
    };
    let mut table = TextTable::new(
        format!(
            "Scale — streaming soak, {} VMs, {} jobs, reclaiming arena ({arm})",
            result.vms, result.jobs
        ),
        &["metric", "value"],
    );
    let mut row = |k: &str, v: String| table.push_row(vec![k.to_string(), v]);
    row("sim wall (s)", format!("{:.3}", result.run_secs));
    row("slots simulated", format!("{}", result.slots_run));
    row("slots/s", format!("{:.0}", result.slots_per_sec));
    row("jobs/s", format!("{:.0}", result.jobs_per_sec));
    row(
        "completed / rejected / unfinished",
        format!(
            "{} / {} / {}",
            result.completed, result.rejected, result.unfinished
        ),
    );
    row(
        "arena high-water (job slots)",
        format!("{}", result.arena_slots),
    );
    row("arena / trace ratio", format!("{:.4}", result.arena_ratio));
    row("peak RSS (MB)", format!("{:.1}", result.peak_rss_mb));
    if result.shards > 0 {
        row("shards", format!("{}", result.shards));
        row("fast-path commits", format!("{}", result.fast_path_hits));
        row("stripe conflicts", format!("{}", result.stripe_conflicts));
    }
    Ok(FigureTable {
        id: "scale".into(),
        table,
        notes: vec![
            format!("machine-readable result written to {SCALE_BASELINE_FILE}"),
            "arena high-water counts job slots ever allocated; with reclaim on it is \
             bounded by peak concurrent jobs, independent of trace length"
                .into(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_smoke_shrinks_the_configuration() {
        let args =
            ScaleArgs::parse(&["--smoke".to_string(), "--seed".to_string(), "7".to_string()])
                .unwrap();
        assert!(args.smoke);
        assert_eq!(args.vms, 256);
        assert_eq!(args.jobs, 5_000);
        assert_eq!(args.seed, 7);
    }

    #[test]
    fn parse_rejects_unknown_flags_and_zero_values() {
        assert!(ScaleArgs::parse(&["--bogus".to_string()]).is_err());
        assert!(ScaleArgs::parse(&["--vms".to_string(), "0".to_string()]).is_err());
        assert!(ScaleArgs::parse(&["--jobs".to_string()]).is_err());
    }

    #[test]
    fn fleet_covers_the_requested_vm_count() {
        assert!(scale_fleet(10).vms.len() >= 10);
        assert_eq!(scale_fleet(256).vms.len(), 256);
    }

    #[test]
    fn parse_shards_selects_the_striped_control_plane() {
        let args = ScaleArgs::parse(&["--shards".to_string(), "4".to_string()]).unwrap();
        assert_eq!(args.shards, Some(4));
        assert!(ScaleArgs::parse(&["--shards".to_string(), "0".to_string()]).is_err());
    }

    #[test]
    fn tiny_sharded_soak_conserves_jobs_and_uses_the_fast_path() {
        let args = ScaleArgs {
            vms: 32,
            jobs: 400,
            seed: 11,
            shards: Some(2),
            smoke: true,
        };
        let result = run_scale(&args);
        check_smoke(&result, &args).expect("sharded smoke soak must pass the invariants");
        assert_eq!(result.shards, 2);
        assert!(
            result.fast_path_hits > 0,
            "sharded soak never took the fast path: {result:?}"
        );
    }

    #[test]
    fn tiny_soak_drains_and_bounds_the_arena() {
        let args = ScaleArgs {
            vms: 32,
            jobs: 400,
            seed: 11,
            shards: None,
            smoke: true,
        };
        let result = run_scale(&args);
        check_smoke(&result, &args).expect("tiny smoke soak must pass the invariants");
        assert!(
            result.arena_slots < args.jobs / 4,
            "arena {} slots for {} jobs",
            result.arena_slots,
            args.jobs
        );
    }
}
