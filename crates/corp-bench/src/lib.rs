//! Experiment harness for the CORP reproduction.
//!
//! One runner per table/figure of the paper's evaluation (Section IV):
//!
//! | paper artifact | runner | what it sweeps |
//! |---|---|---|
//! | Table II | [`experiments::table2`] | parameter settings |
//! | Fig. 6  | [`experiments::fig6`]  | prediction error rate vs #jobs (cluster) |
//! | Fig. 7  | [`experiments::fig7`]  | per-resource utilization vs #jobs (cluster) |
//! | Fig. 8  | [`experiments::fig8`]  | overall utilization vs SLO violation rate (cluster) |
//! | Fig. 9  | [`experiments::fig9`]  | SLO violation rate vs confidence level (cluster) |
//! | Fig. 10 | [`experiments::fig10`] | allocation overhead for 300 jobs (cluster) |
//! | Fig. 11 | [`experiments::fig11`] | per-resource utilization vs #jobs (EC2) |
//! | Fig. 12 | [`experiments::fig12`] | overall utilization vs SLO violation rate (EC2) |
//! | Fig. 13 | [`experiments::fig13`] | SLO violation rate vs confidence level (EC2) |
//! | Fig. 14 | [`experiments::fig14`] | allocation overhead for 300 jobs (EC2) |
//! | DESIGN.md §6 | [`experiments::ablations`] | CORP component ablations |
//! | DESIGN.md §2 (corp-cluster) | [`experiments::scalability`] | throughput/conflicts vs scheduler shard count |
//!
//! Sweeps fan out across OS threads with `std::thread::scope` — every cell
//! of a figure is an independent, deterministic simulation, so the fan-out
//! is embarrassingly parallel and data-race-free by construction.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Numerical kernels index several same-length arrays in lockstep; the
// index-based loops are clearer than zipped iterator chains there.
#![allow(clippy::needless_range_loop)]

pub mod env;
pub mod experiments;
pub mod resilience;
pub mod scale;
pub mod serve;
pub mod table;

pub use env::{
    build_sharded_provisioner, historical_histories, run_cell_sharded, Environment, SchemeKind,
    ALL_SCHEMES,
};
pub use experiments::{
    ablations, fig10, fig11, fig12, fig13, fig14, fig6, fig7, fig8, fig9, scalability, table2,
    FigureTable, SHARD_COUNTS,
};
pub use resilience::{
    chaos_workload, resilience_experiment, run_resilience, ResilienceArgs, RESILIENCE_BASELINE_FILE,
};
pub use scale::{run_scale, scale_experiment, ScaleArgs, ScaleResult, SCALE_BASELINE_FILE};
pub use serve::{
    parse_seed, run_serve, run_serve_sharded, serve_experiment, serve_workload, ServeArgs,
};
pub use table::TextTable;
