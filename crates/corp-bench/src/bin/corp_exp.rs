//! `corp-exp` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```text
//! corp-exp all            # every artifact (slow: trains the paper DNN)
//! corp-exp fig6 fig7      # specific figures
//! corp-exp --fast all     # small DNN, quick smoke pass
//! corp-exp scalability    # sharded-control-plane sweep (1..8 shards)
//! corp-exp faults         # availability under deterministic fault injection
//! corp-exp perf           # hot-path throughput baseline (BENCH_hotpath.json)
//! corp-exp e2e            # end-to-end throughput + shard sweep (BENCH_e2e.json)
//! corp-exp e2e --shards 8 # pin the sharded arms to one shard count
//! corp-exp perf --e2e     # alias for the e2e runner
//! corp-exp --json fig6    # machine-readable output (one JSON array)
//! ```
//!
//! `e2e` drives a 1024-VM fleet and is excluded from `all`; ask for it by
//! name (or via `--e2e`). `serve` runs the event-driven daemon and takes
//! its own flags (`--replay PATH`, `--record PATH`, `--speed inf|N`,
//! `--seed S`, `--jobs N`, `--queue-cap C`,
//! `--policy block|shed-oldest|reject-new`, `--width W`, `--shards K`,
//! `--smoke`):
//!
//! ```text
//! corp-exp serve --fast --jobs 120 --speed inf --seed 7
//! corp-exp serve --replay t.trace --policy shed-oldest --queue-cap 16
//! ```
//!
//! `resilience` is chaos-serve: the daemon under combined control-plane
//! faults and arrival storms with deadlines, the brownout ladder, and
//! per-shard circuit breakers armed (`--seed S`, `--jobs N`,
//! `--shards K`, `--intensity X`, `--width W`, `--smoke`, `--bench`):
//!
//! ```text
//! corp-exp resilience --fast --smoke --bench   # writes BENCH_serve.json
//! corp-exp resilience --intensity 2 --shards 4
//! ```
//!
//! `scale` is the streaming soak: a lazily-pulled synthetic arrival
//! stream through the reclaiming arena engine, with throughput, arena
//! high-water, and peak RSS recorded to `BENCH_scale.json` (`--vms N`,
//! `--jobs N`, `--seed S`, `--shards K`, `--smoke`):
//!
//! ```text
//! corp-exp scale --smoke        # CI configuration + invariant checks
//! corp-exp scale                # 50k VMs, 1M jobs
//! corp-exp scale --shards 8     # soak behind the striped-store control plane
//! ```

use corp_bench::experiments;
use corp_bench::resilience::{resilience_experiment, ResilienceArgs};
use corp_bench::scale::{scale_experiment, ScaleArgs};
use corp_bench::serve::{serve_experiment, ServeArgs};
use corp_bench::FigureTable;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        run_serve(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("resilience") {
        run_resilience(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("scale") {
        run_scale(&args[1..]);
        return;
    }
    let fast = args.iter().any(|a| a == "--fast");
    let json = args.iter().any(|a| a == "--json");
    // `--shards K` pins the e2e runner's sharded arms to one shard count
    // instead of the default 1/2/4/8 sweep.
    let mut args = args;
    let mut shards: Option<usize> = None;
    if let Some(i) = args.iter().position(|a| a == "--shards") {
        let value = args.get(i + 1).and_then(|v| v.parse::<usize>().ok());
        match value {
            Some(k) if k >= 1 => {
                shards = Some(k);
                args.drain(i..=i + 1);
            }
            _ => {
                eprintln!("--shards needs a positive integer shard count");
                std::process::exit(2);
            }
        }
    }
    let args = args;
    let mut wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if args.iter().any(|a| a == "--e2e") {
        // `perf --e2e` means the end-to-end runner, not the hot-path one.
        wanted.retain(|w| *w != "perf");
        wanted.push("e2e");
    }
    let all = wanted.is_empty() || wanted.contains(&"all");

    type Runner = Box<dyn Fn(bool) -> FigureTable>;
    let runners: Vec<(&str, Runner)> = vec![
        ("table2", Box::new(|_| experiments::table2())),
        ("fig6", Box::new(experiments::fig6)),
        ("fig7", Box::new(experiments::fig7)),
        ("fig8", Box::new(experiments::fig8)),
        ("fig9", Box::new(experiments::fig9)),
        ("fig10", Box::new(experiments::fig10)),
        ("fig11", Box::new(experiments::fig11)),
        ("fig12", Box::new(experiments::fig12)),
        ("fig13", Box::new(experiments::fig13)),
        ("fig14", Box::new(experiments::fig14)),
        ("ablations", Box::new(experiments::ablations)),
        ("scalability", Box::new(experiments::scalability)),
        ("faults", Box::new(experiments::availability)),
        ("perf", Box::new(experiments::perf)),
        (
            "e2e",
            Box::new(move |fast| experiments::e2e_with_shards(fast, shards)),
        ),
    ];

    let mut matched = false;
    let mut collected: Vec<FigureTable> = Vec::new();
    for (name, run) in &runners {
        // The 1024-VM e2e benchmark only runs when asked for by name.
        if (all && *name != "e2e") || wanted.contains(name) {
            matched = true;
            let started = std::time::Instant::now();
            let figure = run(fast);
            if json {
                collected.push(figure);
            } else {
                println!("{figure}");
            }
            eprintln!(
                "[{name} regenerated in {:.1}s]",
                started.elapsed().as_secs_f64()
            );
        }
    }
    if json && matched {
        println!("{}", serde::json::to_string(&collected));
    }
    if !matched {
        eprintln!(
            "unknown experiment(s) {:?}; available: {}",
            wanted,
            runners
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    }
}

/// Handles `corp-exp serve <flags>`: parse, run, render. Bad flags and
/// failed smoke assertions exit 2, matching the unknown-experiment path.
fn run_serve(rest: &[String]) {
    let fast = rest.iter().any(|a| a == "--fast");
    let json = rest.iter().any(|a| a == "--json");
    let parsed = match ServeArgs::parse(rest) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let started = std::time::Instant::now();
    match serve_experiment(fast, &parsed) {
        Ok(figure) => {
            if json {
                println!("{}", serde::json::to_string(&vec![figure]));
            } else {
                println!("{figure}");
            }
            eprintln!(
                "[serve regenerated in {:.1}s]",
                started.elapsed().as_secs_f64()
            );
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// Handles `corp-exp scale <flags>`: parse, run, render. Bad flags and
/// failed smoke assertions (conservation, arena boundedness) exit 2.
fn run_scale(rest: &[String]) {
    let json = rest.iter().any(|a| a == "--json");
    let parsed = match ScaleArgs::parse(rest) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let started = std::time::Instant::now();
    match scale_experiment(&parsed) {
        Ok(figure) => {
            if json {
                println!("{}", serde::json::to_string(&vec![figure]));
            } else {
                println!("{figure}");
            }
            eprintln!(
                "[scale regenerated in {:.1}s]",
                started.elapsed().as_secs_f64()
            );
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// Handles `corp-exp resilience <flags>`: parse, run, render. Bad flags
/// and failed smoke assertions (determinism, conservation, breaker
/// cycling) exit 2.
fn run_resilience(rest: &[String]) {
    let fast = rest.iter().any(|a| a == "--fast");
    let json = rest.iter().any(|a| a == "--json");
    let parsed = match ResilienceArgs::parse(rest) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let started = std::time::Instant::now();
    match resilience_experiment(fast, &parsed) {
        Ok(figure) => {
            if json {
                println!("{}", serde::json::to_string(&vec![figure]));
            } else {
                println!("{figure}");
            }
            eprintln!(
                "[resilience regenerated in {:.1}s]",
                started.elapsed().as_secs_f64()
            );
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
