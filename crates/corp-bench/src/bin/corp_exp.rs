//! `corp-exp` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```text
//! corp-exp all            # every artifact (slow: trains the paper DNN)
//! corp-exp fig6 fig7      # specific figures
//! corp-exp --fast all     # small DNN, quick smoke pass
//! corp-exp scalability    # sharded-control-plane sweep (1..8 shards)
//! corp-exp faults         # availability under deterministic fault injection
//! corp-exp perf           # hot-path throughput baseline (BENCH_hotpath.json)
//! corp-exp --json fig6    # machine-readable output (one JSON array)
//! ```

use corp_bench::experiments;
use corp_bench::FigureTable;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let json = args.iter().any(|a| a == "--json");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let all = wanted.is_empty() || wanted.contains(&"all");

    type Runner = Box<dyn Fn(bool) -> FigureTable>;
    let runners: Vec<(&str, Runner)> = vec![
        ("table2", Box::new(|_| experiments::table2())),
        ("fig6", Box::new(experiments::fig6)),
        ("fig7", Box::new(experiments::fig7)),
        ("fig8", Box::new(experiments::fig8)),
        ("fig9", Box::new(experiments::fig9)),
        ("fig10", Box::new(experiments::fig10)),
        ("fig11", Box::new(experiments::fig11)),
        ("fig12", Box::new(experiments::fig12)),
        ("fig13", Box::new(experiments::fig13)),
        ("fig14", Box::new(experiments::fig14)),
        ("ablations", Box::new(experiments::ablations)),
        ("scalability", Box::new(experiments::scalability)),
        ("faults", Box::new(experiments::availability)),
        ("perf", Box::new(experiments::perf)),
    ];

    let mut matched = false;
    let mut collected: Vec<FigureTable> = Vec::new();
    for (name, run) in &runners {
        if all || wanted.contains(name) {
            matched = true;
            let started = std::time::Instant::now();
            let figure = run(fast);
            if json {
                collected.push(figure);
            } else {
                println!("{figure}");
            }
            eprintln!(
                "[{name} regenerated in {:.1}s]",
                started.elapsed().as_secs_f64()
            );
        }
    }
    if json && matched {
        println!("{}", serde::json::to_string(&collected));
    }
    if !matched {
        eprintln!(
            "unknown experiment(s) {:?}; available: {}",
            wanted,
            runners
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    }
}
