//! The `corp-exp serve` subcommand: CLI parsing, the serving-mode
//! experiment cell, and its report table.
//!
//! `serve` is a different shape from the figure runners: it takes flags
//! (`--replay`, `--speed`, `--seed`, …), so `corp_exp` special-cases it
//! before the figure loop and hands the raw argument list to
//! [`ServeArgs::parse`]. The actual run goes through [`run_serve`] (or
//! [`run_serve_sharded`] under `--shards`, which also surfaces coordinator
//! errors and recovery counters), which tests reuse to pin
//! byte-determinism across pool widths and replay speeds and cross-mode
//! equivalence against the batch simulation.

use crate::env::{
    build_provisioner, build_sharded_provisioner, Environment, SchemeKind, SchemeParams,
};
use crate::FigureTable;
use crate::TextTable;
use corp_serve::{BackpressurePolicy, ReplaySpeed, ServeConfig, ServeDaemon, ServeOutcome};
use corp_sim::SimulationOptions;
use corp_trace::JobSpec;
use std::path::PathBuf;

/// Validates a `--seed` value: it must parse as `u64` and be non-zero
/// (seed 0 is reserved as "unset" by several vendored-RNG call sites, and
/// a silently-defaulted seed would defeat the reproducibility contract).
pub fn parse_seed(s: &str) -> Result<u64, String> {
    match s.trim().parse::<u64>() {
        Ok(0) => Err("invalid --seed `0`: seed must be non-zero".to_string()),
        Ok(v) => Ok(v),
        Err(_) => Err(format!(
            "invalid --seed `{s}`: expected a non-zero unsigned integer"
        )),
    }
}

/// Parsed `corp-exp serve` flags.
#[derive(Debug, Clone)]
pub struct ServeArgs {
    /// External trace to stream (`--trace PATH`): a recorded corp trace
    /// (loaded whole — the format is line-oriented jobs) or a Google-style
    /// task-event CSV, decoded lazily through the `JobSource` pipeline so
    /// arbitrarily long CSVs feed the daemon in bounded memory.
    pub trace: Option<PathBuf>,
    /// Recorded trace to replay (`--replay PATH`); synthesized workload
    /// when absent.
    pub replay: Option<PathBuf>,
    /// Record the (synthesized) workload to this path before serving
    /// (`--record PATH`).
    pub record: Option<PathBuf>,
    /// Replay pacing (`--speed inf|N`).
    pub speed: ReplaySpeed,
    /// Workload/scheme seed (`--seed S`, non-zero).
    pub seed: u64,
    /// Synthesized workload size (`--jobs N`).
    pub jobs: usize,
    /// Admission-queue capacity (`--queue-cap C`).
    pub queue_cap: usize,
    /// Backpressure policy (`--policy block|shed-oldest|reject-new`).
    pub policy: BackpressurePolicy,
    /// Worker-pool width override (`--width W`).
    pub width: Option<usize>,
    /// Run behind a sharded control plane (`--shards K`); monolithic when
    /// absent. Sharded runs surface coordinator errors and recovery
    /// counters in the summary.
    pub shards: Option<usize>,
    /// Assert the smoke invariants after the run (`--smoke`).
    pub smoke: bool,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            trace: None,
            replay: None,
            record: None,
            speed: ReplaySpeed::Infinite,
            seed: SchemeParams::default().seed,
            jobs: 200,
            queue_cap: ServeConfig::default().queue_capacity,
            policy: BackpressurePolicy::Block,
            width: None,
            shards: None,
            smoke: false,
        }
    }
}

impl ServeArgs {
    /// Parses the flags following `serve` on the command line. Unknown
    /// flags and malformed values produce an error string for the caller
    /// to print (exit 2), never a panic.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut out = ServeArgs::default();
        let mut i = 0;
        let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--trace" => {
                    out.trace = Some(PathBuf::from(value(args, i, "--trace")?));
                    i += 2;
                }
                "--replay" => {
                    out.replay = Some(PathBuf::from(value(args, i, "--replay")?));
                    i += 2;
                }
                "--record" => {
                    out.record = Some(PathBuf::from(value(args, i, "--record")?));
                    i += 2;
                }
                "--speed" => {
                    out.speed = ReplaySpeed::parse(&value(args, i, "--speed")?)?;
                    i += 2;
                }
                "--seed" => {
                    out.seed = parse_seed(&value(args, i, "--seed")?)?;
                    i += 2;
                }
                "--jobs" => {
                    out.jobs = value(args, i, "--jobs")?
                        .parse::<usize>()
                        .map_err(|_| "invalid --jobs: expected a count".to_string())?;
                    i += 2;
                }
                "--queue-cap" => {
                    let cap = value(args, i, "--queue-cap")?
                        .parse::<usize>()
                        .map_err(|_| "invalid --queue-cap: expected a count".to_string())?;
                    if cap == 0 {
                        return Err("invalid --queue-cap: must be at least 1".to_string());
                    }
                    out.queue_cap = cap;
                    i += 2;
                }
                "--policy" => {
                    out.policy = BackpressurePolicy::parse(&value(args, i, "--policy")?)?;
                    i += 2;
                }
                "--width" => {
                    let w = value(args, i, "--width")?
                        .parse::<usize>()
                        .map_err(|_| "invalid --width: expected a count".to_string())?;
                    if w == 0 {
                        return Err("invalid --width: must be at least 1".to_string());
                    }
                    out.width = Some(w);
                    i += 2;
                }
                "--shards" => {
                    let s = value(args, i, "--shards")?
                        .parse::<usize>()
                        .map_err(|_| "invalid --shards: expected a count".to_string())?;
                    if s == 0 {
                        return Err("invalid --shards: must be at least 1".to_string());
                    }
                    out.shards = Some(s);
                    i += 2;
                }
                "--smoke" => {
                    out.smoke = true;
                    i += 1;
                }
                // Global corp-exp flags that may trail the subcommand.
                "--fast" | "--json" => {
                    i += 1;
                }
                other => return Err(format!("unknown serve flag `{other}`")),
            }
        }
        Ok(out)
    }
}

/// Runs one serving-mode cell: builds the scheme provisioner exactly as
/// `run_cell` does (same seeding, same pool knobs) and replays `jobs`
/// through the daemon. The pool width rides in through `params`, so the
/// serve determinism tests sweep it the same way `tests/pool_runtime.rs`
/// does for batch mode.
pub fn run_serve(
    env: Environment,
    scheme: SchemeKind,
    jobs: impl IntoIterator<Item = JobSpec>,
    params: &SchemeParams,
    config: ServeConfig,
) -> ServeOutcome {
    let mut provisioner = build_provisioner(scheme, env, params);
    let mut daemon = ServeDaemon::new(
        env.cluster(),
        SimulationOptions {
            measure_decision_time: false,
            ..Default::default()
        },
        config,
    );
    daemon.run(provisioner.as_mut(), jobs)
}

/// Like [`run_serve`], but behind a `shards`-way sharded control plane.
/// Also returns the coordinator's unrecovered errors, stringified — they
/// live on the provisioner, not in the report, and the summary prints
/// them when nonzero.
pub fn run_serve_sharded(
    env: Environment,
    scheme: SchemeKind,
    jobs: impl IntoIterator<Item = JobSpec>,
    params: &SchemeParams,
    shards: usize,
    config: ServeConfig,
) -> (ServeOutcome, Vec<String>) {
    let mut provisioner = build_sharded_provisioner(scheme, env, params, shards);
    let mut daemon = ServeDaemon::new(
        env.cluster(),
        SimulationOptions {
            measure_decision_time: false,
            ..Default::default()
        },
        config,
    );
    let outcome = daemon.run(&mut provisioner, jobs);
    let errors = provisioner.errors().iter().map(|e| e.to_string()).collect();
    (outcome, errors)
}

/// The workload a `serve` invocation uses when not replaying a recorded
/// file: the standard CORP cluster workload under the CLI seed (the same
/// generator `run_cell` drives, so cross-mode comparisons are meaningful).
pub fn serve_workload(env: Environment, num_jobs: usize, seed: u64) -> Vec<JobSpec> {
    env.workload(num_jobs, seed.wrapping_add(num_jobs as u64))
}

/// Opens `--trace PATH` as a job feed: a recorded corp trace (sniffed by
/// its header line, loaded whole — the format is one job per few lines)
/// or a Google-style task-event CSV decoded lazily through the
/// `JobSource` pipeline, so arbitrarily long CSVs stream into the daemon
/// in bounded memory. A malformed CSV row panics mid-stream with its byte
/// offset and line number — the daemon has no way to surface a decode
/// error once serving has started.
fn open_trace_feed(path: &std::path::Path) -> Result<Box<dyn Iterator<Item = JobSpec>>, String> {
    use corp_trace::JobSource;
    use std::io::BufRead;
    let open = || std::fs::File::open(path).map_err(|e| format!("--trace {}: {e}", path.display()));
    // The recorded format allows comment/blank preamble lines before the
    // header, so sniff past them.
    let mut header = String::new();
    for line in std::io::BufReader::new(open()?).lines() {
        let line = line.map_err(|e| format!("--trace {}: {e}", path.display()))?;
        let t = line.trim();
        if !t.is_empty() && !t.starts_with('#') {
            header = t.to_string();
            break;
        }
    }
    if header == corp_trace::TRACE_HEADER {
        let jobs = corp_trace::load_trace(path).map_err(|e| e.to_string())?;
        Ok(Box::new(jobs.into_iter()))
    } else {
        let records = corp_trace::GoogleCsvReader::new(std::io::BufReader::new(open()?));
        let source = corp_trace::TraceJobSource::new(records, corp_trace::IngestConfig::default());
        Ok(Box::new(source.into_specs()))
    }
}

/// Executes `corp-exp serve` end to end and renders the report table.
/// Returns an error string (for exit 2) on unreadable traces or failed
/// smoke assertions.
pub fn serve_experiment(fast: bool, args: &ServeArgs) -> Result<FigureTable, String> {
    let env = Environment::Cluster;
    if args.trace.is_some() && args.replay.is_some() {
        return Err("pick one of --trace / --replay".to_string());
    }
    let feed: Box<dyn Iterator<Item = JobSpec>> = match (&args.trace, &args.replay) {
        (Some(path), _) => open_trace_feed(path)?,
        (None, Some(path)) => Box::new(
            corp_trace::load_trace(path)
                .map_err(|e| e.to_string())?
                .into_iter(),
        ),
        (None, None) => Box::new(serve_workload(env, args.jobs, args.seed).into_iter()),
    };
    // Recording needs the whole workload in hand, so it materializes the
    // feed — it also doubles as a CSV → recorded-trace converter.
    let feed: Box<dyn Iterator<Item = JobSpec>> = if let Some(path) = &args.record {
        let jobs: Vec<JobSpec> = feed.collect();
        corp_trace::save_trace(path, &jobs).map_err(|e| e.to_string())?;
        Box::new(jobs.into_iter())
    } else {
        feed
    };
    // The daemon consumes the feed lazily, so the job count is only known
    // once the run drains the stream; count arrivals as they pass.
    let submitted = std::rc::Rc::new(std::cell::Cell::new(0usize));
    let counter = std::rc::Rc::clone(&submitted);
    let feed = feed.inspect(move |_| counter.set(counter.get() + 1));
    let params = SchemeParams {
        fast_dnn: fast,
        seed: args.seed,
        pool_width: args.width,
        ..Default::default()
    };
    let config = ServeConfig {
        queue_capacity: args.queue_cap,
        policy: args.policy,
        speed: args.speed,
        ..ServeConfig::default()
    };
    let (outcome, errors) = match args.shards {
        Some(shards) => run_serve_sharded(env, SchemeKind::Corp, feed, &params, shards, config),
        None => (
            run_serve(env, SchemeKind::Corp, feed, &params, config),
            Vec::new(),
        ),
    };
    let num_jobs = submitted.get();
    let r = &outcome.report;

    if args.smoke {
        // The serve-smoke gate: at low load the daemon must measure a
        // latency for every placed job and shed nothing.
        if r.placement_latency.count == 0 {
            return Err("serve smoke: no placement latencies measured".to_string());
        }
        if r.queue.shed != 0 || r.queue.rejected != 0 {
            return Err(format!(
                "serve smoke: lossless low-load run shed {} / rejected {}",
                r.queue.shed, r.queue.rejected
            ));
        }
        if r.sim.completed + r.sim.rejected + r.sim.unfinished != num_jobs {
            return Err("serve smoke: job conservation violated".to_string());
        }
    }

    let mut table = TextTable::new(
        format!(
            "Serving mode: {} jobs, queue cap {}, policy {}, CORP on the cluster profile",
            num_jobs,
            args.queue_cap,
            args.policy.name()
        ),
        &["metric", "value"],
    );
    let mut row = |k: &str, v: String| table.push_row(vec![k.to_string(), v]);
    row(
        "placements measured",
        format!("{}", r.placement_latency.count),
    );
    row(
        "placement latency p50",
        format!("{:.1} s", r.placement_latency.p50_micros / 1e6),
    );
    row(
        "placement latency p95",
        format!("{:.1} s", r.placement_latency.p95_micros / 1e6),
    );
    row(
        "placement latency p99",
        format!("{:.1} s", r.placement_latency.p99_micros / 1e6),
    );
    row(
        "placement latency max",
        format!("{:.1} s", r.placement_latency.max_micros / 1e6),
    );
    row("queue high-water", format!("{}", r.queue.high_water));
    row(
        "admitted / blocked / shed / rejected",
        format!(
            "{} / {} / {} / {}",
            r.queue.admitted, r.queue.blocked, r.queue.shed, r.queue.rejected
        ),
    );
    row(
        "overall utilization",
        format!("{:.3}", r.sim.overall_utilization),
    );
    row(
        "SLO violation rate",
        format!("{:.1}%", r.sim.slo_violation_rate * 100.0),
    );
    row(
        "completed / unfinished",
        format!("{} / {}", r.sim.completed, r.sim.unfinished),
    );
    row("ticks (slots)", format!("{}", r.ticks));
    row("events processed", format!("{}", r.events_processed));
    row(
        "virtual time served",
        format!("{:.0} s", r.virtual_end_micros as f64 / 1e6),
    );
    row(
        "throughput (wall)",
        format!("{:.0} events/s", outcome.events_per_sec),
    );
    // Sharded runs expose the control plane's failure/recovery accounting
    // — printed only when something actually happened, so the healthy
    // monolithic summary stays unchanged.
    if let Some(cp) = &r.sim.control_plane {
        if cp.worker_kills + cp.worker_panics + cp.worker_restarts > 0 {
            row(
                "worker kills / panics / restarts",
                format!(
                    "{} / {} / {}",
                    cp.worker_kills, cp.worker_panics, cp.worker_restarts
                ),
            );
        }
        if cp.inline_slots + cp.isolated_slots > 0 {
            row(
                "inline / breaker-isolated slots",
                format!("{} / {}", cp.inline_slots, cp.isolated_slots),
            );
        }
        if cp.breaker_opens + cp.breaker_half_opens + cp.breaker_closes > 0 {
            row(
                "breaker opens / half-opens / closes",
                format!(
                    "{} / {} / {}",
                    cp.breaker_opens, cp.breaker_half_opens, cp.breaker_closes
                ),
            );
        }
    }
    if !errors.is_empty() {
        row(
            "unrecovered control-plane errors",
            format!("{}", errors.len()),
        );
        for e in &errors {
            row("error", e.clone());
        }
    }

    Ok(FigureTable {
        id: "serve".to_string(),
        table,
        notes: vec![
            format!(
                "Report serialization is byte-deterministic for a fixed seed/trace; \
                 wall throughput ({:.2}s total) deliberately rides outside it.",
                outcome.wall_secs
            ),
            "At infinite speed and open queue capacity, serve mode places the same jobs \
             on the same VMs as the slot-loop simulation (pinned by tests/serve_runtime.rs)."
                .to_string(),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_validation_accepts_nonzero_integers() {
        assert_eq!(parse_seed("7"), Ok(7));
        assert_eq!(parse_seed(" 42 "), Ok(42));
        assert_eq!(parse_seed(&u64::MAX.to_string()), Ok(u64::MAX));
    }

    #[test]
    fn seed_validation_rejects_zero_and_garbage() {
        assert!(parse_seed("0").unwrap_err().contains("non-zero"));
        assert!(parse_seed("abc").unwrap_err().contains("invalid --seed"));
        assert!(parse_seed("-3").unwrap_err().contains("invalid --seed"));
        assert!(parse_seed("1.5").unwrap_err().contains("invalid --seed"));
        assert!(parse_seed("").unwrap_err().contains("invalid --seed"));
    }

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn serve_args_parse_full_flag_set() {
        let args = ServeArgs::parse(&strings(&[
            "--replay",
            "/tmp/t.trace",
            "--speed",
            "inf",
            "--seed",
            "9",
            "--queue-cap",
            "32",
            "--policy",
            "shed-oldest",
            "--width",
            "2",
            "--smoke",
        ]))
        .expect("parse");
        assert_eq!(args.replay, Some(PathBuf::from("/tmp/t.trace")));
        assert_eq!(args.speed, ReplaySpeed::Infinite);
        assert_eq!(args.seed, 9);
        assert_eq!(args.queue_cap, 32);
        assert_eq!(args.policy, BackpressurePolicy::ShedOldest);
        assert_eq!(args.width, Some(2));
        assert!(args.smoke);
    }

    #[test]
    fn serve_args_reject_bad_values_without_panicking() {
        assert!(ServeArgs::parse(&strings(&["--seed", "0"]))
            .unwrap_err()
            .contains("non-zero"));
        assert!(ServeArgs::parse(&strings(&["--seed"]))
            .unwrap_err()
            .contains("requires a value"));
        assert!(ServeArgs::parse(&strings(&["--speed", "-1"]))
            .unwrap_err()
            .contains("replay speed"));
        assert!(ServeArgs::parse(&strings(&["--queue-cap", "0"]))
            .unwrap_err()
            .contains("queue-cap"));
        assert!(ServeArgs::parse(&strings(&["--frobnicate"]))
            .unwrap_err()
            .contains("unknown serve flag"));
    }

    #[test]
    fn trace_flag_parses_and_conflicts_with_replay() {
        let args = ServeArgs::parse(&strings(&["--trace", "/tmp/t.csv"])).expect("parse");
        assert_eq!(args.trace, Some(PathBuf::from("/tmp/t.csv")));
        let both = ServeArgs {
            trace: Some(PathBuf::from("a")),
            replay: Some(PathBuf::from("b")),
            ..ServeArgs::default()
        };
        assert!(serve_experiment(true, &both)
            .unwrap_err()
            .contains("pick one"));
    }

    #[test]
    fn trace_feed_decodes_google_csv_and_recorded_traces() {
        let dir = std::env::temp_dir();
        // A Google-style CSV: two short tasks of one job, 100 s lifetime.
        let csv = dir.join("corp-serve-test.csv");
        std::fs::write(
            &csv,
            "# start,end,job_id,task_index,cpu,memory,storage\n\
             0,100,1,0,1.0,2.0,3.0\n\
             0,100,1,1,0.5,1.0,1.5\n",
        )
        .unwrap();
        let jobs: Vec<JobSpec> = open_trace_feed(&csv).expect("csv feed").collect();
        assert_eq!(jobs.len(), 1, "two tasks of one job assemble to one spec");
        assert_eq!(jobs[0].id, 1);
        // The same jobs via the recorded format must round-trip.
        let recorded = dir.join("corp-serve-test.trace");
        corp_trace::save_trace(&recorded, &jobs).unwrap();
        let replayed: Vec<JobSpec> = open_trace_feed(&recorded).expect("recorded feed").collect();
        assert_eq!(
            serde::json::to_string(&jobs),
            serde::json::to_string(&replayed),
            "recorded round-trip diverged from the CSV decode"
        );
    }

    #[test]
    fn smoke_run_passes_at_low_load() {
        let args = ServeArgs {
            jobs: 30,
            smoke: true,
            ..ServeArgs::default()
        };
        let figure = serve_experiment(true, &args).expect("smoke must pass at low load");
        assert_eq!(figure.id, "serve");
        assert!(!figure.table.is_empty());
    }
}
