//! Runners that regenerate every table and figure of the paper's
//! evaluation.
//!
//! Each runner sweeps the same axis the paper sweeps, executes one
//! deterministic simulation per cell (fanning cells out over OS threads),
//! and returns a [`FigureTable`] whose rows mirror the figure's series.
//! Absolute values belong to our simulator, not the authors' testbed; the
//! *shapes* — who wins, what the trend direction is — are the reproduction
//! target, and `tests/experiment_shapes.rs` asserts them.

use crate::env::{
    build_provisioner, build_sharded_provisioner, run_cell, run_cell_averaged, run_cell_faulty,
    run_cell_sharded, Environment, SchemeKind, SchemeParams, ALL_SCHEMES,
};
use crate::table::TextTable;
use corp_core::CorpConfig;
use corp_faults::FaultConfig;
use corp_sim::{Cluster, EnvironmentProfile, Simulation, SimulationOptions, SimulationReport};
use corp_trace::{JobSpec, WorkloadConfig, WorkloadGenerator};
use serde::Serialize;

/// A regenerated figure/table plus free-form notes.
#[derive(Debug, Clone, Serialize)]
pub struct FigureTable {
    /// Paper artifact id, e.g. `"fig6"`.
    pub id: String,
    /// The regenerated rows.
    pub table: TextTable,
    /// Observations worth surfacing next to the table.
    pub notes: Vec<String>,
}

impl std::fmt::Display for FigureTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table)?;
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Job counts swept by the #jobs figures (paper: "varied the number of jobs
/// from 50 to 300 with step size of 50").
pub const JOB_COUNTS: [usize; 6] = [50, 100, 150, 200, 250, 300];

/// Confidence levels swept by Figs. 9/13 (Table II: 50%-90%).
pub const CONFIDENCE_LEVELS: [f64; 5] = [0.5, 0.6, 0.7, 0.8, 0.9];

/// Workload seeds averaged by the small-count (SLO-rate) figures.
pub const AVERAGING_SEEDS: [u64; 3] = [7, 1007, 2007];

/// Runs `work` items in parallel, preserving order.
fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for (slot, item) in out.iter_mut().zip(items) {
            scope.spawn(|| {
                *slot = Some(f(item));
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker finished"))
        .collect()
}

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

fn three(x: f64) -> String {
    format!("{x:.3}")
}

/// Table II: parameter settings of the reproduction (values match the
/// paper's Table II where given).
pub fn table2() -> FigureTable {
    let cfg = CorpConfig::default();
    let mut table = TextTable::new(
        "Table II — Parameter settings",
        &["parameter", "value", "paper"],
    );
    let mut row = |p: &str, v: String, paper: &str| {
        table.push_row(vec![p.to_string(), v, paper.to_string()]);
    };
    row(
        "N_p (servers, cluster env)",
        "8 (scaled; see EXPERIMENTS.md)".into(),
        "30-50",
    );
    row("N_v (VMs, cluster env)", "32".into(), "100-400");
    row("N_v (VMs, EC2 env)", "30".into(), "30 nodes");
    row("|J| (jobs)", "50-300 step 50".into(), "50-300");
    row("l (resource types)", "3".into(), "3");
    row("P_th", format!("{}", cfg.prob_threshold), "0.95");
    row("h (DNN layers)", format!("{}", cfg.dnn_layers), "4");
    row("N_n (units/layer)", format!("{}", cfg.dnn_units), "50");
    row("H (HMM states)", "3".into(), "3");
    row(
        "theta (significance)",
        "5%-50% (eta = 50%-95%)".into(),
        "5%-30%",
    );
    row("eta (confidence)", "50%-90%".into(), "50%-90%");
    row(
        "L (prediction window)",
        format!("{} slots (1 min of 10 s slots)", cfg.window_slots),
        "1 min",
    );
    FigureTable {
        id: "table2".into(),
        table,
        notes: vec![],
    }
}

/// Fig. 6: prediction error rate vs number of jobs (cluster).
pub fn fig6(fast: bool) -> FigureTable {
    jobs_sweep_figure(
        "fig6",
        "Fig. 6 — Prediction error rate vs #jobs (cluster)",
        Environment::Cluster,
        fast,
        |r| pct(r.prediction_error_rate),
    )
}

/// Fig. 7: per-resource utilization vs number of jobs (cluster).
pub fn fig7(fast: bool) -> FigureTable {
    utilization_figure("fig7", Environment::Cluster, fast)
}

/// Fig. 11: per-resource utilization vs number of jobs (EC2).
pub fn fig11(fast: bool) -> FigureTable {
    utilization_figure("fig11", Environment::Ec2, fast)
}

fn jobs_sweep_figure(
    id: &str,
    title: &str,
    env: Environment,
    fast: bool,
    metric: impl Fn(&SimulationReport) -> String + Sync,
) -> FigureTable {
    let cells: Vec<(SchemeKind, usize)> = ALL_SCHEMES
        .iter()
        .flat_map(|&s| JOB_COUNTS.iter().map(move |&n| (s, n)))
        .collect();
    let reports = parallel_map(cells.clone(), |(scheme, n)| {
        let params = SchemeParams {
            fast_dnn: fast,
            ..Default::default()
        };
        run_cell(env, scheme, n, &params, false)
    });
    let mut table = TextTable::new(title, &["#jobs", "CORP", "RCCR", "CloudScale", "DRA"]);
    for (j, &n) in JOB_COUNTS.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for (s, _) in ALL_SCHEMES.iter().enumerate() {
            row.push(metric(&reports[s * JOB_COUNTS.len() + j]));
        }
        table.push_row(row);
    }
    FigureTable {
        id: id.into(),
        table,
        notes: vec![],
    }
}

fn utilization_figure(id: &str, env: Environment, fast: bool) -> FigureTable {
    let cells: Vec<(SchemeKind, usize)> = ALL_SCHEMES
        .iter()
        .flat_map(|&s| JOB_COUNTS.iter().map(move |&n| (s, n)))
        .collect();
    let reports = parallel_map(cells, |(scheme, n)| {
        let params = SchemeParams {
            fast_dnn: fast,
            ..Default::default()
        };
        run_cell(env, scheme, n, &params, false)
    });
    let mut table = TextTable::new(
        format!(
            "Fig. {} — Resource utilization vs #jobs ({}); cells: CPU / MEM / STORAGE / overall",
            if id == "fig7" { "7" } else { "11(a-c)" },
            env.name()
        ),
        &["#jobs", "CORP", "RCCR", "CloudScale", "DRA"],
    );
    for (j, &n) in JOB_COUNTS.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for (s, _) in ALL_SCHEMES.iter().enumerate() {
            let r = &reports[s * JOB_COUNTS.len() + j];
            row.push(format!(
                "{:.2}/{:.2}/{:.2}/{:.2}",
                r.utilization[0], r.utilization[1], r.utilization[2], r.overall_utilization
            ));
        }
        table.push_row(row);
    }
    FigureTable {
        id: id.into(),
        table,
        notes: vec![],
    }
}

/// Aggressiveness grid per scheme for the utilization-vs-SLO trade-off of
/// Figs. 8/12 (the paper "varied the probability threshold P_th").
fn aggressiveness_grid(scheme: SchemeKind) -> Vec<SchemeParams> {
    match scheme {
        SchemeKind::Corp => [
            (0.95, 0.99),
            (0.9, 0.95),
            (0.8, 0.9),
            (0.7, 0.8),
            (0.6, 0.6),
            (0.5, 0.4),
        ]
        .iter()
        .map(|&(eta, p_th)| SchemeParams {
            confidence: eta,
            prob_threshold: p_th,
            ..Default::default()
        })
        .collect(),
        SchemeKind::Rccr => [0.95, 0.9, 0.8, 0.7, 0.6, 0.5]
            .iter()
            .map(|&eta| SchemeParams {
                confidence: eta,
                ..Default::default()
            })
            .collect(),
        SchemeKind::CloudScale => [2.0, 1.5, 1.0, 0.6, 0.3, 0.1]
            .iter()
            .map(|&a| SchemeParams {
                aggressiveness: a,
                ..Default::default()
            })
            .collect(),
        SchemeKind::Dra => [1.0, 0.9, 0.8, 0.7, 0.6, 0.5]
            .iter()
            .map(|&a| SchemeParams {
                aggressiveness: a,
                ..Default::default()
            })
            .collect(),
    }
}

/// Fig. 8: overall utilization vs SLO violation rate (cluster).
pub fn fig8(fast: bool) -> FigureTable {
    tradeoff_figure("fig8", Environment::Cluster, fast)
}

/// Fig. 12: overall utilization vs SLO violation rate (EC2).
pub fn fig12(fast: bool) -> FigureTable {
    tradeoff_figure("fig12", Environment::Ec2, fast)
}

fn tradeoff_figure(id: &str, env: Environment, fast: bool) -> FigureTable {
    const JOBS: usize = 300;
    let cells: Vec<(SchemeKind, SchemeParams)> = ALL_SCHEMES
        .iter()
        .flat_map(|&s| {
            aggressiveness_grid(s).into_iter().map(move |mut p| {
                p.fast_dnn = fast;
                (s, p)
            })
        })
        .collect();
    let reports = parallel_map(cells.clone(), |(scheme, params)| {
        run_cell_averaged(env, scheme, JOBS, &params, false, &AVERAGING_SEEDS)
    });
    let mut table = TextTable::new(
        format!(
            "Fig. {} — Overall utilization vs SLO violation rate ({}, 300 jobs)",
            if id == "fig8" { "8" } else { "12" },
            env.name()
        ),
        &["scheme", "knob", "SLO violation", "overall utilization"],
    );
    for ((scheme, params), r) in cells.iter().zip(&reports) {
        let knob = match scheme {
            SchemeKind::Corp => format!(
                "eta={:.2},P_th={:.2}",
                params.confidence, params.prob_threshold
            ),
            SchemeKind::Rccr => format!("eta={:.2}", params.confidence),
            SchemeKind::CloudScale => format!("pad={:.1}", params.aggressiveness),
            SchemeKind::Dra => format!("overcommit={:.1}", params.aggressiveness),
        };
        table.push_row(vec![
            scheme.name().to_string(),
            knob,
            pct(r.slo_violation_rate),
            three(r.overall_utilization),
        ]);
    }
    FigureTable { id: id.into(), table, notes: vec![
        "each scheme's knob trades conservatism for utilization; read per-scheme rows as one curve".into(),
    ] }
}

/// Fig. 9: SLO violation rate vs confidence level (cluster).
pub fn fig9(fast: bool) -> FigureTable {
    confidence_figure("fig9", Environment::Cluster, fast)
}

/// Fig. 13: SLO violation rate vs confidence level (EC2).
pub fn fig13(fast: bool) -> FigureTable {
    confidence_figure("fig13", Environment::Ec2, fast)
}

fn confidence_figure(id: &str, env: Environment, fast: bool) -> FigureTable {
    const JOBS: usize = 300;
    let cells: Vec<(SchemeKind, f64)> = ALL_SCHEMES
        .iter()
        .flat_map(|&s| CONFIDENCE_LEVELS.iter().map(move |&c| (s, c)))
        .collect();
    let reports = parallel_map(cells, |(scheme, confidence)| {
        let params = SchemeParams {
            confidence,
            fast_dnn: fast,
            ..Default::default()
        };
        run_cell_averaged(env, scheme, JOBS, &params, false, &AVERAGING_SEEDS)
    });
    let mut table = TextTable::new(
        format!(
            "Fig. {} — SLO violation rate vs confidence level ({}, 300 jobs)",
            if id == "fig9" { "9" } else { "13" },
            env.name()
        ),
        &["confidence", "CORP", "RCCR", "CloudScale", "DRA"],
    );
    for (c, &eta) in CONFIDENCE_LEVELS.iter().enumerate() {
        let mut row = vec![pct(eta)];
        for (s, _) in ALL_SCHEMES.iter().enumerate() {
            row.push(pct(
                reports[s * CONFIDENCE_LEVELS.len() + c].slo_violation_rate
            ));
        }
        table.push_row(row);
    }
    FigureTable {
        id: id.into(),
        table,
        notes: vec![
            "CloudScale and DRA have no confidence machinery; their columns are flat by design (paper Fig. 9 discussion)".into(),
        ],
    }
}

/// Fig. 10: allocation overhead for 300 jobs (cluster).
pub fn fig10(fast: bool) -> FigureTable {
    overhead_figure("fig10", Environment::Cluster, fast)
}

/// Fig. 14: allocation overhead for 300 jobs (EC2).
pub fn fig14(fast: bool) -> FigureTable {
    overhead_figure("fig14", Environment::Ec2, fast)
}

fn overhead_figure(id: &str, env: Environment, fast: bool) -> FigureTable {
    const JOBS: usize = 300;
    let reports = parallel_map(ALL_SCHEMES.to_vec(), |scheme| {
        let params = SchemeParams {
            fast_dnn: fast,
            ..Default::default()
        };
        run_cell(env, scheme, JOBS, &params, true)
    });
    let mut table = TextTable::new(
        format!(
            "Fig. {} — Overhead: latency to allocate resources to 300 jobs ({})",
            if id == "fig10" { "10" } else { "14" },
            env.name()
        ),
        &["scheme", "latency (ms)", "decision + comms"],
    );
    for (scheme, r) in ALL_SCHEMES.iter().zip(&reports) {
        table.push_row(vec![
            scheme.name().to_string(),
            format!("{:.1}", r.overhead_ms),
            format!("completed {} / violated {}", r.completed, r.violated),
        ]);
    }
    FigureTable { id: id.into(), table, notes: vec![
        "CORP pays for DNN inference; the EC2 profile adds 12x the per-message communication latency".into(),
    ] }
}

/// Shard counts swept by the control-plane scalability experiment.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Control-plane scalability: the CORP pipeline behind 1→8 scheduler
/// shards coordinated through the two-phase-commit placement store
/// (`corp-cluster`). Cells run sequentially — not fanned out — so each
/// wall-clock throughput measurement owns the machine's cores.
pub fn scalability(fast: bool) -> FigureTable {
    const JOBS: usize = 300;
    let params = SchemeParams {
        fast_dnn: fast,
        ..Default::default()
    };
    let mut table = TextTable::new(
        "Scalability — CORP behind a sharded control plane (cluster, 300 jobs)",
        &[
            "shards",
            "throughput (jobs/s)",
            "conflict rate",
            "retries",
            "latency (ms)",
            "overall utilization",
            "SLO violation",
        ],
    );
    for &shards in &SHARD_COUNTS {
        let (r, wall) = run_cell_sharded(
            Environment::Cluster,
            SchemeKind::Corp,
            JOBS,
            &params,
            shards,
            true,
        );
        let cp = r
            .control_plane
            .as_ref()
            .expect("sharded runs report control-plane stats");
        let throughput = cp.commits as f64 / wall.max(1e-9);
        table.push_row(vec![
            shards.to_string(),
            format!("{throughput:.0}"),
            pct(cp.conflict_rate()),
            cp.retries.to_string(),
            format!("{:.1}", r.overhead_ms),
            three(r.overall_utilization),
            pct(r.slo_violation_rate),
        ]);
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    FigureTable {
        id: "scalability".into(),
        table,
        notes: vec![
            "throughput = committed placements / simulation wall-clock; conflict rate = refused / (admitted + refused) reservations at the placement store".into(),
            "one shard reproduces the monolithic scheduler's decisions exactly (same seed, same report)".into(),
            format!(
                "host parallelism: {cores} core(s) — shard speedup needs at least as many cores as shards; below that the sweep measures pure coordination overhead"
            ),
        ],
    }
}

/// One timed arm of the hot-path performance baseline (`BENCH_hotpath.json`
/// row).
#[derive(Debug, Clone, Serialize)]
pub struct PerfArm {
    /// Scheme name (paper spelling).
    pub scheme: String,
    /// `"tuned"` (parallel prediction fan-out + fused/batched DNN kernels,
    /// the defaults) or `"baseline"` (serial prediction + per-sample
    /// reference kernels).
    pub arm: String,
    /// Wall-clock seconds to build the provisioner, dominated by DNN
    /// pretraining for CORP (~0 for the baselines).
    pub pretrain_secs: f64,
    /// Wall-clock seconds of the simulation loop.
    pub run_secs: f64,
    /// Simulated slots per wall-clock second.
    pub slots_per_sec: f64,
    /// Completed jobs per wall-clock second.
    pub jobs_per_sec: f64,
    /// Resolved predictions per wall-clock second.
    pub predictions_per_sec: f64,
}

/// File the perf runner writes its machine-readable baseline to (in the
/// invoking directory; `scripts/check.sh perf-smoke` consumes it).
pub const PERF_BASELINE_FILE: &str = "BENCH_hotpath.json";

/// Hot-path performance baseline: every scheme's heaviest #jobs cell
/// (Fig. 6's 300-job cluster column), timed twice — the tuned arm (the
/// defaults: scoped-thread prediction fan-out + fused/batched DNN kernels)
/// against a baseline arm with both disabled. Cells run sequentially — not
/// fanned out — so each wall-clock measurement owns the machine's cores,
/// and the two arms of a scheme must produce byte-identical reports (the
/// optimizations are not allowed to change a single decision). Writes
/// [`PERF_BASELINE_FILE`] next to the table it returns; panics on
/// non-finite or zero throughput so the smoke gate fails loudly.
pub fn perf(fast: bool) -> FigureTable {
    const JOBS: usize = 300;
    let mut arms: Vec<PerfArm> = Vec::new();
    for &scheme in &ALL_SCHEMES {
        let mut serialized: Vec<String> = Vec::new();
        for (arm, degrade) in [("tuned", false), ("baseline", true)] {
            let params = SchemeParams {
                fast_dnn: fast,
                serial_prediction: degrade,
                reference_dnn: degrade,
                ..Default::default()
            };
            // Best-of-3: each measurement rebuilds the provisioner (the
            // pretrain cost) and replays the identical deterministic sim;
            // the minimum is the least noise-contaminated sample, which
            // matters on small wall-clocks in shared environments.
            let mut pretrain_secs = f64::INFINITY;
            let mut run_secs = f64::INFINITY;
            let mut report = None;
            for _ in 0..3 {
                let building = std::time::Instant::now();
                let mut provisioner = build_provisioner(scheme, Environment::Cluster, &params);
                pretrain_secs = pretrain_secs.min(building.elapsed().as_secs_f64());
                let mut sim = Simulation::new(
                    Environment::Cluster.cluster(),
                    Environment::Cluster.workload(JOBS, params.seed.wrapping_add(JOBS as u64)),
                    SimulationOptions {
                        measure_decision_time: false,
                        ..Default::default()
                    },
                );
                let running = std::time::Instant::now();
                let r = sim.run(provisioner.as_mut());
                run_secs = run_secs.min(running.elapsed().as_secs_f64());
                report = Some(r);
            }
            let report = report.expect("three timed runs");
            serialized.push(serde::json::to_string(&report));
            let wall = run_secs.max(1e-9);
            let row = PerfArm {
                scheme: scheme.name().to_string(),
                arm: arm.to_string(),
                pretrain_secs,
                run_secs,
                slots_per_sec: report.slots_run as f64 / wall,
                jobs_per_sec: report.completed as f64 / wall,
                predictions_per_sec: report.predictions_resolved as f64 / wall,
            };
            for (metric, v) in [
                ("pretrain_secs", row.pretrain_secs),
                ("run_secs", row.run_secs),
                ("slots_per_sec", row.slots_per_sec),
                ("jobs_per_sec", row.jobs_per_sec),
                ("predictions_per_sec", row.predictions_per_sec),
            ] {
                assert!(
                    v.is_finite(),
                    "{} {}: non-finite {metric}",
                    row.scheme,
                    row.arm
                );
            }
            assert!(
                row.slots_per_sec > 0.0 && row.jobs_per_sec > 0.0 && row.predictions_per_sec > 0.0,
                "{} {}: zero throughput: {row:?}",
                row.scheme,
                row.arm
            );
            arms.push(row);
        }
        assert_eq!(
            serialized[0],
            serialized[1],
            "{}: tuned and baseline arms produced different reports",
            scheme.name()
        );
    }
    std::fs::write(PERF_BASELINE_FILE, serde::json::to_string(&arms))
        .expect("write perf baseline json");
    let mut table = TextTable::new(
        "Perf — hot-path throughput, tuned (parallel + fused) vs baseline (serial + per-sample); cluster, 300 jobs",
        &[
            "scheme",
            "arm",
            "pretrain (s)",
            "sim wall (s)",
            "slots/s",
            "jobs/s",
            "predictions/s",
        ],
    );
    for a in &arms {
        table.push_row(vec![
            a.scheme.clone(),
            a.arm.clone(),
            three(a.pretrain_secs),
            three(a.run_secs),
            format!("{:.0}", a.slots_per_sec),
            format!("{:.1}", a.jobs_per_sec),
            format!("{:.0}", a.predictions_per_sec),
        ]);
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    FigureTable {
        id: "perf".into(),
        table,
        notes: vec![
            format!("machine-readable baseline written to {PERF_BASELINE_FILE}"),
            "per-scheme reports verified byte-identical across arms before timing was recorded"
                .into(),
            format!(
                "host parallelism: {cores} core(s) — the prediction fan-out needs >1 core to show; the fused-kernel win shows in CORP's pretrain column regardless"
            ),
        ],
    }
}

/// One timed arm of the end-to-end throughput benchmark (`BENCH_e2e.json`
/// row).
#[derive(Debug, Clone, Serialize)]
pub struct E2eArm {
    /// Scheme name (paper spelling).
    pub scheme: String,
    /// `"pooled"` (persistent worker-pool runtime, the default),
    /// `"scoped"` (legacy scoped-thread path with fresh scratch every
    /// window), or `"sharded"` (pooled runtime behind the 2-shard control
    /// plane with batched completion messaging).
    pub arm: String,
    /// Wall-clock seconds to build the provisioner (DNN pretraining for
    /// CORP; ~0 for the baselines).
    pub pretrain_secs: f64,
    /// Wall-clock seconds of the simulation loop.
    pub run_secs: f64,
    /// Simulated slots per wall-clock second.
    pub slots_per_sec: f64,
    /// Completed jobs per wall-clock second.
    pub jobs_per_sec: f64,
    /// Fraction of the placement store's admitted reservations that
    /// committed through the optimistic fast path (single stripe
    /// acquisition, both 2PC phases fused). Zero for monolithic arms,
    /// which have no store.
    pub fast_path_rate: f64,
    /// Fast-path attempts refused by the per-VM epoch/writer check (zero
    /// for monolithic arms).
    pub stripe_conflicts: u64,
}

/// Machine-readable result of the end-to-end benchmark: the committed
/// baseline `scripts/check.sh perf-regression` compares fresh runs
/// against.
#[derive(Debug, Clone, Serialize)]
pub struct E2eBaseline {
    /// Fleet size (VMs) the benchmark drove.
    pub vms: usize,
    /// Jobs in the measured workload.
    pub jobs: usize,
    /// Whether the cheap test DNN was used (`--fast`).
    pub fast: bool,
    /// CORP pooled slots/sec over CORP scoped slots/sec — the headline
    /// win of the persistent worker-pool runtime.
    pub corp_pool_speedup: f64,
    /// Every timed arm.
    pub arms: Vec<E2eArm>,
}

/// File the e2e runner writes its machine-readable baseline to (in the
/// invoking directory; `scripts/check.sh perf-regression` consumes it).
pub const E2E_BASELINE_FILE: &str = "BENCH_e2e.json";

/// Env var naming a committed [`E2E_BASELINE_FILE`] to regress against:
/// when set, the runner panics if the fresh CORP pooled slots/sec falls
/// more than [`E2E_REGRESSION_TOLERANCE`] below the baseline's.
pub const E2E_BASELINE_ENV: &str = "CORP_E2E_BASELINE";

/// Allowed fractional slots/sec drop before the baseline compare panics.
pub const E2E_REGRESSION_TOLERANCE: f64 = 0.20;

/// Allowed absolute fast-path-rate drop (fresh vs committed baseline)
/// before the sharded regression compare panics.
pub const E2E_FAST_PATH_TOLERANCE: f64 = 0.05;

/// Shard counts the end-to-end benchmark sweeps when no `--shards`
/// override is given.
pub const E2E_SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Extracts one arm's numeric field from a serialized [`E2eBaseline`]. A
/// string scan, not a parser — the vendored serde has no deserializer, and
/// the file is always written by this module, so the field order
/// (`"scheme"`, `"arm"`, ..., numeric fields) is fixed.
fn baseline_field(json: &str, scheme: &str, arm: &str, field: &str) -> Option<f64> {
    let row = json.find(&format!("\"scheme\":\"{scheme}\",\"arm\":\"{arm}\""))?;
    let rest = &json[row..];
    let key = format!("\"{field}\":");
    let tail = &rest[rest.find(&key)? + key.len()..];
    let end = tail.find([',', '}'])?;
    tail[..end].trim().parse().ok()
}

/// The 1024-VM fleet the end-to-end benchmark drives (the best-fit
/// microbenchmark's fleet size, now end to end): 256 SL230-class PMs at 4
/// VMs each.
fn e2e_fleet() -> Cluster {
    Cluster::from_profile(EnvironmentProfile::palmetto_cluster().with_num_pms(256))
}

/// The end-to-end workload: the figure sweeps' job mix at steady-state
/// saturation. Durations sit in the upper half of the paper's short-job
/// range (2-5 min, still under the 5-minute timeout) so thousands of jobs
/// run concurrently across the 1024 VMs — the regime where every
/// provisioning window carries a full fleet of per-job predictions, which
/// is exactly the traffic the worker-pool runtime amortizes.
fn e2e_workload(jobs: usize, seed: u64) -> Vec<JobSpec> {
    let config = WorkloadConfig {
        num_jobs: jobs,
        mean_interarrival_slots: Environment::ARRIVAL_WINDOW_SLOTS / jobs.max(1) as f64,
        min_duration_secs: 120.0,
        max_duration_secs: 300.0,
        demand_scale: 1.5,
        ..WorkloadConfig::default()
    };
    WorkloadGenerator::new(config, seed).generate()
}

/// End-to-end throughput: every scheme driving the 1024-VM fleet, timed in
/// the persistent worker-pool runtime (the default), the legacy
/// scoped-thread path it replaced (fresh threads and fresh scratch every
/// window), and the pooled runtime behind the striped-store control plane
/// across the [`E2E_SHARD_SWEEP`] shard counts (`sharded-1` … `sharded-8`;
/// `corp-exp e2e --shards K` pins the sweep to one count). Arms run
/// sequentially so each wall-clock measurement owns the machine, and the
/// pooled and scoped arms of a scheme must produce byte-identical reports
/// (the runtime swap is not allowed to change a single decision). The
/// `sharded-1` arm must reproduce the monolithic decisions exactly — every
/// claim takes the store's fast path, and the report's decision metrics
/// are asserted equal to the pooled arm's. Multi-shard arms decorrelate
/// per-shard seeds, so only their throughput is comparable. Monolithic
/// arms are best-of-3; sharded arms are single runs. Writes
/// [`E2E_BASELINE_FILE`] next to the table it returns, and when
/// [`E2E_BASELINE_ENV`] names a committed baseline, panics if CORP's
/// pooled slots/sec regressed more than [`E2E_REGRESSION_TOLERANCE`] below
/// it, if CORP's `sharded-8` slots/sec fell more than the same tolerance
/// below its own committed number (or, on multi-core hosts, below the
/// fresh pooled arm — at 1 core sharding is pure coordination overhead
/// and that claim is unenforceable), or if its fast-path rate dropped
/// more than [`E2E_FAST_PATH_TOLERANCE`] below the committed baseline's.
pub fn e2e(fast: bool) -> FigureTable {
    e2e_with_shards(fast, None)
}

/// [`e2e`] with an optional shard-count override for the sharded arms
/// (the CLI's `--shards K`).
pub fn e2e_with_shards(fast: bool, shards: Option<usize>) -> FigureTable {
    let jobs = if fast { 4000 } else { 8000 };
    let shard_counts: Vec<usize> = match shards {
        Some(k) => vec![k],
        None => E2E_SHARD_SWEEP.to_vec(),
    };
    let vms = e2e_fleet().vms.len();
    let mut arms: Vec<E2eArm> = Vec::new();
    for &scheme in &ALL_SCHEMES {
        let mut serialized: Vec<String> = Vec::new();
        let mut pooled_report: Option<SimulationReport> = None;
        for (arm, scoped) in [("pooled", false), ("scoped", true)] {
            let params = SchemeParams {
                fast_dnn: fast,
                scoped_runtime: scoped,
                ..Default::default()
            };
            // Best-of-3: each measurement rebuilds the provisioner and
            // replays the identical deterministic sim; the minimum is the
            // least noise-contaminated sample.
            let mut pretrain_secs = f64::INFINITY;
            let mut run_secs = f64::INFINITY;
            let mut report = None;
            for _ in 0..3 {
                let building = std::time::Instant::now();
                let mut provisioner = build_provisioner(scheme, Environment::Cluster, &params);
                pretrain_secs = pretrain_secs.min(building.elapsed().as_secs_f64());
                let mut sim = Simulation::new(
                    e2e_fleet(),
                    e2e_workload(jobs, params.seed.wrapping_add(jobs as u64)),
                    SimulationOptions {
                        measure_decision_time: false,
                        // The baseline arm runs the whole pre-pool path:
                        // legacy scoped-thread prediction runtime AND the
                        // engine's per-slot view reallocation.
                        legacy_slot_views: scoped,
                        ..Default::default()
                    },
                );
                let running = std::time::Instant::now();
                let r = sim.run(provisioner.as_mut());
                run_secs = run_secs.min(running.elapsed().as_secs_f64());
                report = Some(r);
            }
            let report = report.expect("three timed runs");
            serialized.push(serde::json::to_string(&report));
            arms.push(e2e_arm(scheme, arm, pretrain_secs, run_secs, &report));
            if !scoped {
                pooled_report = Some(report);
            }
        }
        assert_eq!(
            serialized[0],
            serialized[1],
            "{}: pooled and scoped arms produced different reports",
            scheme.name()
        );
        for &k in &shard_counts {
            let params = SchemeParams {
                fast_dnn: fast,
                ..Default::default()
            };
            let building = std::time::Instant::now();
            let mut provisioner =
                build_sharded_provisioner(scheme, Environment::Cluster, &params, k);
            let pretrain_secs = building.elapsed().as_secs_f64();
            let mut sim = Simulation::new(
                e2e_fleet(),
                e2e_workload(jobs, params.seed.wrapping_add(jobs as u64)),
                SimulationOptions {
                    measure_decision_time: false,
                    ..Default::default()
                },
            );
            let running = std::time::Instant::now();
            let report = sim.run(&mut provisioner);
            let run_secs = running.elapsed().as_secs_f64();
            if k == 1 {
                // One shard must reproduce the monolithic scheduler's
                // decisions exactly (the only report fields allowed to
                // differ are the provisioner name and the control-plane
                // block, which monolithic runs don't have).
                let mono = pooled_report
                    .as_ref()
                    .expect("pooled arm ran before the shard sweep");
                assert_eq!(report.utilization, mono.utilization, "{scheme:?}");
                assert_eq!(
                    report.overall_utilization, mono.overall_utilization,
                    "{scheme:?}"
                );
                assert_eq!(
                    report.slo_violation_rate, mono.slo_violation_rate,
                    "{scheme:?}"
                );
                assert_eq!(report.completed, mono.completed, "{scheme:?}");
                assert_eq!(report.violated, mono.violated, "{scheme:?}");
                assert_eq!(report.rejected, mono.rejected, "{scheme:?}");
                assert_eq!(report.slots_run, mono.slots_run, "{scheme:?}");
            }
            arms.push(e2e_arm(
                scheme,
                &format!("sharded-{k}"),
                pretrain_secs,
                run_secs,
                &report,
            ));
        }
    }
    let slots = |scheme: &str, arm: &str| {
        arms.iter()
            .find(|a| a.scheme == scheme && a.arm == arm)
            .expect("every scheme ran every arm")
            .slots_per_sec
    };
    let corp_pool_speedup = slots("CORP", "pooled") / slots("CORP", "scoped");
    if let Ok(path) = std::env::var(E2E_BASELINE_ENV) {
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{E2E_BASELINE_ENV}={path}: unreadable baseline: {e}"));
        let committed_slots = baseline_field(&committed, "CORP", "pooled", "slots_per_sec")
            .unwrap_or_else(|| panic!("{path}: no CORP pooled slots_per_sec row"));
        let fresh = slots("CORP", "pooled");
        let floor = committed_slots * (1.0 - E2E_REGRESSION_TOLERANCE);
        assert!(
            fresh >= floor,
            "perf regression: CORP pooled {fresh:.0} slots/s is more than \
             {:.0}% below the committed baseline {committed_slots:.0} (floor {floor:.0})",
            E2E_REGRESSION_TOLERANCE * 100.0
        );
        if let Some(sharded8) = arms
            .iter()
            .find(|a| a.scheme == "CORP" && a.arm == "sharded-8")
        {
            // Self-regression: sharded-8 must hold its own committed
            // throughput (baselines predating the shard sweep have no
            // such row; skip them).
            if let Some(committed_s8) =
                baseline_field(&committed, "CORP", "sharded-8", "slots_per_sec")
            {
                let s8_floor = committed_s8 * (1.0 - E2E_REGRESSION_TOLERANCE);
                assert!(
                    sharded8.slots_per_sec >= s8_floor,
                    "perf regression: CORP sharded-8 {:.0} slots/s is more than {:.0}% below \
                     its committed baseline {committed_s8:.0} (floor {s8_floor:.0})",
                    sharded8.slots_per_sec,
                    E2E_REGRESSION_TOLERANCE * 100.0
                );
            }
            // The striped store's headline claim: at 8 shards the control
            // plane keeps up with the monolithic pooled runtime (same
            // noise tolerance as the pooled-vs-baseline gate). Only
            // enforceable where shards can actually run in parallel — on
            // a single-core host the sharded arm is pure coordination
            // overhead with nothing to win back (the same 1-core
            // inversion EXPERIMENTS.md documents for the worker pool).
            let cores = std::thread::available_parallelism().map_or(1, usize::from);
            if cores > 1 {
                let sharded_floor = fresh * (1.0 - E2E_REGRESSION_TOLERANCE);
                assert!(
                    sharded8.slots_per_sec >= sharded_floor,
                    "perf regression: CORP sharded-8 {:.0} slots/s fell below the pooled \
                     arm's {fresh:.0} by more than {:.0}% (floor {sharded_floor:.0}) on a \
                     {cores}-core host",
                    sharded8.slots_per_sec,
                    E2E_REGRESSION_TOLERANCE * 100.0
                );
            }
            // Fast-path-rate regression: a contention or protocol change
            // that silently pushes claims off the fast path shows up here
            // even while throughput noise hides it. Baselines predating
            // the striped store have no such row; skip them.
            if let Some(committed_rate) =
                baseline_field(&committed, "CORP", "sharded-8", "fast_path_rate")
            {
                assert!(
                    sharded8.fast_path_rate >= committed_rate - E2E_FAST_PATH_TOLERANCE,
                    "fast-path regression: CORP sharded-8 rate {:.3} dropped more than \
                     {E2E_FAST_PATH_TOLERANCE} below the committed baseline {committed_rate:.3}",
                    sharded8.fast_path_rate
                );
            }
        }
    }
    let baseline = E2eBaseline {
        vms,
        jobs,
        fast,
        corp_pool_speedup,
        arms: arms.clone(),
    };
    std::fs::write(E2E_BASELINE_FILE, serde::json::to_string(&baseline))
        .expect("write e2e baseline json");
    let mut table = TextTable::new(
        format!(
            "E2E — end-to-end throughput, pooled (persistent workers) vs scoped (legacy) vs \
             striped-store shard sweep ({vms} VMs, {jobs} jobs)"
        ),
        &[
            "scheme",
            "arm",
            "pretrain (s)",
            "sim wall (s)",
            "slots/s",
            "jobs/s",
            "fast-path",
            "stripe conflicts",
        ],
    );
    for a in &arms {
        table.push_row(vec![
            a.scheme.clone(),
            a.arm.clone(),
            three(a.pretrain_secs),
            three(a.run_secs),
            format!("{:.0}", a.slots_per_sec),
            format!("{:.1}", a.jobs_per_sec),
            if a.arm.starts_with("sharded") {
                pct(a.fast_path_rate)
            } else {
                "-".into()
            },
            if a.arm.starts_with("sharded") {
                a.stripe_conflicts.to_string()
            } else {
                "-".into()
            },
        ]);
    }
    FigureTable {
        id: "e2e".into(),
        table,
        notes: vec![
            format!("machine-readable baseline written to {E2E_BASELINE_FILE}"),
            format!("CORP pooled/scoped slots-per-sec speedup: {corp_pool_speedup:.2}x"),
            "per-scheme reports verified byte-identical between the pooled and scoped arms \
             before timing was recorded; sharded-1 verified decision-identical to pooled; \
             multi-shard arms decorrelate per-shard seeds, so only their throughput is \
             comparable"
                .into(),
            "fast-path = fraction of store reservations committed via the single-stripe \
             optimistic path; stripe conflicts = fast-path attempts refused by the per-VM \
             writer check"
                .into(),
        ],
    }
}

/// Builds one [`E2eArm`] row, asserting finite non-zero throughput so the
/// regression gate fails loudly on a broken measurement.
fn e2e_arm(
    scheme: SchemeKind,
    arm: &str,
    pretrain_secs: f64,
    run_secs: f64,
    report: &SimulationReport,
) -> E2eArm {
    let wall = run_secs.max(1e-9);
    let (fast_path_rate, stripe_conflicts) = report
        .control_plane
        .as_ref()
        .map(|cp| {
            (
                cp.fast_path_hits as f64 / cp.reservations.max(1) as f64,
                cp.stripe_conflicts,
            )
        })
        .unwrap_or((0.0, 0));
    let row = E2eArm {
        scheme: scheme.name().to_string(),
        arm: arm.to_string(),
        pretrain_secs,
        run_secs,
        slots_per_sec: report.slots_run as f64 / wall,
        jobs_per_sec: report.completed as f64 / wall,
        fast_path_rate,
        stripe_conflicts,
    };
    assert!(
        row.pretrain_secs.is_finite() && row.run_secs.is_finite(),
        "{} {}: non-finite wall-clock",
        row.scheme,
        row.arm
    );
    assert!(
        row.slots_per_sec > 0.0 && row.jobs_per_sec > 0.0,
        "{} {}: zero throughput: {row:?}",
        row.scheme,
        row.arm
    );
    row
}

/// Fault intensities swept by the availability experiment: multiples of
/// the default scenario's event rates (0.0 = fault-free control row).
pub const FAULT_INTENSITIES: [f64; 4] = [0.0, 0.5, 1.0, 2.0];

/// Seed of the fault schedules (fixed: every scheme at a given intensity
/// faces the identical crash/degrade/poison/kill sequence).
pub const FAULT_SEED: u64 = 0xFA17;

/// Availability under injected faults: every scheme behind a supervised
/// 2-shard control plane, swept over fault intensity. Reports SLO and
/// utilization damage next to the recovery machinery's work (jobs killed
/// by crashes, re-placement latency, worker restarts, inline-scheduled
/// slots).
pub fn availability(fast: bool) -> FigureTable {
    const JOBS: usize = 120;
    const SHARDS: usize = 2;
    let cells: Vec<(SchemeKind, f64)> = ALL_SCHEMES
        .iter()
        .flat_map(|&s| FAULT_INTENSITIES.iter().map(move |&i| (s, i)))
        .collect();
    let reports = parallel_map(cells.clone(), |(scheme, intensity)| {
        let params = SchemeParams {
            fast_dnn: fast,
            ..Default::default()
        };
        let cfg = FaultConfig::scenario(FAULT_SEED, intensity);
        run_cell_faulty(Environment::Cluster, scheme, JOBS, &params, SHARDS, &cfg)
    });
    let mut table = TextTable::new(
        "Availability — schemes under deterministic fault injection (cluster, 120 jobs, 2 shards)",
        &[
            "scheme",
            "intensity",
            "SLO violation",
            "overall utilization",
            "VM crashes",
            "jobs killed",
            "replaced",
            "replace latency (slots)",
            "restarts",
            "inline slots",
            "dropped msgs",
        ],
    );
    for ((scheme, intensity), r) in cells.iter().zip(&reports) {
        let f = r.faults.clone().unwrap_or_default();
        let cp = r.control_plane.clone().unwrap_or_default();
        table.push_row(vec![
            scheme.name().to_string(),
            format!("{intensity:.1}x"),
            pct(r.slo_violation_rate),
            three(r.overall_utilization),
            f.vm_crashes.to_string(),
            f.jobs_killed.to_string(),
            f.replacements.to_string(),
            format!("{:.1}", f.mean_replacement_latency_slots),
            cp.worker_restarts.to_string(),
            cp.inline_slots.to_string(),
            cp.messages_dropped.to_string(),
        ]);
    }
    FigureTable {
        id: "faults".into(),
        table,
        notes: vec![
            "identical fault schedule per intensity across schemes (same seed); 0.0x is the fault-free control".into(),
            "jobs killed by VM crashes lose all progress and re-enter the queue; replace latency is kill-to-replacement in slots".into(),
            "restarts/inline/dropped count the shard supervisor's recovery work under scheduled worker kills and message chaos".into(),
        ],
    }
}

/// Ablations of CORP's design choices (DESIGN.md §6): each row disables one
/// component and reports the damage.
pub fn ablations(fast: bool) -> FigureTable {
    const JOBS: usize = 200;
    type ConfigTweak = Box<dyn Fn(&mut CorpConfig) + Send + Sync>;
    let variants: Vec<(&'static str, ConfigTweak)> = vec![
        ("full CORP", Box::new(|_| {})),
        (
            "no HMM correction",
            Box::new(|c| c.use_hmm_correction = false),
        ),
        (
            "no confidence interval",
            Box::new(|c| c.use_confidence_interval = false),
        ),
        ("no packing", Box::new(|c| c.use_packing = false)),
        (
            "random placement",
            Box::new(|c| c.use_volume_placement = false),
        ),
    ];
    let names: Vec<&'static str> = variants.iter().map(|(n, _)| *n).collect();
    let reports = parallel_map(variants, |(_, tweak)| {
        let mut config = if fast {
            CorpConfig::fast()
        } else {
            CorpConfig::default()
        };
        tweak(&mut config);
        let mut corp = corp_core::CorpProvisioner::new(config);
        corp.pretrain(&crate::env::historical_histories(Environment::Cluster, 40));
        let mut sim = Simulation::new(
            Environment::Cluster.cluster(),
            Environment::Cluster.workload(JOBS, 7u64.wrapping_add(JOBS as u64)),
            SimulationOptions {
                measure_decision_time: false,
                ..Default::default()
            },
        );
        sim.run(&mut corp)
    });
    let mut table = TextTable::new(
        "Ablations — CORP components (cluster, 300 jobs)",
        &[
            "variant",
            "overall utilization",
            "SLO violation",
            "prediction error",
        ],
    );
    for (name, r) in names.iter().zip(&reports) {
        table.push_row(vec![
            name.to_string(),
            three(r.overall_utilization),
            pct(r.slo_violation_rate),
            pct(r.prediction_error_rate),
        ]);
    }
    FigureTable {
        id: "ablations".into(),
        table,
        notes: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_paper_parameters() {
        let t = table2();
        assert!(t.table.len() >= 10);
        let rendered = t.table.to_string();
        assert!(rendered.contains("P_th"));
        assert!(rendered.contains("0.95"));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..32).collect::<Vec<usize>>(), |x| x * 2);
        assert_eq!(out, (0..32).map(|x| x * 2).collect::<Vec<usize>>());
    }

    #[test]
    fn aggressiveness_grids_have_six_points_each() {
        for s in ALL_SCHEMES {
            assert_eq!(aggressiveness_grid(s).len(), 6, "{s:?}");
        }
    }
}
