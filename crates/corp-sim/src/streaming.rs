//! Streaming simulation driver: a [`SlotEngine`] fed from a job iterator
//! instead of a pre-materialized workload vector.
//!
//! [`Simulation`](crate::Simulation) owns its whole workload up front —
//! fine for the paper's figure sweeps (hundreds of jobs), fatal for
//! soak-scale runs where the trace outweighs memory. This driver pulls
//! arrivals lazily from any `Iterator<Item = JobSpec>` (in practice a
//! `corp_trace::JobSource` adapted via `into_specs()`), so combined with
//! [`SimulationOptions::reclaim_completed`](crate::SimulationOptions) the
//! resident set is bounded by *concurrently live* jobs, independent of the
//! trace length.
//!
//! ## Equivalence
//!
//! With an arrival-ordered stream, the driver submits exactly the spec
//! sequence [`Simulation`](crate::Simulation) would (its stable sort is a
//! no-op on sorted input), so reports are byte-identical to the batch
//! driver's — asserted by the tests below and the corp-trace proptests.

use crate::cluster::Cluster;
use crate::engine::{SimulationOptions, SimulationReport, SlotEngine};
use crate::provisioner::Provisioner;
use corp_trace::JobSpec;

/// A [`SlotEngine`] stepped against a lazily-pulled arrival stream.
///
/// The stream must be non-decreasing in `arrival_slot` (every reader and
/// generator in `corp-trace` is); a spec whose arrival slot is already in
/// the past is submitted immediately, which only affects its queueing-time
/// accounting, never engine safety.
pub struct StreamingSimulation<I: Iterator<Item = JobSpec>> {
    engine: SlotEngine,
    source: std::iter::Peekable<I>,
    last_arrival: u64,
    submitted: usize,
}

impl<I: Iterator<Item = JobSpec>> StreamingSimulation<I> {
    /// Builds a streaming simulation over `cluster` fed by `source`.
    pub fn new(cluster: Cluster, source: I, options: SimulationOptions) -> Self {
        StreamingSimulation {
            engine: SlotEngine::new(cluster, options),
            source: source.peekable(),
            last_arrival: 0,
            submitted: 0,
        }
    }

    /// Jobs pulled from the stream and submitted so far.
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Read access to the underlying engine (arena occupancy, metrics).
    pub fn engine(&self) -> &SlotEngine {
        &self.engine
    }

    /// Runs until the stream drains and every submitted job reaches a
    /// terminal state, or the slot cap (`max_slots` past the newest
    /// arrival seen) trips. On a cap trip the unread tail of the stream is
    /// left unread — counting unseen arrivals as unfinished would require
    /// materializing them, which is exactly what this driver exists to
    /// avoid.
    pub fn run(&mut self, provisioner: &mut dyn Provisioner) -> SimulationReport {
        loop {
            while self
                .source
                .peek()
                .is_some_and(|s| s.arrival_slot <= self.engine.slot())
            {
                let spec = self.source.next().expect("peeked");
                self.last_arrival = self.last_arrival.max(spec.arrival_slot);
                self.submitted += 1;
                self.engine.submit(spec);
            }
            self.engine.step(provisioner);
            let drained = self.source.peek().is_none();
            if (drained && self.engine.active() == 0)
                || self.engine.slot() >= self.engine.options().max_slots + self.last_arrival
            {
                break;
            }
        }
        self.engine.report(provisioner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::EnvironmentProfile;
    use crate::provisioner::StaticPeakProvisioner;
    use corp_trace::{JobSource, SyntheticSource, WorkloadConfig, WorkloadGenerator};

    fn cluster() -> Cluster {
        Cluster::from_profile(EnvironmentProfile::palmetto_cluster().with_num_pms(4))
    }

    fn config(n: usize) -> WorkloadConfig {
        WorkloadConfig {
            num_jobs: n,
            ..WorkloadConfig::default()
        }
    }

    /// Byte-compare needs deterministic reports: drop the wall-clock
    /// overhead measurement.
    fn untimed() -> SimulationOptions {
        SimulationOptions {
            measure_decision_time: false,
            ..Default::default()
        }
    }

    #[test]
    fn streamed_run_matches_batch_run_byte_for_byte() {
        let n = 40;
        let seed = 77;
        let batch = {
            let specs = WorkloadGenerator::new(config(n), seed).generate();
            let mut sim = crate::engine::Simulation::new(cluster(), specs, untimed());
            sim.run(&mut StaticPeakProvisioner)
        };
        let streamed = {
            let source = SyntheticSource::new(config(n), seed).into_specs();
            let mut sim = StreamingSimulation::new(cluster(), source, untimed());
            sim.run(&mut StaticPeakProvisioner)
        };
        assert_eq!(
            serde::json::to_string(&batch),
            serde::json::to_string(&streamed),
            "streaming driver diverged from the batch driver"
        );
    }

    #[test]
    fn reclaiming_streamed_run_matches_batch_and_bounds_arena() {
        let n = 40;
        let seed = 78;
        let batch = {
            let specs = WorkloadGenerator::new(config(n), seed).generate();
            let mut sim = crate::engine::Simulation::new(cluster(), specs, untimed());
            sim.run(&mut StaticPeakProvisioner)
        };
        let source = SyntheticSource::new(config(n), seed).into_specs();
        let mut sim = StreamingSimulation::new(
            cluster(),
            source,
            SimulationOptions {
                reclaim_completed: true,
                ..untimed()
            },
        );
        let streamed = sim.run(&mut StaticPeakProvisioner);
        assert_eq!(
            serde::json::to_string(&batch),
            serde::json::to_string(&streamed),
            "reclaiming streaming run diverged from the batch driver"
        );
        assert_eq!(sim.submitted(), n);
        assert!(
            sim.engine().store().capacity() < n,
            "arena grew to trace size ({} slots for {n} jobs) — reclaim is not bounding memory",
            sim.engine().store().capacity()
        );
    }

    #[test]
    fn slot_cap_stops_a_stalled_run() {
        // A burst of jobs that cannot all finish within the cap: the run
        // must stop `max_slots` past the newest arrival seen instead of
        // spinning until completion.
        let n = 12;
        let source = SyntheticSource::new(config(n), 79)
            .into_specs()
            .map(|mut s| {
                s.arrival_slot = 0;
                s
            });
        let mut sim = StreamingSimulation::new(
            cluster(),
            source,
            SimulationOptions {
                max_slots: 1,
                ..Default::default()
            },
        );
        let report = sim.run(&mut StaticPeakProvisioner);
        assert_eq!(report.slots_run, 1);
        assert_eq!(report.num_jobs, n);
        assert!(
            report.completed < n,
            "a one-slot cap cannot complete the whole workload"
        );
    }
}
